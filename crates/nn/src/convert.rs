//! Checkpoint → mobile conversion: batch-norm folding and activation fusion.
//!
//! This is the "convert ML checkpoints to executable versions" step of §2.
//! The converted graph computes the same function with fewer nodes; any
//! accuracy difference against the checkpoint comes only from float
//! summation-order differences in the optimized kernels (§4.4 observes 1–2 %
//! on real models).

use std::collections::HashMap;

use mlexray_tensor::{Shape, Tensor};

use crate::graph::{Node, TensorId};
use crate::model::{Model, ModelVariant};
use crate::ops::{Activation, OpKind};
use crate::{NnError, Result};

fn is_fusable_conv(op: &OpKind) -> bool {
    matches!(
        op,
        OpKind::Conv2d {
            activation: Activation::None,
            ..
        } | OpKind::DepthwiseConv2d {
            activation: Activation::None,
            ..
        } | OpKind::FullyConnected {
            activation: Activation::None
        }
    )
}

fn set_activation(op: &mut OpKind, act: Activation) {
    match op {
        OpKind::Conv2d { activation, .. }
        | OpKind::DepthwiseConv2d { activation, .. }
        | OpKind::FullyConnected { activation }
        | OpKind::Add { activation } => *activation = act,
        _ => unreachable!("set_activation on non-fusable op"),
    }
}

/// Per-output-channel index of a weight element, given the op kind.
fn weight_channel(op: &OpKind, shape: &[usize], flat: usize) -> usize {
    match op {
        // [out_c, kh, kw, in_c]: channel is the leading axis.
        OpKind::Conv2d { .. } => flat / (shape[1] * shape[2] * shape[3]),
        // [1, kh, kw, c]: channel is the trailing axis.
        OpKind::DepthwiseConv2d { .. } => flat % shape[3],
        // [out, in].
        OpKind::FullyConnected { .. } => flat / shape[1],
        _ => unreachable!(),
    }
}

/// Converts a checkpoint model into its mobile (deployment) form: folds
/// batch normalization into the preceding conv/depthwise-conv/FC and fuses
/// standalone ReLU/ReLU6 nodes into the preceding op's fused activation.
///
/// # Errors
///
/// Returns [`NnError::Conversion`] if the input is not a checkpoint or a
/// batch-norm has no foldable producer, and propagates validation errors.
///
/// # Example
///
/// ```no_run
/// use mlexray_nn::{convert_to_mobile, Model};
/// # fn get_model() -> Model { unimplemented!() }
/// let checkpoint = get_model();
/// let mobile = convert_to_mobile(&checkpoint)?;
/// assert!(mobile.graph.layer_count() <= checkpoint.graph.layer_count());
/// # Ok::<(), mlexray_nn::NnError>(())
/// ```
pub fn convert_to_mobile(model: &Model) -> Result<Model> {
    if model.variant != ModelVariant::Checkpoint {
        return Err(NnError::Conversion(format!(
            "expected a checkpoint model, got {}",
            model.variant
        )));
    }
    let mut graph = model.graph.clone();

    // Consumer counts decide whether a producer's output may be rewired.
    let mut consumers = vec![0usize; graph.tensors().len()];
    for node in graph.nodes() {
        for id in &node.inputs {
            consumers[id.0] += 1;
        }
    }
    for &out in graph.outputs() {
        consumers[out.0] += 1;
    }

    let old_nodes: Vec<Node> = graph.nodes().to_vec();
    let mut new_nodes: Vec<Node> = Vec::with_capacity(old_nodes.len());
    // Producer of each tensor id within `new_nodes`.
    let mut producer: HashMap<usize, usize> = HashMap::new();

    for node in old_nodes {
        let fold_target = producer
            .get(&node.inputs[0].0)
            .copied()
            .filter(|&p| consumers[node.inputs[0].0] == 1 && is_fusable_conv(&new_nodes[p].op));
        match (&node.op, fold_target) {
            (OpKind::BatchNorm { epsilon }, Some(p)) => {
                fold_batch_norm(&mut graph, &mut new_nodes, p, &node, *epsilon)?;
                producer.insert(node.output.0, p);
            }
            (OpKind::Act(act @ (Activation::Relu | Activation::Relu6)), Some(p)) => {
                set_activation(&mut new_nodes[p].op, *act);
                new_nodes[p].output = node.output;
                producer.insert(node.output.0, p);
            }
            (OpKind::BatchNorm { .. }, None) => {
                return Err(NnError::Conversion(format!(
                    "batch-norm '{}' has no foldable producer",
                    node.name
                )));
            }
            _ => {
                producer.insert(node.output.0, new_nodes.len());
                new_nodes.push(node);
            }
        }
    }

    *graph.nodes_mut() = new_nodes;
    // Fusion rewires producers and folding retires BN parameter constants;
    // drop the orphaned slots so derived graphs stay hygiene-lint clean.
    graph.compact_tensors();
    graph.set_name(format!("{}_mobile", model.graph.name()));
    graph.validate()?;
    Ok(Model {
        graph,
        family: model.family.clone(),
        variant: ModelVariant::MobileFloat,
    })
}

/// Folds `BN(conv(x))` into the convolution's weights and bias.
fn fold_batch_norm(
    graph: &mut crate::graph::Graph,
    new_nodes: &mut [Node],
    p: usize,
    bn: &Node,
    epsilon: f32,
) -> Result<()> {
    let read_const = |graph: &crate::graph::Graph, id: TensorId| -> Result<Vec<f32>> {
        graph
            .tensor(id)
            .as_constant()
            .ok_or_else(|| NnError::Conversion("batch-norm parameter is not constant".into()))
            .and_then(|t| Ok(t.as_f32()?.to_vec()))
    };
    let gamma = read_const(graph, bn.inputs[1])?;
    let beta = read_const(graph, bn.inputs[2])?;
    let mean = read_const(graph, bn.inputs[3])?;
    let var = read_const(graph, bn.inputs[4])?;
    let scale: Vec<f32> = gamma
        .iter()
        .zip(&var)
        .map(|(&g, &v)| g / (v + epsilon).sqrt())
        .collect();

    let conv = &new_nodes[p];
    let w_id = conv.inputs[1];
    let op = conv.op.clone();
    let w_shape: Vec<usize> = graph.tensor(w_id).shape().dims().to_vec();

    // Scale weights per output channel.
    let mut w = read_const(graph, w_id)?;
    for (i, v) in w.iter_mut().enumerate() {
        *v *= scale[weight_channel(&op, &w_shape, i)];
    }
    let folded_w = Tensor::from_f32(Shape::new(w_shape), w)?;
    if let Some(def) = graph.tensors_mut().get_mut(w_id.0) {
        *def = crate::graph::TensorDef::Constant {
            name: format!("{}:folded", graph_tensor_name(def)),
            tensor: folded_w,
        };
    }

    // Fold bias: b' = (b - mean) * scale + beta.
    let old_bias = match conv.inputs.get(2) {
        Some(&b_id) => read_const(graph, b_id)?,
        None => vec![0.0; scale.len()],
    };
    let new_bias: Vec<f32> = old_bias
        .iter()
        .zip(&scale)
        .zip(mean.iter().zip(&beta))
        .map(|((&b, &s), (&m, &bt))| (b - m) * s + bt)
        .collect();
    let bias_tensor = Tensor::from_f32(Shape::vector(new_bias.len()), new_bias)?;
    let bias_id = {
        graph.tensors_mut().push(crate::graph::TensorDef::Constant {
            name: format!("{}:folded_bias", bn.name),
            tensor: bias_tensor,
        });
        TensorId(graph.tensors().len() - 1)
    };
    let conv = &mut new_nodes[p];
    if conv.inputs.len() >= 3 {
        conv.inputs[2] = bias_id;
    } else {
        conv.inputs.push(bias_id);
    }
    conv.output = bn.output;
    Ok(())
}

fn graph_tensor_name(def: &crate::graph::TensorDef) -> String {
    def.name().to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::interpreter::{Interpreter, InterpreterOptions};
    use crate::ops::Padding;
    use mlexray_tensor::{DType, Shape};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// conv (no act) -> BN -> ReLU6 checkpoint graph.
    fn checkpoint_model(seed: u64) -> Model {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut b = GraphBuilder::new("ckpt");
        let x = b.input("x", Shape::nhwc(1, 5, 5, 2));
        let w = b.constant(
            "w",
            mlexray_tensor::he_normal(Shape::new(vec![4, 3, 3, 2]), 18, &mut rng).unwrap(),
        );
        let y = b
            .conv2d("conv", x, w, None, 1, Padding::Same, Activation::None)
            .unwrap();
        let gamma = b.constant(
            "gamma",
            Tensor::from_f32(Shape::vector(4), vec![1.1, 0.9, 1.3, 0.7]).unwrap(),
        );
        let beta = b.constant(
            "beta",
            Tensor::from_f32(Shape::vector(4), vec![0.1, -0.2, 0.0, 0.3]).unwrap(),
        );
        let mean = b.constant(
            "mean",
            Tensor::from_f32(Shape::vector(4), vec![0.05, -0.1, 0.2, 0.0]).unwrap(),
        );
        let var = b.constant(
            "var",
            Tensor::from_f32(Shape::vector(4), vec![0.5, 1.5, 1.0, 2.0]).unwrap(),
        );
        let bn = b.batch_norm("bn", y, gamma, beta, mean, var, 1e-3).unwrap();
        let act = b.activation("relu6", bn, Activation::Relu6).unwrap();
        b.output(act);
        Model::checkpoint(b.finish().unwrap(), "test")
    }

    #[test]
    fn conversion_shrinks_and_preserves_function() {
        let ckpt = checkpoint_model(3);
        let mobile = convert_to_mobile(&ckpt).unwrap();
        assert_eq!(mobile.variant, ModelVariant::MobileFloat);
        assert_eq!(ckpt.graph.layer_count(), 3);
        assert_eq!(mobile.graph.layer_count(), 1, "BN and ReLU6 folded away");

        let mut rng = SmallRng::seed_from_u64(9);
        let data: Vec<f32> = (0..50).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let input = Tensor::from_f32(Shape::nhwc(1, 5, 5, 2), data).unwrap();

        let mut i1 = Interpreter::new(&ckpt.graph, InterpreterOptions::reference()).unwrap();
        let mut i2 = Interpreter::new(&mobile.graph, InterpreterOptions::reference()).unwrap();
        let a = i1.invoke(std::slice::from_ref(&input)).unwrap();
        let b = i2.invoke(std::slice::from_ref(&input)).unwrap();
        for (u, v) in a[0].as_f32().unwrap().iter().zip(b[0].as_f32().unwrap()) {
            assert!((u - v).abs() < 1e-4, "{u} vs {v}");
        }
    }

    #[test]
    fn non_checkpoint_rejected() {
        let ckpt = checkpoint_model(3);
        let mobile = convert_to_mobile(&ckpt).unwrap();
        assert!(convert_to_mobile(&mobile).is_err());
    }

    #[test]
    fn bn_without_conv_producer_rejected() {
        let mut b = GraphBuilder::new("bad");
        let x = b.input("x", Shape::nhwc(1, 2, 2, 2));
        let ones = |b: &mut GraphBuilder, n: &str| {
            b.constant(
                n,
                Tensor::from_f32(Shape::vector(2), vec![1.0, 1.0]).unwrap(),
            )
        };
        let gamma = ones(&mut b, "g");
        let beta = ones(&mut b, "b");
        let mean = ones(&mut b, "m");
        let var = ones(&mut b, "v");
        let bn = b.batch_norm("bn", x, gamma, beta, mean, var, 1e-3).unwrap();
        b.output(bn);
        let model = Model::checkpoint(b.finish().unwrap(), "bad");
        assert!(convert_to_mobile(&model).is_err());
    }

    #[test]
    fn fusion_keeps_dtype_and_shape() {
        let ckpt = checkpoint_model(5);
        let mobile = convert_to_mobile(&ckpt).unwrap();
        let out_id = mobile.graph.outputs()[0];
        assert_eq!(mobile.graph.tensor(out_id).dtype(), DType::F32);
        assert_eq!(mobile.graph.tensor(out_id).shape().dims(), &[1, 5, 5, 4]);
    }
}
