//! A TFLite-like neural-network graph interpreter built for deployment
//! debugging.
//!
//! This crate is the execution substrate of the ML-EXray reproduction: a
//! dataflow [`Graph`] of TFLite-style ops, an [`Interpreter`] with per-layer
//! observation hooks (the surface ML-EXray's EdgeML Monitor instruments),
//! *reference* and *optimized* kernel flavors mirroring TFLite's two op
//! resolvers, checkpoint→mobile [conversion](convert_to_mobile) (batch-norm
//! folding, activation fusion) and post-training full-integer
//! [quantization](quantize_model) with dataset calibration. The [`analysis`]
//! module is the static complement: a multi-pass linter that proves shape,
//! dtype, quantization, memory-plan and batchability safety from the graph
//! alone, before a model ever runs.
//!
//! Two injectable kernel defects ([`KernelBugs`]) reproduce the real TFLite
//! bugs the paper discovered in §4.4: a broken optimized quantized
//! `DepthwiseConv2D` and a broken quantized `AveragePool2D`. Both are off by
//! default.
//!
//! Execution is pluggable behind the [`ExecutionBackend`] trait: the
//! [`ReferenceBackend`] and [`OptimizedBackend`] wrap the two scalar kernel
//! flavors, the [`SimdBackend`] dispatches the runtime-feature-detected
//! virtual-SIMD GEMM micro-kernels of the [`simd`] module (AVX2/FMA on
//! x86_64, a bitwise-identical scalar mirror elsewhere), and the
//! [`EdgeEmulatorBackend`] reproduces a foreign edge runtime's numerics
//! ([`EdgeNumerics`]: GEMM accumulation order, fused multiply-add,
//! flush-to-zero denormals, reduced-precision requantization) — the
//! substrate of `mlexray-core`'s per-layer differential debugger.
//!
//! # Example
//!
//! ```
//! use mlexray_nn::{GraphBuilder, Interpreter, InterpreterOptions, Activation, Padding};
//! use mlexray_tensor::{Shape, Tensor};
//!
//! let mut b = GraphBuilder::new("demo");
//! let x = b.input("x", Shape::nhwc(1, 4, 4, 1));
//! let w = b.constant("w", Tensor::filled_f32(Shape::new(vec![1, 3, 3, 1]), 1.0 / 9.0));
//! let y = b.conv2d("blur", x, w, None, 1, Padding::Same, Activation::None)?;
//! b.output(y);
//! let graph = b.finish()?;
//!
//! let mut interp = Interpreter::new(&graph, InterpreterOptions::optimized())?;
//! let out = interp.invoke(&[Tensor::filled_f32(Shape::nhwc(1, 4, 4, 1), 9.0)])?;
//! assert!((out[0].as_f32()?[5] - 9.0).abs() < 1e-4);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod analysis;
mod backend;
mod convert;
mod error;
pub mod golden;
mod graph;
mod interpreter;
mod kernels;
mod model;
mod ops;
mod plan;
mod quantize;
mod resolver;

pub use backend::{
    BackendSpec, BoxedBackend, EdgeEmulatorBackend, ExecutionBackend, OptimizedBackend,
    ReferenceBackend, SimdBackend,
};
pub use convert::convert_to_mobile;
pub use error::NnError;
pub use graph::{Graph, GraphBuilder, Node, NodeId, TensorDef, TensorId};
pub use interpreter::{
    Interpreter, InterpreterOptions, InvokeStats, LayerObserver, LayerRecord, NullObserver,
};
pub use kernels::gemm as simd;
pub use model::{Model, ModelVariant};
pub use ops::{Activation, OpKind, Padding};
pub use plan::{MemoryPlan, PlannedTensor};
pub use quantize::{calibrate, output_params, quantize_model, Calibration, QuantizationOptions};
pub use resolver::{AccumOrder, EdgeNumerics, KernelBugs, KernelFlavor, RequantMode};

/// Result alias used throughout the nn crate.
pub type Result<T> = std::result::Result<T, NnError>;
