//! Convolution kernels: float/quantized, reference/optimized, plus the
//! injected optimized-depthwise defect of §4.4 and the batched whole-batch
//! im2col + blocked GEMM fast path.

use mlexray_tensor::{QuantParams, Tensor};

use crate::graph::{Node, TensorDef};
use crate::kernels::{
    act_qbounds, emulated_dot, f32_slot, out_qparams, qparams_of, requantize, u8_slot,
};
use crate::ops::{same_pad_before, Activation, Padding};
use crate::resolver::{EdgeNumerics, KernelBugs, KernelFlavor, RequantMode};
use crate::Result;

/// Blocked dot product with four partial accumulators. Matches the optimized
/// kernel's summation order, which differs from the reference kernel's
/// sequential order — the benign float drift between the two resolvers.
#[inline]
fn dot_blocked(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut s = [0.0f32; 4];
    let chunks = a.len() / 4;
    for i in 0..chunks {
        let o = i * 4;
        s[0] += a[o] * b[o];
        s[1] += a[o + 1] * b[o + 1];
        s[2] += a[o + 2] * b[o + 2];
        s[3] += a[o + 3] * b[o + 3];
    }
    let mut rest = 0.0;
    for i in chunks * 4..a.len() {
        rest += a[i] * b[i];
    }
    (s[0] + s[1]) + (s[2] + s[3]) + rest
}

pub(super) struct ConvGeom {
    pub(super) n: usize,
    pub(super) in_h: usize,
    pub(super) in_w: usize,
    pub(super) in_c: usize,
    pub(super) out_h: usize,
    pub(super) out_w: usize,
    #[allow(dead_code)]
    pub(super) kh: usize,
    #[allow(dead_code)]
    pub(super) kw: usize,
    pub(super) pad_top: usize,
    pub(super) pad_left: usize,
}

pub(super) fn geometry(
    input: &Tensor,
    out_def: &TensorDef,
    kh: usize,
    kw: usize,
    stride: usize,
    padding: Padding,
) -> ConvGeom {
    let is = input.shape().dims();
    let os = out_def.shape().dims();
    let (pad_top, pad_left) = match padding {
        Padding::Same => (
            same_pad_before(is[1], kh, stride),
            same_pad_before(is[2], kw, stride),
        ),
        Padding::Valid => (0, 0),
    };
    ConvGeom {
        n: is[0],
        in_h: is[1],
        in_w: is[2],
        in_c: is[3],
        out_h: os[1],
        out_w: os[2],
        kh,
        kw,
        pad_top,
        pad_left,
    }
}

/// Float 2-D convolution.
#[allow(clippy::too_many_arguments)]
pub(crate) fn conv2d_f32(
    node: &Node,
    inputs: &[&Tensor],
    out_def: &TensorDef,
    stride: usize,
    padding: Padding,
    activation: Activation,
    flavor: KernelFlavor,
    out_t: &mut Tensor,
) -> Result<()> {
    let _ = node;
    let input = inputs[0];
    let weights = inputs[1];
    let bias = inputs.get(2).map(|t| t.as_f32()).transpose()?;
    let x = input.as_f32()?;
    let w = weights.as_f32()?;
    let ws = weights.shape().dims();
    let (out_c, kh, kw) = (ws[0], ws[1], ws[2]);
    let g = geometry(input, out_def, kh, kw, stride, padding);
    let out = f32_slot(out_t, out_def)?;
    let ksize = kh * kw * g.in_c;

    match flavor {
        KernelFlavor::Reference => {
            // Naive loops, sequential accumulation.
            for n in 0..g.n {
                for oy in 0..g.out_h {
                    for ox in 0..g.out_w {
                        for oc in 0..out_c {
                            let mut acc = bias.map(|b| b[oc]).unwrap_or(0.0);
                            for ky in 0..kh {
                                let iy = (oy * stride + ky) as isize - g.pad_top as isize;
                                if iy < 0 || iy >= g.in_h as isize {
                                    continue;
                                }
                                for kx in 0..kw {
                                    let ix = (ox * stride + kx) as isize - g.pad_left as isize;
                                    if ix < 0 || ix >= g.in_w as isize {
                                        continue;
                                    }
                                    let ibase = ((n * g.in_h + iy as usize) * g.in_w + ix as usize)
                                        * g.in_c;
                                    let wbase = ((oc * kh + ky) * kw + kx) * g.in_c;
                                    for ic in 0..g.in_c {
                                        acc += x[ibase + ic] * w[wbase + ic];
                                    }
                                }
                            }
                            let obase = ((n * g.out_h + oy) * g.out_w + ox) * out_c + oc;
                            out[obase] = activation.apply(acc);
                        }
                    }
                }
            }
        }
        // A Simd-flavor conv dispatches to `gemm::conv2d_f32_simd` before
        // reaching this kernel; if it ever lands here it gets the optimized
        // scalar arithmetic.
        KernelFlavor::Optimized | KernelFlavor::Simd => {
            // Per-pixel im2col + blocked dot products.
            let mut patch = vec![0.0f32; ksize];
            for n in 0..g.n {
                for oy in 0..g.out_h {
                    for ox in 0..g.out_w {
                        patch.iter_mut().for_each(|v| *v = 0.0);
                        for ky in 0..kh {
                            let iy = (oy * stride + ky) as isize - g.pad_top as isize;
                            if iy < 0 || iy >= g.in_h as isize {
                                continue;
                            }
                            for kx in 0..kw {
                                let ix = (ox * stride + kx) as isize - g.pad_left as isize;
                                if ix < 0 || ix >= g.in_w as isize {
                                    continue;
                                }
                                let ibase =
                                    ((n * g.in_h + iy as usize) * g.in_w + ix as usize) * g.in_c;
                                let pbase = (ky * kw + kx) * g.in_c;
                                patch[pbase..pbase + g.in_c]
                                    .copy_from_slice(&x[ibase..ibase + g.in_c]);
                            }
                        }
                        let obase = ((n * g.out_h + oy) * g.out_w + ox) * out_c;
                        for oc in 0..out_c {
                            let wrow = &w[oc * ksize..(oc + 1) * ksize];
                            let acc =
                                dot_blocked(&patch, wrow) + bias.map(|b| b[oc]).unwrap_or(0.0);
                            out[obase + oc] = activation.apply(acc);
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

/// Four blocked dot products sharing one left-hand row: computes
/// `dot_blocked(a, b0..b3)` with each lane's partial-accumulator sequence
/// identical to [`dot_blocked`]'s, so every output channel's sum is
/// bitwise-identical to the scalar kernel — but the row is loaded once for
/// four weight rows and the sixteen accumulator chains expose far more
/// instruction-level parallelism.
#[inline]
fn dot_blocked_x4(a: &[f32], b0: &[f32], b1: &[f32], b2: &[f32], b3: &[f32]) -> [f32; 4] {
    debug_assert!(a.len() == b0.len() && a.len() == b1.len());
    debug_assert!(a.len() == b2.len() && a.len() == b3.len());
    let mut s = [[0.0f32; 4]; 4];
    let chunks = a.len() / 4;
    for i in 0..chunks {
        let o = i * 4;
        let (a0, a1, a2, a3) = (a[o], a[o + 1], a[o + 2], a[o + 3]);
        for (lane, b) in [b0, b1, b2, b3].into_iter().enumerate() {
            s[lane][0] += a0 * b[o];
            s[lane][1] += a1 * b[o + 1];
            s[lane][2] += a2 * b[o + 2];
            s[lane][3] += a3 * b[o + 3];
        }
    }
    let mut rest = [0.0f32; 4];
    for i in chunks * 4..a.len() {
        rest[0] += a[i] * b0[i];
        rest[1] += a[i] * b1[i];
        rest[2] += a[i] * b2[i];
        rest[3] += a[i] * b3[i];
    }
    [
        (s[0][0] + s[0][1]) + (s[0][2] + s[0][3]) + rest[0],
        (s[1][0] + s[1][1]) + (s[1][2] + s[1][3]) + rest[1],
        (s[2][0] + s[2][1]) + (s[2][2] + s[2][3]) + rest[2],
        (s[3][0] + s[3][1]) + (s[3][2] + s[3][3]) + rest[3],
    ]
}

/// How many output rows share one weight fetch per GEMM tile. Large enough
/// to amortize streaming the weight matrix, small enough that a tile of
/// im2col rows stays cache-resident.
const GEMM_ROW_TILE: usize = 16;

/// Batched optimized float convolution: one im2col matrix over the whole
/// stacked batch, then a row/output-channel blocked GEMM.
///
/// Every output cell is `activation(dot_blocked(patch_row, weight_row) +
/// bias)` — exactly the arithmetic (and summation order) of the per-pixel
/// optimized kernel above, so results are bitwise-identical to running the
/// frames through [`conv2d_f32`] one by one; only the loop structure changes
/// (weight rows are reused across a tile of pixels, and 1x1 stride-1
/// convolutions read the input directly instead of materializing patches).
#[allow(clippy::too_many_arguments)]
pub(crate) fn conv2d_f32_gemm(
    node: &Node,
    inputs: &[&Tensor],
    out_def: &TensorDef,
    stride: usize,
    padding: Padding,
    activation: Activation,
    scratch: &mut Vec<f32>,
    out_t: &mut Tensor,
) -> Result<()> {
    let _ = node;
    let input = inputs[0];
    let weights = inputs[1];
    let bias = inputs.get(2).map(|t| t.as_f32()).transpose()?;
    let x = input.as_f32()?;
    let w = weights.as_f32()?;
    let ws = weights.shape().dims();
    let (out_c, kh, kw) = (ws[0], ws[1], ws[2]);
    let g = geometry(input, out_def, kh, kw, stride, padding);
    let out = f32_slot(out_t, out_def)?;
    let ksize = kh * kw * g.in_c;
    let rows = g.n * g.out_h * g.out_w;

    // 1x1 stride-1 convolutions (the bulk of MobileNet-family MACs): the
    // im2col matrix *is* the input buffer, row per pixel.
    let direct = kh == 1 && kw == 1 && stride == 1 && g.out_h == g.in_h && g.out_w == g.in_w;
    let matrix: &[f32] = if direct {
        x
    } else {
        scratch.clear();
        scratch.resize(rows * ksize, 0.0);
        let mut row = 0usize;
        for n in 0..g.n {
            for oy in 0..g.out_h {
                for ox in 0..g.out_w {
                    let pbase = row * ksize;
                    for ky in 0..kh {
                        let iy = (oy * stride + ky) as isize - g.pad_top as isize;
                        if iy < 0 || iy >= g.in_h as isize {
                            continue;
                        }
                        for kx in 0..kw {
                            let ix = (ox * stride + kx) as isize - g.pad_left as isize;
                            if ix < 0 || ix >= g.in_w as isize {
                                continue;
                            }
                            let ibase =
                                ((n * g.in_h + iy as usize) * g.in_w + ix as usize) * g.in_c;
                            let dst = pbase + (ky * kw + kx) * g.in_c;
                            scratch[dst..dst + g.in_c].copy_from_slice(&x[ibase..ibase + g.in_c]);
                        }
                    }
                    row += 1;
                }
            }
        }
        scratch
    };

    for r0 in (0..rows).step_by(GEMM_ROW_TILE) {
        let r1 = (r0 + GEMM_ROW_TILE).min(rows);
        let mut oc = 0usize;
        while oc + 4 <= out_c {
            let w0 = &w[oc * ksize..(oc + 1) * ksize];
            let w1 = &w[(oc + 1) * ksize..(oc + 2) * ksize];
            let w2 = &w[(oc + 2) * ksize..(oc + 3) * ksize];
            let w3 = &w[(oc + 3) * ksize..(oc + 4) * ksize];
            let b: [f32; 4] = std::array::from_fn(|k| bias.map(|b| b[oc + k]).unwrap_or(0.0));
            for r in r0..r1 {
                let accs = dot_blocked_x4(&matrix[r * ksize..(r + 1) * ksize], w0, w1, w2, w3);
                let obase = r * out_c + oc;
                for k in 0..4 {
                    out[obase + k] = activation.apply(accs[k] + b[k]);
                }
            }
            oc += 4;
        }
        while oc < out_c {
            let wrow = &w[oc * ksize..(oc + 1) * ksize];
            let b = bias.map(|b| b[oc]).unwrap_or(0.0);
            for r in r0..r1 {
                let acc = dot_blocked(&matrix[r * ksize..(r + 1) * ksize], wrow) + b;
                out[r * out_c + oc] = activation.apply(acc);
            }
            oc += 1;
        }
    }
    Ok(())
}

/// Edge-emulated float convolution: per-pixel tap gathering (reference loop
/// structure, so any batch size runs natively) with the reduction folded
/// under the emulator's numerics — accumulation order, multiply-add
/// contraction. Taps are gathered in the reference kernel's `(ky, kx, ic)`
/// order, so the faithful configuration is bitwise-identical to
/// [`conv2d_f32`] under [`KernelFlavor::Reference`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn conv2d_f32_emulated(
    node: &Node,
    inputs: &[&Tensor],
    out_def: &TensorDef,
    stride: usize,
    padding: Padding,
    activation: Activation,
    numerics: &EdgeNumerics,
    scratch: &mut Vec<f32>,
    out_t: &mut Tensor,
) -> Result<()> {
    let _ = node;
    let input = inputs[0];
    let weights = inputs[1];
    let bias = inputs.get(2).map(|t| t.as_f32()).transpose()?;
    let x = input.as_f32()?;
    let w = weights.as_f32()?;
    let ws = weights.shape().dims();
    let (out_c, kh, kw) = (ws[0], ws[1], ws[2]);
    let g = geometry(input, out_def, kh, kw, stride, padding);
    let out = f32_slot(out_t, out_def)?;
    let ksize = kh * kw * g.in_c;
    // Weight offsets of the gathered taps, relative to an output channel's
    // weight row (the validity pattern is shared across output channels).
    let mut offsets: Vec<usize> = Vec::with_capacity(ksize);

    for n in 0..g.n {
        for oy in 0..g.out_h {
            for ox in 0..g.out_w {
                scratch.clear();
                offsets.clear();
                for ky in 0..kh {
                    let iy = (oy * stride + ky) as isize - g.pad_top as isize;
                    if iy < 0 || iy >= g.in_h as isize {
                        continue;
                    }
                    for kx in 0..kw {
                        let ix = (ox * stride + kx) as isize - g.pad_left as isize;
                        if ix < 0 || ix >= g.in_w as isize {
                            continue;
                        }
                        let ibase = ((n * g.in_h + iy as usize) * g.in_w + ix as usize) * g.in_c;
                        let wbase = (ky * kw + kx) * g.in_c;
                        for ic in 0..g.in_c {
                            scratch.push(x[ibase + ic]);
                            offsets.push(wbase + ic);
                        }
                    }
                }
                let obase = ((n * g.out_h + oy) * g.out_w + ox) * out_c;
                for oc in 0..out_c {
                    let wrow = &w[oc * ksize..(oc + 1) * ksize];
                    let acc = emulated_dot(
                        bias.map(|b| b[oc]).unwrap_or(0.0),
                        scratch.len(),
                        |i| (scratch[i], wrow[offsets[i]]),
                        numerics,
                    );
                    out[obase + oc] = activation.apply(acc);
                }
            }
        }
    }
    Ok(())
}

/// Float depthwise 2-D convolution.
#[allow(clippy::too_many_arguments)]
pub(crate) fn dwconv_f32(
    node: &Node,
    inputs: &[&Tensor],
    out_def: &TensorDef,
    stride: usize,
    padding: Padding,
    activation: Activation,
    flavor: KernelFlavor,
    out_t: &mut Tensor,
) -> Result<()> {
    let _ = node;
    let input = inputs[0];
    let weights = inputs[1];
    let bias = inputs.get(2).map(|t| t.as_f32()).transpose()?;
    let x = input.as_f32()?;
    let w = weights.as_f32()?;
    let ws = weights.shape().dims();
    let (kh, kw, c) = (ws[1], ws[2], ws[3]);
    let g = geometry(input, out_def, kh, kw, stride, padding);
    let out = f32_slot(out_t, out_def)?;

    // Same arithmetic in both flavors for float depthwise — the loop order
    // differs (channel-outer for optimized), giving identical results since
    // each channel is an independent sequential sum.
    let channel_outer = flavor == KernelFlavor::Optimized;
    let mut body = |ch: usize, n: usize, oy: usize, ox: usize| {
        let mut acc = bias.map(|b| b[ch]).unwrap_or(0.0);
        for ky in 0..kh {
            let iy = (oy * stride + ky) as isize - g.pad_top as isize;
            if iy < 0 || iy >= g.in_h as isize {
                continue;
            }
            for kx in 0..kw {
                let ix = (ox * stride + kx) as isize - g.pad_left as isize;
                if ix < 0 || ix >= g.in_w as isize {
                    continue;
                }
                let i = ((n * g.in_h + iy as usize) * g.in_w + ix as usize) * c + ch;
                acc += x[i] * w[(ky * kw + kx) * c + ch];
            }
        }
        let o = ((n * g.out_h + oy) * g.out_w + ox) * c + ch;
        out[o] = activation.apply(acc);
    };
    if channel_outer {
        for ch in 0..c {
            for n in 0..g.n {
                for oy in 0..g.out_h {
                    for ox in 0..g.out_w {
                        body(ch, n, oy, ox);
                    }
                }
            }
        }
    } else {
        for n in 0..g.n {
            for oy in 0..g.out_h {
                for ox in 0..g.out_w {
                    for ch in 0..c {
                        body(ch, n, oy, ox);
                    }
                }
            }
        }
    }
    Ok(())
}

/// Batched optimized float depthwise convolution: frame-outer (one frame's
/// activation stays cache-resident per sweep) with a branch-free interior
/// fast path — output cells whose whole kernel window is in-bounds skip the
/// per-tap boundary tests that dominate the naive loop.
///
/// Per-cell accumulation order is exactly [`dwconv_f32`]'s (taps in
/// `(ky, kx)` order; out-of-bounds taps contribute nothing either way), so
/// outputs are bitwise-identical to per-frame execution.
#[allow(clippy::too_many_arguments)]
pub(crate) fn dwconv_f32_batched(
    node: &Node,
    inputs: &[&Tensor],
    out_def: &TensorDef,
    stride: usize,
    padding: Padding,
    activation: Activation,
    out_t: &mut Tensor,
) -> Result<()> {
    let _ = node;
    let input = inputs[0];
    let weights = inputs[1];
    let bias = inputs.get(2).map(|t| t.as_f32()).transpose()?;
    let x = input.as_f32()?;
    let w = weights.as_f32()?;
    let ws = weights.shape().dims();
    let (kh, kw, c) = (ws[1], ws[2], ws[3]);
    let g = geometry(input, out_def, kh, kw, stride, padding);
    let out = f32_slot(out_t, out_def)?;

    // Interior output range `[o0, o1)`: every tap of the window lands
    // in-bounds, i.e. `o*stride >= pad` and `o*stride + k - 1 - pad < idim`.
    let interior = |pad: usize, kdim: usize, idim: usize, odim: usize| {
        let o0 = pad.div_ceil(stride).min(odim);
        let limit = (idim + pad).saturating_sub(kdim - 1);
        let o1 = limit.div_ceil(stride).min(odim);
        (o0, o1)
    };
    let (y0, y1) = interior(g.pad_top, kh, g.in_h, g.out_h);
    let (x0, x1) = interior(g.pad_left, kw, g.in_w, g.out_w);

    let checked = |out: &mut [f32], ch: usize, n: usize, oy: usize, ox: usize| {
        let mut acc = bias.map(|b| b[ch]).unwrap_or(0.0);
        for ky in 0..kh {
            let iy = (oy * stride + ky) as isize - g.pad_top as isize;
            if iy < 0 || iy >= g.in_h as isize {
                continue;
            }
            for kx in 0..kw {
                let ix = (ox * stride + kx) as isize - g.pad_left as isize;
                if ix < 0 || ix >= g.in_w as isize {
                    continue;
                }
                let i = ((n * g.in_h + iy as usize) * g.in_w + ix as usize) * c + ch;
                acc += x[i] * w[(ky * kw + kx) * c + ch];
            }
        }
        out[((n * g.out_h + oy) * g.out_w + ox) * c + ch] = activation.apply(acc);
    };

    for n in 0..g.n {
        for oy in 0..g.out_h {
            let interior_row = oy >= y0 && oy < y1;
            for ox in 0..g.out_w {
                if interior_row && ox >= x0 && ox < x1 {
                    let base_y = oy * stride - g.pad_top;
                    let base_x = ox * stride - g.pad_left;
                    let obase = ((n * g.out_h + oy) * g.out_w + ox) * c;
                    for ch in 0..c {
                        let mut acc = bias.map(|b| b[ch]).unwrap_or(0.0);
                        for ky in 0..kh {
                            let ibase = ((n * g.in_h + base_y + ky) * g.in_w + base_x) * c + ch;
                            let wbase = ky * kw * c + ch;
                            for kx in 0..kw {
                                acc += x[ibase + kx * c] * w[wbase + kx * c];
                            }
                        }
                        out[obase + ch] = activation.apply(acc);
                    }
                } else {
                    for ch in 0..c {
                        checked(out, ch, n, oy, ox);
                    }
                }
            }
        }
    }
    Ok(())
}

/// Edge-emulated float depthwise convolution: taps gathered per output cell
/// and channel in the reference `(ky, kx)` order, reduced under the
/// emulator's numerics. The faithful configuration is bitwise-identical to
/// [`dwconv_f32`] (whose two flavors only differ in loop order).
#[allow(clippy::too_many_arguments)]
pub(crate) fn dwconv_f32_emulated(
    node: &Node,
    inputs: &[&Tensor],
    out_def: &TensorDef,
    stride: usize,
    padding: Padding,
    activation: Activation,
    numerics: &EdgeNumerics,
    scratch: &mut Vec<f32>,
    out_t: &mut Tensor,
) -> Result<()> {
    let _ = node;
    let input = inputs[0];
    let weights = inputs[1];
    let bias = inputs.get(2).map(|t| t.as_f32()).transpose()?;
    let x = input.as_f32()?;
    let w = weights.as_f32()?;
    let ws = weights.shape().dims();
    let (kh, kw, c) = (ws[1], ws[2], ws[3]);
    let g = geometry(input, out_def, kh, kw, stride, padding);
    let out = f32_slot(out_t, out_def)?;

    for n in 0..g.n {
        for oy in 0..g.out_h {
            for ox in 0..g.out_w {
                let obase = ((n * g.out_h + oy) * g.out_w + ox) * c;
                for ch in 0..c {
                    // Interleaved (value, weight) tap pairs.
                    scratch.clear();
                    for ky in 0..kh {
                        let iy = (oy * stride + ky) as isize - g.pad_top as isize;
                        if iy < 0 || iy >= g.in_h as isize {
                            continue;
                        }
                        for kx in 0..kw {
                            let ix = (ox * stride + kx) as isize - g.pad_left as isize;
                            if ix < 0 || ix >= g.in_w as isize {
                                continue;
                            }
                            let i = ((n * g.in_h + iy as usize) * g.in_w + ix as usize) * c + ch;
                            scratch.push(x[i]);
                            scratch.push(w[(ky * kw + kx) * c + ch]);
                        }
                    }
                    let acc = emulated_dot(
                        bias.map(|b| b[ch]).unwrap_or(0.0),
                        scratch.len() / 2,
                        |i| (scratch[2 * i], scratch[2 * i + 1]),
                        numerics,
                    );
                    out[obase + ch] = activation.apply(acc);
                }
            }
        }
    }
    Ok(())
}

pub(super) fn weight_scale(q: &QuantParams, c: usize) -> f32 {
    q.for_channel(c).0
}

/// Quantized 2-D convolution (both flavors compute identical i32 math). The
/// batch dimension is the outer loop, so stacked batches run natively.
#[allow(clippy::too_many_arguments)]
pub(crate) fn conv2d_q(
    node: &Node,
    inputs: &[&Tensor],
    out_def: &TensorDef,
    stride: usize,
    padding: Padding,
    activation: Activation,
    requant: RequantMode,
    out_t: &mut Tensor,
) -> Result<()> {
    let input = inputs[0];
    let weights = inputs[1];
    let bias = inputs.get(2).map(|t| t.as_i32()).transpose()?;
    let (s_in, zp_in) = qparams_of(node, input)?;
    let (s_out, zp_out) = out_qparams(node, out_def)?;
    let wq = weights.quant().cloned().unwrap_or(QuantParams::PerTensor {
        scale: 1.0,
        zero_point: 0,
    });
    let x = input.as_u8()?;
    let w = weights.as_i8()?;
    let ws = weights.shape().dims();
    let (out_c, kh, kw) = (ws[0], ws[1], ws[2]);
    let g = geometry(input, out_def, kh, kw, stride, padding);
    let (qlo, qhi) = act_qbounds(activation, s_out, zp_out);
    let out = u8_slot(out_t, out_def)?;

    for n in 0..g.n {
        for oy in 0..g.out_h {
            for ox in 0..g.out_w {
                let obase = ((n * g.out_h + oy) * g.out_w + ox) * out_c;
                for oc in 0..out_c {
                    let mut acc: i32 = bias.map(|b| b[oc]).unwrap_or(0);
                    for ky in 0..kh {
                        let iy = (oy * stride + ky) as isize - g.pad_top as isize;
                        if iy < 0 || iy >= g.in_h as isize {
                            continue;
                        }
                        for kx in 0..kw {
                            let ix = (ox * stride + kx) as isize - g.pad_left as isize;
                            if ix < 0 || ix >= g.in_w as isize {
                                continue;
                            }
                            let ibase =
                                ((n * g.in_h + iy as usize) * g.in_w + ix as usize) * g.in_c;
                            let wbase = ((oc * kh + ky) * kw + kx) * g.in_c;
                            for ic in 0..g.in_c {
                                let xv = x[ibase + ic] as i32 - zp_in;
                                let wv = w[wbase + ic] as i32;
                                acc += xv * wv;
                            }
                        }
                    }
                    let m = (s_in as f64) * (weight_scale(&wq, oc) as f64) / (s_out as f64);
                    out[obase + oc] = requantize(acc, m, zp_out, qlo, qhi, requant);
                }
            }
        }
    }
    Ok(())
}

/// Quantized depthwise convolution. The optimized flavor carries the
/// injectable i16-accumulator defect (§4.4): products are accumulated into a
/// wrapping 16-bit register, overflowing on realistic activations.
#[allow(clippy::too_many_arguments)]
pub(crate) fn dwconv_q(
    node: &Node,
    inputs: &[&Tensor],
    out_def: &TensorDef,
    stride: usize,
    padding: Padding,
    activation: Activation,
    flavor: KernelFlavor,
    bugs: &KernelBugs,
    requant: RequantMode,
    out_t: &mut Tensor,
) -> Result<()> {
    let input = inputs[0];
    let weights = inputs[1];
    let bias = inputs.get(2).map(|t| t.as_i32()).transpose()?;
    let (s_in, zp_in) = qparams_of(node, input)?;
    let (s_out, zp_out) = out_qparams(node, out_def)?;
    let wq = weights.quant().cloned().unwrap_or(QuantParams::PerTensor {
        scale: 1.0,
        zero_point: 0,
    });
    let x = input.as_u8()?;
    let w = weights.as_i8()?;
    let ws = weights.shape().dims();
    let (kh, kw, c) = (ws[1], ws[2], ws[3]);
    let g = geometry(input, out_def, kh, kw, stride, padding);
    let (qlo, qhi) = act_qbounds(activation, s_out, zp_out);
    let buggy = flavor == KernelFlavor::Optimized && bugs.optimized_dwconv_i16_accumulator;
    let out = u8_slot(out_t, out_def)?;

    for n in 0..g.n {
        for oy in 0..g.out_h {
            for ox in 0..g.out_w {
                let obase = ((n * g.out_h + oy) * g.out_w + ox) * c;
                for ch in 0..c {
                    let mut acc: i32 = 0;
                    let mut acc16: i16 = 0;
                    for ky in 0..kh {
                        let iy = (oy * stride + ky) as isize - g.pad_top as isize;
                        if iy < 0 || iy >= g.in_h as isize {
                            continue;
                        }
                        for kx in 0..kw {
                            let ix = (ox * stride + kx) as isize - g.pad_left as isize;
                            if ix < 0 || ix >= g.in_w as isize {
                                continue;
                            }
                            let i = ((n * g.in_h + iy as usize) * g.in_w + ix as usize) * c + ch;
                            let prod = (x[i] as i32 - zp_in) * w[(ky * kw + kx) * c + ch] as i32;
                            if buggy {
                                // Injected defect: the optimized kernel
                                // pre-scales products into the Q13 domain of
                                // its 16-bit SIMD lane and accumulates with
                                // wrapping arithmetic.
                                acc16 = acc16.wrapping_add((prod << 2) as i16);
                            } else {
                                acc += prod;
                            }
                        }
                    }
                    let total = if buggy {
                        // ...and forgets to scale back down before the bias.
                        (acc16 as i32 >> 2) + bias.map(|b| b[ch]).unwrap_or(0)
                    } else {
                        acc + bias.map(|b| b[ch]).unwrap_or(0)
                    };
                    let m = (s_in as f64) * (weight_scale(&wq, ch) as f64) / (s_out as f64);
                    out[obase + ch] = requantize(total, m, zp_out, qlo, qhi, requant);
                }
            }
        }
    }
    Ok(())
}
