//! Convolution kernels: float/quantized, reference/optimized, plus the
//! injected optimized-depthwise defect of §4.4.

use mlexray_tensor::{QuantParams, Tensor};

use crate::graph::{Node, TensorDef};
use crate::kernels::{
    act_qbounds, build_f_output, build_q_output, out_qparams, qparams_of, requantize,
};
use crate::ops::{same_pad_before, Activation, Padding};
use crate::resolver::{KernelBugs, KernelFlavor};
use crate::Result;

/// Blocked dot product with four partial accumulators. Matches the optimized
/// kernel's summation order, which differs from the reference kernel's
/// sequential order — the benign float drift between the two resolvers.
#[inline]
fn dot_blocked(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut s = [0.0f32; 4];
    let chunks = a.len() / 4;
    for i in 0..chunks {
        let o = i * 4;
        s[0] += a[o] * b[o];
        s[1] += a[o + 1] * b[o + 1];
        s[2] += a[o + 2] * b[o + 2];
        s[3] += a[o + 3] * b[o + 3];
    }
    let mut rest = 0.0;
    for i in chunks * 4..a.len() {
        rest += a[i] * b[i];
    }
    (s[0] + s[1]) + (s[2] + s[3]) + rest
}

struct ConvGeom {
    n: usize,
    in_h: usize,
    in_w: usize,
    in_c: usize,
    out_h: usize,
    out_w: usize,
    #[allow(dead_code)]
    kh: usize,
    #[allow(dead_code)]
    kw: usize,
    pad_top: usize,
    pad_left: usize,
}

fn geometry(
    input: &Tensor,
    out_def: &TensorDef,
    kh: usize,
    kw: usize,
    stride: usize,
    padding: Padding,
) -> ConvGeom {
    let is = input.shape().dims();
    let os = out_def.shape().dims();
    let (pad_top, pad_left) = match padding {
        Padding::Same => (
            same_pad_before(is[1], kh, stride),
            same_pad_before(is[2], kw, stride),
        ),
        Padding::Valid => (0, 0),
    };
    ConvGeom {
        n: is[0],
        in_h: is[1],
        in_w: is[2],
        in_c: is[3],
        out_h: os[1],
        out_w: os[2],
        kh,
        kw,
        pad_top,
        pad_left,
    }
}

/// Float 2-D convolution.
pub(crate) fn conv2d_f32(
    node: &Node,
    inputs: &[&Tensor],
    out_def: &TensorDef,
    stride: usize,
    padding: Padding,
    activation: Activation,
    flavor: KernelFlavor,
) -> Result<Tensor> {
    let _ = node;
    let input = inputs[0];
    let weights = inputs[1];
    let bias = inputs.get(2).map(|t| t.as_f32()).transpose()?;
    let x = input.as_f32()?;
    let w = weights.as_f32()?;
    let ws = weights.shape().dims();
    let (out_c, kh, kw) = (ws[0], ws[1], ws[2]);
    let g = geometry(input, out_def, kh, kw, stride, padding);
    let mut out = vec![0.0f32; out_def.shape().num_elements()];
    let ksize = kh * kw * g.in_c;

    match flavor {
        KernelFlavor::Reference => {
            // Naive loops, sequential accumulation.
            for n in 0..g.n {
                for oy in 0..g.out_h {
                    for ox in 0..g.out_w {
                        for oc in 0..out_c {
                            let mut acc = bias.map(|b| b[oc]).unwrap_or(0.0);
                            for ky in 0..kh {
                                let iy = (oy * stride + ky) as isize - g.pad_top as isize;
                                if iy < 0 || iy >= g.in_h as isize {
                                    continue;
                                }
                                for kx in 0..kw {
                                    let ix = (ox * stride + kx) as isize - g.pad_left as isize;
                                    if ix < 0 || ix >= g.in_w as isize {
                                        continue;
                                    }
                                    let ibase = ((n * g.in_h + iy as usize) * g.in_w + ix as usize)
                                        * g.in_c;
                                    let wbase = ((oc * kh + ky) * kw + kx) * g.in_c;
                                    for ic in 0..g.in_c {
                                        acc += x[ibase + ic] * w[wbase + ic];
                                    }
                                }
                            }
                            let obase = ((n * g.out_h + oy) * g.out_w + ox) * out_c + oc;
                            out[obase] = activation.apply(acc);
                        }
                    }
                }
            }
        }
        KernelFlavor::Optimized => {
            // im2col + blocked dot products.
            let mut patch = vec![0.0f32; ksize];
            for n in 0..g.n {
                for oy in 0..g.out_h {
                    for ox in 0..g.out_w {
                        patch.iter_mut().for_each(|v| *v = 0.0);
                        for ky in 0..kh {
                            let iy = (oy * stride + ky) as isize - g.pad_top as isize;
                            if iy < 0 || iy >= g.in_h as isize {
                                continue;
                            }
                            for kx in 0..kw {
                                let ix = (ox * stride + kx) as isize - g.pad_left as isize;
                                if ix < 0 || ix >= g.in_w as isize {
                                    continue;
                                }
                                let ibase =
                                    ((n * g.in_h + iy as usize) * g.in_w + ix as usize) * g.in_c;
                                let pbase = (ky * kw + kx) * g.in_c;
                                patch[pbase..pbase + g.in_c]
                                    .copy_from_slice(&x[ibase..ibase + g.in_c]);
                            }
                        }
                        let obase = ((n * g.out_h + oy) * g.out_w + ox) * out_c;
                        for oc in 0..out_c {
                            let wrow = &w[oc * ksize..(oc + 1) * ksize];
                            let acc =
                                dot_blocked(&patch, wrow) + bias.map(|b| b[oc]).unwrap_or(0.0);
                            out[obase + oc] = activation.apply(acc);
                        }
                    }
                }
            }
        }
    }
    build_f_output(out_def, out)
}

/// Float depthwise 2-D convolution.
pub(crate) fn dwconv_f32(
    node: &Node,
    inputs: &[&Tensor],
    out_def: &TensorDef,
    stride: usize,
    padding: Padding,
    activation: Activation,
    flavor: KernelFlavor,
) -> Result<Tensor> {
    let _ = node;
    let input = inputs[0];
    let weights = inputs[1];
    let bias = inputs.get(2).map(|t| t.as_f32()).transpose()?;
    let x = input.as_f32()?;
    let w = weights.as_f32()?;
    let ws = weights.shape().dims();
    let (kh, kw, c) = (ws[1], ws[2], ws[3]);
    let g = geometry(input, out_def, kh, kw, stride, padding);
    let mut out = vec![0.0f32; out_def.shape().num_elements()];

    // Same arithmetic in both flavors for float depthwise — the loop order
    // differs (channel-outer for optimized), giving identical results since
    // each channel is an independent sequential sum.
    let channel_outer = flavor == KernelFlavor::Optimized;
    let mut body = |ch: usize, n: usize, oy: usize, ox: usize| {
        let mut acc = bias.map(|b| b[ch]).unwrap_or(0.0);
        for ky in 0..kh {
            let iy = (oy * stride + ky) as isize - g.pad_top as isize;
            if iy < 0 || iy >= g.in_h as isize {
                continue;
            }
            for kx in 0..kw {
                let ix = (ox * stride + kx) as isize - g.pad_left as isize;
                if ix < 0 || ix >= g.in_w as isize {
                    continue;
                }
                let i = ((n * g.in_h + iy as usize) * g.in_w + ix as usize) * c + ch;
                acc += x[i] * w[(ky * kw + kx) * c + ch];
            }
        }
        let o = ((n * g.out_h + oy) * g.out_w + ox) * c + ch;
        out[o] = activation.apply(acc);
    };
    if channel_outer {
        for ch in 0..c {
            for n in 0..g.n {
                for oy in 0..g.out_h {
                    for ox in 0..g.out_w {
                        body(ch, n, oy, ox);
                    }
                }
            }
        }
    } else {
        for n in 0..g.n {
            for oy in 0..g.out_h {
                for ox in 0..g.out_w {
                    for ch in 0..c {
                        body(ch, n, oy, ox);
                    }
                }
            }
        }
    }
    build_f_output(out_def, out)
}

fn weight_scale(q: &QuantParams, c: usize) -> f32 {
    q.for_channel(c).0
}

/// Quantized 2-D convolution (both flavors compute identical i32 math).
pub(crate) fn conv2d_q(
    node: &Node,
    inputs: &[&Tensor],
    out_def: &TensorDef,
    stride: usize,
    padding: Padding,
    activation: Activation,
) -> Result<Tensor> {
    let input = inputs[0];
    let weights = inputs[1];
    let bias = inputs.get(2).map(|t| t.as_i32()).transpose()?;
    let (s_in, zp_in) = qparams_of(node, input)?;
    let (s_out, zp_out) = out_qparams(node, out_def)?;
    let wq = weights.quant().cloned().unwrap_or(QuantParams::PerTensor {
        scale: 1.0,
        zero_point: 0,
    });
    let x = input.as_u8()?;
    let w = weights.as_i8()?;
    let ws = weights.shape().dims();
    let (out_c, kh, kw) = (ws[0], ws[1], ws[2]);
    let g = geometry(input, out_def, kh, kw, stride, padding);
    let (qlo, qhi) = act_qbounds(activation, s_out, zp_out);
    let mut out = vec![0u8; out_def.shape().num_elements()];

    for n in 0..g.n {
        for oy in 0..g.out_h {
            for ox in 0..g.out_w {
                let obase = ((n * g.out_h + oy) * g.out_w + ox) * out_c;
                for oc in 0..out_c {
                    let mut acc: i32 = bias.map(|b| b[oc]).unwrap_or(0);
                    for ky in 0..kh {
                        let iy = (oy * stride + ky) as isize - g.pad_top as isize;
                        if iy < 0 || iy >= g.in_h as isize {
                            continue;
                        }
                        for kx in 0..kw {
                            let ix = (ox * stride + kx) as isize - g.pad_left as isize;
                            if ix < 0 || ix >= g.in_w as isize {
                                continue;
                            }
                            let ibase =
                                ((n * g.in_h + iy as usize) * g.in_w + ix as usize) * g.in_c;
                            let wbase = ((oc * kh + ky) * kw + kx) * g.in_c;
                            for ic in 0..g.in_c {
                                let xv = x[ibase + ic] as i32 - zp_in;
                                let wv = w[wbase + ic] as i32;
                                acc += xv * wv;
                            }
                        }
                    }
                    let m = (s_in as f64) * (weight_scale(&wq, oc) as f64) / (s_out as f64);
                    out[obase + oc] = requantize(acc, m, zp_out, qlo, qhi);
                }
            }
        }
    }
    build_q_output(node, out_def, out)
}

/// Quantized depthwise convolution. The optimized flavor carries the
/// injectable i16-accumulator defect (§4.4): products are accumulated into a
/// wrapping 16-bit register, overflowing on realistic activations.
#[allow(clippy::too_many_arguments)]
pub(crate) fn dwconv_q(
    node: &Node,
    inputs: &[&Tensor],
    out_def: &TensorDef,
    stride: usize,
    padding: Padding,
    activation: Activation,
    flavor: KernelFlavor,
    bugs: &KernelBugs,
) -> Result<Tensor> {
    let input = inputs[0];
    let weights = inputs[1];
    let bias = inputs.get(2).map(|t| t.as_i32()).transpose()?;
    let (s_in, zp_in) = qparams_of(node, input)?;
    let (s_out, zp_out) = out_qparams(node, out_def)?;
    let wq = weights.quant().cloned().unwrap_or(QuantParams::PerTensor {
        scale: 1.0,
        zero_point: 0,
    });
    let x = input.as_u8()?;
    let w = weights.as_i8()?;
    let ws = weights.shape().dims();
    let (kh, kw, c) = (ws[1], ws[2], ws[3]);
    let g = geometry(input, out_def, kh, kw, stride, padding);
    let (qlo, qhi) = act_qbounds(activation, s_out, zp_out);
    let buggy = flavor == KernelFlavor::Optimized && bugs.optimized_dwconv_i16_accumulator;
    let mut out = vec![0u8; out_def.shape().num_elements()];

    for n in 0..g.n {
        for oy in 0..g.out_h {
            for ox in 0..g.out_w {
                let obase = ((n * g.out_h + oy) * g.out_w + ox) * c;
                for ch in 0..c {
                    let mut acc: i32 = 0;
                    let mut acc16: i16 = 0;
                    for ky in 0..kh {
                        let iy = (oy * stride + ky) as isize - g.pad_top as isize;
                        if iy < 0 || iy >= g.in_h as isize {
                            continue;
                        }
                        for kx in 0..kw {
                            let ix = (ox * stride + kx) as isize - g.pad_left as isize;
                            if ix < 0 || ix >= g.in_w as isize {
                                continue;
                            }
                            let i = ((n * g.in_h + iy as usize) * g.in_w + ix as usize) * c + ch;
                            let prod = (x[i] as i32 - zp_in) * w[(ky * kw + kx) * c + ch] as i32;
                            if buggy {
                                // Injected defect: the optimized kernel
                                // pre-scales products into the Q13 domain of
                                // its 16-bit SIMD lane and accumulates with
                                // wrapping arithmetic.
                                acc16 = acc16.wrapping_add((prod << 2) as i16);
                            } else {
                                acc += prod;
                            }
                        }
                    }
                    let total = if buggy {
                        // ...and forgets to scale back down before the bias.
                        (acc16 as i32 >> 2) + bias.map(|b| b[ch]).unwrap_or(0)
                    } else {
                        acc + bias.map(|b| b[ch]).unwrap_or(0)
                    };
                    let m = (s_in as f64) * (weight_scale(&wq, ch) as f64) / (s_out as f64);
                    out[obase + ch] = requantize(total, m, zp_out, qlo, qhi);
                }
            }
        }
    }
    build_q_output(node, out_def, out)
}
