//! Fully-connected and matrix-multiplication kernels.
//!
//! `fc_f32`/`fc_q` treat the leading dimension as the batch, so a stacked
//! N-frame invoke runs as one `[N*n, in] x [out, in]^T` GEMM.

use mlexray_tensor::{QuantParams, Tensor};

use crate::graph::{Node, TensorDef};
use crate::kernels::{
    act_qbounds, emulated_dot, f32_slot, out_qparams, qparams_of, requantize, u8_slot,
};
use crate::ops::Activation;
use crate::resolver::{EdgeNumerics, KernelFlavor, RequantMode};
use crate::Result;

/// Float fully-connected layer, `[n, in] x [out, in]^T`.
pub(crate) fn fc_f32(
    node: &Node,
    inputs: &[&Tensor],
    out_def: &TensorDef,
    activation: Activation,
    flavor: KernelFlavor,
    out_t: &mut Tensor,
) -> Result<()> {
    let _ = node;
    let x = inputs[0].as_f32()?;
    let w = inputs[1].as_f32()?;
    let bias = inputs.get(2).map(|t| t.as_f32()).transpose()?;
    let in_f = inputs[1].shape().dims()[1];
    let out_f = inputs[1].shape().dims()[0];
    let batch = inputs[0].shape().dims()[0];
    let out = f32_slot(out_t, out_def)?;
    for n in 0..batch {
        let xrow = &x[n * in_f..(n + 1) * in_f];
        for o in 0..out_f {
            let wrow = &w[o * in_f..(o + 1) * in_f];
            let acc = match flavor {
                KernelFlavor::Reference => {
                    let mut acc = 0.0f32;
                    for i in 0..in_f {
                        acc += xrow[i] * wrow[i];
                    }
                    acc
                }
                // A Simd-flavor fc dispatches to `gemm::fc_f32_simd` before
                // reaching this kernel; if it ever lands here it gets the
                // optimized scalar arithmetic.
                KernelFlavor::Optimized | KernelFlavor::Simd => {
                    let mut s = [0.0f32; 4];
                    let chunks = in_f / 4;
                    for i in 0..chunks {
                        let b = i * 4;
                        s[0] += xrow[b] * wrow[b];
                        s[1] += xrow[b + 1] * wrow[b + 1];
                        s[2] += xrow[b + 2] * wrow[b + 2];
                        s[3] += xrow[b + 3] * wrow[b + 3];
                    }
                    let mut rest = 0.0;
                    for i in chunks * 4..in_f {
                        rest += xrow[i] * wrow[i];
                    }
                    (s[0] + s[1]) + (s[2] + s[3]) + rest
                }
            };
            out[n * out_f + o] = activation.apply(acc + bias.map(|b| b[o]).unwrap_or(0.0));
        }
    }
    Ok(())
}

/// Edge-emulated float fully-connected layer: each row reduction runs under
/// the emulator's numerics. The faithful configuration matches the reference
/// flavor of [`fc_f32`] bitwise.
pub(crate) fn fc_f32_emulated(
    node: &Node,
    inputs: &[&Tensor],
    out_def: &TensorDef,
    activation: Activation,
    numerics: &EdgeNumerics,
    out_t: &mut Tensor,
) -> Result<()> {
    let _ = node;
    let x = inputs[0].as_f32()?;
    let w = inputs[1].as_f32()?;
    let bias = inputs.get(2).map(|t| t.as_f32()).transpose()?;
    let in_f = inputs[1].shape().dims()[1];
    let out_f = inputs[1].shape().dims()[0];
    let batch = inputs[0].shape().dims()[0];
    let out = f32_slot(out_t, out_def)?;
    for n in 0..batch {
        let xrow = &x[n * in_f..(n + 1) * in_f];
        for o in 0..out_f {
            let wrow = &w[o * in_f..(o + 1) * in_f];
            let acc = emulated_dot(0.0, in_f, |i| (xrow[i], wrow[i]), numerics);
            out[n * out_f + o] = activation.apply(acc + bias.map(|b| b[o]).unwrap_or(0.0));
        }
    }
    Ok(())
}

/// Quantized fully-connected layer.
pub(crate) fn fc_q(
    node: &Node,
    inputs: &[&Tensor],
    out_def: &TensorDef,
    activation: Activation,
    requant: RequantMode,
    out_t: &mut Tensor,
) -> Result<()> {
    let input = inputs[0];
    let weights = inputs[1];
    let bias = inputs.get(2).map(|t| t.as_i32()).transpose()?;
    let (s_in, zp_in) = qparams_of(node, input)?;
    let (s_out, zp_out) = out_qparams(node, out_def)?;
    let wq = weights.quant().cloned().unwrap_or(QuantParams::PerTensor {
        scale: 1.0,
        zero_point: 0,
    });
    let x = input.as_u8()?;
    let w = weights.as_i8()?;
    let in_f = weights.shape().dims()[1];
    let out_f = weights.shape().dims()[0];
    let batch = input.shape().dims()[0];
    let (qlo, qhi) = act_qbounds(activation, s_out, zp_out);
    let out = u8_slot(out_t, out_def)?;
    for n in 0..batch {
        for o in 0..out_f {
            let mut acc: i32 = bias.map(|b| b[o]).unwrap_or(0);
            for i in 0..in_f {
                acc += (x[n * in_f + i] as i32 - zp_in) * w[o * in_f + i] as i32;
            }
            let m = (s_in as f64) * (wq.for_channel(o).0 as f64) / (s_out as f64);
            out[n * out_f + o] = requantize(acc, m, zp_out, qlo, qhi, requant);
        }
    }
    Ok(())
}

/// Float 2-D matrix multiplication (used by the transformer encoder).
pub(crate) fn matmul_f32(
    node: &Node,
    inputs: &[&Tensor],
    out_def: &TensorDef,
    transpose_b: bool,
    out_t: &mut Tensor,
) -> Result<()> {
    let _ = node;
    let a = inputs[0].as_f32()?;
    let b = inputs[1].as_f32()?;
    let sa = inputs[0].shape().dims();
    let sb = inputs[1].shape().dims();
    let (m, k) = (sa[0], sa[1]);
    let n = if transpose_b { sb[0] } else { sb[1] };
    let out = f32_slot(out_t, out_def)?;
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            if transpose_b {
                for p in 0..k {
                    acc += a[i * k + p] * b[j * k + p];
                }
            } else {
                for p in 0..k {
                    acc += a[i * k + p] * b[p * n + j];
                }
            }
            out[i * n + j] = acc;
        }
    }
    Ok(())
}
