//! Element-wise, normalization, reshape and quantization-boundary kernels.
//! Outputs are laid out batch-major, so stacked batches run natively.

use mlexray_tensor::{Tensor, TensorData};

use crate::graph::{Node, TensorDef};
use crate::kernels::{f32_slot, out_qparams, qparams_of, u8_slot};
use crate::ops::Activation;
use crate::Result;

/// Float addition with trailing-suffix broadcast of the rhs.
pub(crate) fn add_f32(
    node: &Node,
    inputs: &[&Tensor],
    out_def: &TensorDef,
    activation: Activation,
    out_t: &mut Tensor,
) -> Result<()> {
    let _ = node;
    let a = inputs[0].as_f32()?;
    let b = inputs[1].as_f32()?;
    let blen = b.len().max(1);
    let out = f32_slot(out_t, out_def)?;
    for (i, (o, &x)) in out.iter_mut().zip(a).enumerate() {
        *o = activation.apply(x + b[i % blen]);
    }
    Ok(())
}

/// Quantized addition: dequantize both sides, add, requantize to the output
/// parameters (TFLite performs the same rescaling, in fixed point).
pub(crate) fn add_q(
    node: &Node,
    inputs: &[&Tensor],
    out_def: &TensorDef,
    activation: Activation,
    out_t: &mut Tensor,
) -> Result<()> {
    let (s_a, zp_a) = qparams_of(node, inputs[0])?;
    let (s_b, zp_b) = qparams_of(node, inputs[1])?;
    let (s_out, zp_out) = out_qparams(node, out_def)?;
    let a = inputs[0].as_u8()?;
    let b = inputs[1].as_u8()?;
    let blen = b.len().max(1);
    let out = u8_slot(out_t, out_def)?;
    for (i, (o, &x)) in out.iter_mut().zip(a).enumerate() {
        let ra = s_a * (x as i32 - zp_a) as f32;
        let rb = s_b * (b[i % blen] as i32 - zp_b) as f32;
        let r = activation.apply(ra + rb);
        *o = (zp_out + (r / s_out).round() as i32).clamp(0, 255) as u8;
    }
    Ok(())
}

fn mul_rhs_index(lhs: &Tensor, rhs: &Tensor, i: usize) -> usize {
    if rhs.len() == 1 {
        return 0;
    }
    if rhs.len() == lhs.len() {
        return i;
    }
    // [n,1,1,c] gate against [n,h,w,c].
    let d = lhs.shape().dims();
    let c = d[3];
    let n = i / (d[1] * d[2] * c);
    let ch = i % c;
    n * c + ch
}

/// Float multiplication: same shape, scalar, or `[n,1,1,c]` gate.
pub(crate) fn mul_f32(
    node: &Node,
    inputs: &[&Tensor],
    out_def: &TensorDef,
    out_t: &mut Tensor,
) -> Result<()> {
    let _ = node;
    let a = inputs[0].as_f32()?;
    let b = inputs[1].as_f32()?;
    let out = f32_slot(out_t, out_def)?;
    for (i, (o, &x)) in out.iter_mut().zip(a).enumerate() {
        *o = x * b[mul_rhs_index(inputs[0], inputs[1], i)];
    }
    Ok(())
}

/// Quantized multiplication via dequantize-multiply-requantize.
pub(crate) fn mul_q(
    node: &Node,
    inputs: &[&Tensor],
    out_def: &TensorDef,
    out_t: &mut Tensor,
) -> Result<()> {
    let (s_a, zp_a) = qparams_of(node, inputs[0])?;
    let (s_b, zp_b) = qparams_of(node, inputs[1])?;
    let (s_out, zp_out) = out_qparams(node, out_def)?;
    let a = inputs[0].as_u8()?;
    let b = inputs[1].as_u8()?;
    let out = u8_slot(out_t, out_def)?;
    for (i, (o, &x)) in out.iter_mut().zip(a).enumerate() {
        let rb = s_b * (b[mul_rhs_index(inputs[0], inputs[1], i)] as i32 - zp_b) as f32;
        let r = s_a * (x as i32 - zp_a) as f32 * rb;
        *o = (zp_out + (r / s_out).round() as i32).clamp(0, 255) as u8;
    }
    Ok(())
}

/// Standalone float activation.
pub(crate) fn act_f32(
    node: &Node,
    inputs: &[&Tensor],
    out_def: &TensorDef,
    act: Activation,
    out_t: &mut Tensor,
) -> Result<()> {
    let _ = node;
    let x = inputs[0].as_f32()?;
    let out = f32_slot(out_t, out_def)?;
    for (o, &v) in out.iter_mut().zip(x) {
        *o = act.apply(v);
    }
    Ok(())
}

/// Standalone quantized activation via dequantize-apply-requantize (TFLite
/// implements these as 256-entry lookup tables with the same semantics).
pub(crate) fn act_q(
    node: &Node,
    inputs: &[&Tensor],
    out_def: &TensorDef,
    act: Activation,
    out_t: &mut Tensor,
) -> Result<()> {
    let (s_in, zp_in) = qparams_of(node, inputs[0])?;
    let (s_out, zp_out) = out_qparams(node, out_def)?;
    // Build the 256-entry LUT, as the real runtime does.
    let lut: Vec<u8> = (0..256)
        .map(|q| {
            let r = act.apply(s_in * (q - zp_in) as f32);
            (zp_out + (r / s_out).round() as i32).clamp(0, 255) as u8
        })
        .collect();
    let x = inputs[0].as_u8()?;
    let out = u8_slot(out_t, out_def)?;
    for (o, &q) in out.iter_mut().zip(x) {
        *o = lut[q as usize];
    }
    Ok(())
}

/// Spatial zero padding (quantized tensors pad with the zero point).
#[allow(clippy::too_many_arguments)]
pub(crate) fn pad(
    node: &Node,
    inputs: &[&Tensor],
    out_def: &TensorDef,
    top: usize,
    bottom: usize,
    left: usize,
    right: usize,
    out_t: &mut Tensor,
) -> Result<()> {
    let _ = (bottom, right);
    let input = inputs[0];
    let d = input.shape().dims();
    let (n, h, w, c) = (d[0], d[1], d[2], d[3]);
    let od = out_def.shape().dims();
    let (oh, ow) = (od[1], od[2]);
    match input.as_f32() {
        Ok(x) => {
            let out = f32_slot(out_t, out_def)?;
            out.iter_mut().for_each(|v| *v = 0.0);
            for b in 0..n {
                for y in 0..h {
                    for xx in 0..w {
                        let src = ((b * h + y) * w + xx) * c;
                        let dst = ((b * oh + y + top) * ow + xx + left) * c;
                        out[dst..dst + c].copy_from_slice(&x[src..src + c]);
                    }
                }
            }
            Ok(())
        }
        Err(_) => {
            let (_, zp) = out_qparams(node, out_def)?;
            let x = inputs[0].as_u8()?;
            let out = u8_slot(out_t, out_def)?;
            out.iter_mut().for_each(|v| *v = zp.clamp(0, 255) as u8);
            for b in 0..n {
                for y in 0..h {
                    for xx in 0..w {
                        let src = ((b * h + y) * w + xx) * c;
                        let dst = ((b * oh + y + top) * ow + xx + left) * c;
                        out[dst..dst + c].copy_from_slice(&x[src..src + c]);
                    }
                }
            }
            Ok(())
        }
    }
}

/// Concatenation along an axis; quantized inputs are requantized to the
/// output parameters while copying.
pub(crate) fn concat(
    node: &Node,
    inputs: &[&Tensor],
    out_def: &TensorDef,
    axis: usize,
    out_t: &mut Tensor,
) -> Result<()> {
    let out_dims = out_def.shape().dims().to_vec();
    let outer: usize = out_dims[..axis].iter().product::<usize>().max(1);
    let inner: usize = out_dims[axis + 1..].iter().product::<usize>().max(1);
    let quantized = inputs[0].dtype() == mlexray_tensor::DType::U8;
    if quantized {
        let (s_out, zp_out) = out_qparams(node, out_def)?;
        let out = u8_slot(out_t, out_def)?;
        let mut axis_off = 0usize;
        let out_axis = out_dims[axis];
        for t in inputs {
            let (s_in, zp_in) = qparams_of(node, t)?;
            let x = t.as_u8()?;
            let a = t.shape().dims()[axis];
            for o in 0..outer {
                for ai in 0..a {
                    for ii in 0..inner {
                        let src = (o * a + ai) * inner + ii;
                        let dst = (o * out_axis + axis_off + ai) * inner + ii;
                        let r = s_in * (x[src] as i32 - zp_in) as f32;
                        out[dst] = (zp_out + (r / s_out).round() as i32).clamp(0, 255) as u8;
                    }
                }
            }
            axis_off += a;
        }
        Ok(())
    } else {
        let out = f32_slot(out_t, out_def)?;
        let mut axis_off = 0usize;
        let out_axis = out_dims[axis];
        for t in inputs {
            let x = t.as_f32()?;
            let a = t.shape().dims()[axis];
            for o in 0..outer {
                for ai in 0..a {
                    let src = (o * a + ai) * inner;
                    let dst = (o * out_axis + axis_off + ai) * inner;
                    out[dst..dst + inner].copy_from_slice(&x[src..src + inner]);
                }
            }
            axis_off += a;
        }
        Ok(())
    }
}

/// Softmax over the last axis.
pub(crate) fn softmax_f32(
    node: &Node,
    inputs: &[&Tensor],
    out_def: &TensorDef,
    out_t: &mut Tensor,
) -> Result<()> {
    let _ = node;
    let x = inputs[0].as_f32()?;
    let dims = inputs[0].shape().dims();
    let last = dims[dims.len() - 1];
    let rows = x.len() / last.max(1);
    let out = f32_slot(out_t, out_def)?;
    for r in 0..rows {
        let row = &x[r * last..(r + 1) * last];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for (i, &v) in row.iter().enumerate() {
            let e = (v - max).exp();
            out[r * last + i] = e;
            sum += e;
        }
        for v in &mut out[r * last..(r + 1) * last] {
            *v /= sum;
        }
    }
    Ok(())
}

/// Inference-style batch normalization over the channel (last) axis.
pub(crate) fn batch_norm_f32(
    node: &Node,
    inputs: &[&Tensor],
    out_def: &TensorDef,
    epsilon: f32,
    out_t: &mut Tensor,
) -> Result<()> {
    let _ = node;
    let x = inputs[0].as_f32()?;
    let gamma = inputs[1].as_f32()?;
    let beta = inputs[2].as_f32()?;
    let mean = inputs[3].as_f32()?;
    let var = inputs[4].as_f32()?;
    let c = gamma.len();
    let out = f32_slot(out_t, out_def)?;
    for (i, (o, &v)) in out.iter_mut().zip(x).enumerate() {
        let ch = i % c;
        *o = gamma[ch] * (v - mean[ch]) / (var[ch] + epsilon).sqrt() + beta[ch];
    }
    Ok(())
}

/// Layer normalization over the last axis.
pub(crate) fn layer_norm_f32(
    node: &Node,
    inputs: &[&Tensor],
    out_def: &TensorDef,
    epsilon: f32,
    out_t: &mut Tensor,
) -> Result<()> {
    let _ = node;
    let x = inputs[0].as_f32()?;
    let gamma = inputs[1].as_f32()?;
    let beta = inputs[2].as_f32()?;
    let d = gamma.len();
    let rows = x.len() / d.max(1);
    let out = f32_slot(out_t, out_def)?;
    for r in 0..rows {
        let row = &x[r * d..(r + 1) * d];
        let mean = row.iter().sum::<f32>() / d as f32;
        let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
        let inv = 1.0 / (var + epsilon).sqrt();
        for (i, &v) in row.iter().enumerate() {
            out[r * d + i] = gamma[i] * (v - mean) * inv + beta[i];
        }
    }
    Ok(())
}

/// Embedding lookup; out-of-range ids clamp to the table (the `<unk>`
/// convention lives in the preprocessing layer, not here).
pub(crate) fn embedding_f32(
    node: &Node,
    inputs: &[&Tensor],
    out_def: &TensorDef,
    out_t: &mut Tensor,
) -> Result<()> {
    let _ = node;
    let ids = inputs[0].as_i32()?;
    let table = inputs[1].as_f32()?;
    let d = inputs[1].shape().dims()[1];
    let v = inputs[1].shape().dims()[0];
    let out = f32_slot(out_t, out_def)?;
    for (i, &id) in ids.iter().enumerate() {
        let id = (id.max(0) as usize).min(v - 1);
        out[i * d..(i + 1) * d].copy_from_slice(&table[id * d..(id + 1) * d]);
    }
    Ok(())
}

/// Reshape: same data, new shape (any dtype). Keeps the *input's*
/// quantization parameters on the output slot, matching the semantics of a
/// data-preserving view.
pub(crate) fn reshape(
    node: &Node,
    inputs: &[&Tensor],
    out_def: &TensorDef,
    out_t: &mut Tensor,
) -> Result<()> {
    let _ = (node, out_def);
    let input = inputs[0];
    match input.data() {
        TensorData::F32(src) => out_t.as_f32_mut()?.copy_from_slice(src),
        TensorData::U8(src) => out_t.as_u8_mut()?.copy_from_slice(src),
        TensorData::I8(src) => out_t.as_i8_mut()?.copy_from_slice(src),
        TensorData::I32(src) => out_t.as_i32_mut()?.copy_from_slice(src),
    }
    out_t.set_quant(input.quant().cloned());
    Ok(())
}

/// The `f32 → u8` quantization boundary inserted by the quantizer.
pub(crate) fn quantize(
    node: &Node,
    inputs: &[&Tensor],
    out_def: &TensorDef,
    out_t: &mut Tensor,
) -> Result<()> {
    let (scale, zp) = out_qparams(node, out_def)?;
    let x = inputs[0].as_f32()?;
    let out = u8_slot(out_t, out_def)?;
    for (o, &v) in out.iter_mut().zip(x) {
        *o = (zp + (v / scale).round() as i32).clamp(0, 255) as u8;
    }
    Ok(())
}

/// The `u8 → f32` dequantization boundary.
pub(crate) fn dequantize(
    node: &Node,
    inputs: &[&Tensor],
    out_def: &TensorDef,
    out_t: &mut Tensor,
) -> Result<()> {
    let _ = node;
    let values = inputs[0].to_f32_vec();
    let out = f32_slot(out_t, out_def)?;
    out.copy_from_slice(&values);
    Ok(())
}
