//! Kernel implementations, both float and quantized, in reference and
//! optimized flavors.
//!
//! The dispatch rule mirrors TFLite: `(op, dtype, flavor)` selects an
//! implementation. Reference kernels are deliberately naive nested loops;
//! optimized kernels restructure loops (im2col, blocked accumulation), which
//! changes float summation order — the benign source of the small
//! checkpoint-vs-mobile drift in Fig. 5 — and is where the injected
//! depthwise-conv defect of [`KernelBugs`] lives.

mod conv;
mod elementwise;
mod fc;
mod pool;

use mlexray_tensor::{DType, QuantParams, Tensor};

use crate::graph::{Graph, Node, TensorDef};
use crate::ops::{Activation, OpKind};
use crate::resolver::{KernelBugs, KernelFlavor};
use crate::{NnError, Result};

/// Executes one node given resolved input tensors and the output slot
/// definition (shape, dtype, quantization).
pub(crate) fn execute_node(
    _graph: &Graph,
    node: &Node,
    inputs: &[&Tensor],
    out_def: &TensorDef,
    flavor: KernelFlavor,
    bugs: &KernelBugs,
) -> Result<Tensor> {
    let quantized = inputs
        .first()
        .map(|t| t.dtype() == DType::U8)
        .unwrap_or(false);
    match (&node.op, quantized) {
        (
            OpKind::Conv2d {
                stride,
                padding,
                activation,
            },
            false,
        ) => conv::conv2d_f32(
            node,
            inputs,
            out_def,
            *stride,
            *padding,
            *activation,
            flavor,
        ),
        (
            OpKind::Conv2d {
                stride,
                padding,
                activation,
            },
            true,
        ) => conv::conv2d_q(node, inputs, out_def, *stride, *padding, *activation),
        (
            OpKind::DepthwiseConv2d {
                stride,
                padding,
                activation,
            },
            false,
        ) => conv::dwconv_f32(
            node,
            inputs,
            out_def,
            *stride,
            *padding,
            *activation,
            flavor,
        ),
        (
            OpKind::DepthwiseConv2d {
                stride,
                padding,
                activation,
            },
            true,
        ) => conv::dwconv_q(
            node,
            inputs,
            out_def,
            *stride,
            *padding,
            *activation,
            flavor,
            bugs,
        ),
        (OpKind::FullyConnected { activation }, false) => {
            fc::fc_f32(node, inputs, out_def, *activation, flavor)
        }
        (OpKind::FullyConnected { activation }, true) => {
            fc::fc_q(node, inputs, out_def, *activation)
        }
        (OpKind::MatMul { transpose_b }, _) => fc::matmul_f32(node, inputs, out_def, *transpose_b),
        (
            OpKind::AveragePool2d {
                pool_h,
                pool_w,
                stride,
                padding,
            },
            false,
        ) => pool::avgpool_f32(node, inputs, out_def, *pool_h, *pool_w, *stride, *padding),
        (
            OpKind::AveragePool2d {
                pool_h,
                pool_w,
                stride,
                padding,
            },
            true,
        ) => pool::avgpool_q(
            node, inputs, out_def, *pool_h, *pool_w, *stride, *padding, bugs,
        ),
        (
            OpKind::MaxPool2d {
                pool_h,
                pool_w,
                stride,
                padding,
            },
            false,
        ) => pool::maxpool_f32(node, inputs, out_def, *pool_h, *pool_w, *stride, *padding),
        (
            OpKind::MaxPool2d {
                pool_h,
                pool_w,
                stride,
                padding,
            },
            true,
        ) => pool::maxpool_q(node, inputs, out_def, *pool_h, *pool_w, *stride, *padding),
        (OpKind::Mean, false) => pool::mean_f32(node, inputs, out_def),
        (OpKind::Mean, true) => pool::mean_q(node, inputs, out_def),
        (OpKind::Add { activation }, false) => {
            elementwise::add_f32(node, inputs, out_def, *activation)
        }
        (OpKind::Add { activation }, true) => {
            elementwise::add_q(node, inputs, out_def, *activation)
        }
        (OpKind::Mul, false) => elementwise::mul_f32(node, inputs, out_def),
        (OpKind::Mul, true) => elementwise::mul_q(node, inputs, out_def),
        (OpKind::Concat { axis }, _) => elementwise::concat(node, inputs, out_def, *axis),
        (
            OpKind::Pad {
                top,
                bottom,
                left,
                right,
            },
            _,
        ) => elementwise::pad(node, inputs, out_def, *top, *bottom, *left, *right),
        (OpKind::Softmax, false) => elementwise::softmax_f32(node, inputs, out_def),
        (OpKind::Softmax, true) => Err(unsupported(node, "quantized softmax (insert Dequantize)")),
        (OpKind::Act(act), false) => elementwise::act_f32(node, inputs, out_def, *act),
        (OpKind::Act(act), true) => elementwise::act_q(node, inputs, out_def, *act),
        (OpKind::BatchNorm { epsilon }, false) => {
            elementwise::batch_norm_f32(node, inputs, out_def, *epsilon)
        }
        (OpKind::LayerNorm { epsilon }, false) => {
            elementwise::layer_norm_f32(node, inputs, out_def, *epsilon)
        }
        (OpKind::Embedding, _) => elementwise::embedding_f32(node, inputs, out_def),
        (OpKind::Reshape { .. }, _) => elementwise::reshape(node, inputs, out_def),
        (OpKind::Quantize, _) => elementwise::quantize(node, inputs, out_def),
        (OpKind::Dequantize, _) => elementwise::dequantize(node, inputs, out_def),
        (op, true) => Err(unsupported(node, &format!("quantized {}", op.type_label()))),
    }
}

pub(crate) fn unsupported(node: &Node, what: &str) -> NnError {
    NnError::InvalidOp {
        node: node.name.clone(),
        reason: format!("unsupported: {what}"),
    }
}

/// Extracts per-tensor `(scale, zero_point)` from a runtime tensor.
pub(crate) fn qparams_of(node: &Node, t: &Tensor) -> Result<(f32, i32)> {
    match t.quant() {
        Some(QuantParams::PerTensor { scale, zero_point }) => Ok((*scale, *zero_point)),
        Some(QuantParams::PerChannel { .. }) => Err(NnError::InvalidOp {
            node: node.name.clone(),
            reason: "expected per-tensor quantization on activation".into(),
        }),
        None => Err(NnError::InvalidOp {
            node: node.name.clone(),
            reason: "missing quantization parameters".into(),
        }),
    }
}

/// Extracts the output `(scale, zero_point)` from the output slot definition.
pub(crate) fn out_qparams(node: &Node, out_def: &TensorDef) -> Result<(f32, i32)> {
    match out_def.quant() {
        Some(QuantParams::PerTensor { scale, zero_point }) => Ok((*scale, *zero_point)),
        _ => Err(NnError::InvalidOp {
            node: node.name.clone(),
            reason: "missing per-tensor quantization on output".into(),
        }),
    }
}

/// Quantized clamp bounds implied by a fused activation.
pub(crate) fn act_qbounds(act: Activation, scale: f32, zp: i32) -> (i32, i32) {
    let (mut lo, mut hi) = (0i32, 255i32);
    if let Some((rlo, rhi)) = act.clamp_bounds() {
        lo = lo.max(zp + (rlo / scale).round() as i32);
        if rhi.is_finite() {
            hi = hi.min(zp + (rhi / scale).round() as i32);
        }
    }
    (lo, hi.max(lo))
}

/// Requantizes an `i32` accumulator to `u8` with real multiplier `m`.
#[inline]
pub(crate) fn requantize(acc: i32, m: f64, zp_out: i32, qlo: i32, qhi: i32) -> u8 {
    let v = zp_out + (m * acc as f64).round() as i32;
    v.clamp(qlo, qhi) as u8
}

/// Builds the output tensor for a quantized kernel from raw `u8` values and
/// the output slot's parameters.
pub(crate) fn build_q_output(node: &Node, out_def: &TensorDef, data: Vec<u8>) -> Result<Tensor> {
    let quant = out_def.quant().cloned().ok_or_else(|| NnError::InvalidOp {
        node: node.name.clone(),
        reason: "missing output quantization".into(),
    })?;
    Ok(Tensor::from_u8(out_def.shape().clone(), data, quant)?)
}

/// Builds the output tensor for a float kernel.
pub(crate) fn build_f_output(out_def: &TensorDef, data: Vec<f32>) -> Result<Tensor> {
    Ok(Tensor::from_f32(out_def.shape().clone(), data)?)
}
