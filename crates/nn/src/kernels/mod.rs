//! Kernel implementations, both float and quantized, in reference and
//! optimized flavors.
//!
//! The dispatch rule mirrors TFLite: `(op, dtype, flavor)` selects an
//! implementation. Reference kernels are deliberately naive nested loops;
//! optimized kernels restructure loops (im2col, blocked accumulation), which
//! changes float summation order — the benign source of the small
//! checkpoint-vs-mobile drift in Fig. 5 — and is where the injected
//! depthwise-conv defect of [`KernelBugs`] lives.
//!
//! Every kernel writes into an arena-provided output slot (`&mut Tensor`,
//! preallocated from the interpreter's `MemoryPlan`) instead of returning a
//! fresh tensor, so steady-state execution allocates nothing per node. The
//! batched execution path additionally routes optimized float convolutions
//! through [`conv::conv2d_f32_gemm`], a whole-batch im2col + blocked GEMM
//! whose per-cell arithmetic is bitwise-identical to the per-pixel optimized
//! kernel.

mod conv;
mod elementwise;
mod fc;
pub mod gemm;
mod pool;

use mlexray_tensor::{DType, QuantParams, Tensor, TensorData};

use crate::graph::{Graph, Node, TensorDef};
use crate::ops::{Activation, OpKind};
use crate::resolver::{AccumOrder, EdgeNumerics, KernelBugs, KernelFlavor, RequantMode};
use crate::{NnError, Result};

/// Per-invoke execution context threaded through the dispatch: kernel
/// family, injected defects, emulated numerics, whether this invoke runs a
/// stacked batch, and the plan-sized f32 scratch buffer.
pub(crate) struct KernelCtx<'a> {
    pub flavor: KernelFlavor,
    pub bugs: &'a KernelBugs,
    /// Emulated edge-runtime numerics; `None` runs native arithmetic.
    pub numerics: Option<EdgeNumerics>,
    /// True when the interpreter stacked several frames into one invoke —
    /// enables the batched GEMM convolution path.
    pub batched: bool,
    /// Scratch reused across nodes; capacity is reserved at plan time so
    /// `resize` never reallocates in steady state.
    pub scratch: &'a mut Vec<f32>,
}

impl KernelCtx<'_> {
    /// Requantization multiplier precision for this invoke's quantized
    /// kernels.
    pub(crate) fn requant_mode(&self) -> RequantMode {
        self.numerics.map(|n| n.requant).unwrap_or_default()
    }
}

/// Executes one node given resolved input tensors, the output slot
/// definition (shape, dtype, quantization) and the preallocated output slot.
pub(crate) fn execute_node(
    _graph: &Graph,
    node: &Node,
    inputs: &[&Tensor],
    out_def: &TensorDef,
    out: &mut Tensor,
    ctx: &mut KernelCtx<'_>,
) -> Result<()> {
    let quantized = inputs
        .first()
        .map(|t| t.dtype() == DType::U8)
        .unwrap_or(false);
    let flavor = ctx.flavor;
    let result = match (&node.op, quantized) {
        (
            OpKind::Conv2d {
                stride,
                padding,
                activation,
            },
            false,
        ) => {
            if let Some(numerics) = ctx.numerics {
                conv::conv2d_f32_emulated(
                    node,
                    inputs,
                    out_def,
                    *stride,
                    *padding,
                    *activation,
                    &numerics,
                    ctx.scratch,
                    out,
                )
            } else if flavor == KernelFlavor::Simd {
                gemm::conv2d_f32_simd(
                    node,
                    inputs,
                    out_def,
                    *stride,
                    *padding,
                    *activation,
                    ctx.bugs,
                    ctx.scratch,
                    out,
                )
            } else if ctx.batched && flavor == KernelFlavor::Optimized {
                conv::conv2d_f32_gemm(
                    node,
                    inputs,
                    out_def,
                    *stride,
                    *padding,
                    *activation,
                    ctx.scratch,
                    out,
                )
            } else {
                conv::conv2d_f32(
                    node,
                    inputs,
                    out_def,
                    *stride,
                    *padding,
                    *activation,
                    flavor,
                    out,
                )
            }
        }
        (
            OpKind::Conv2d {
                stride,
                padding,
                activation,
            },
            true,
        ) => {
            if flavor == KernelFlavor::Simd {
                gemm::conv2d_q_simd(
                    node,
                    inputs,
                    out_def,
                    *stride,
                    *padding,
                    *activation,
                    ctx.requant_mode(),
                    out,
                )
            } else {
                conv::conv2d_q(
                    node,
                    inputs,
                    out_def,
                    *stride,
                    *padding,
                    *activation,
                    ctx.requant_mode(),
                    out,
                )
            }
        }
        (
            OpKind::DepthwiseConv2d {
                stride,
                padding,
                activation,
            },
            false,
        ) => {
            if let Some(numerics) = ctx.numerics {
                conv::dwconv_f32_emulated(
                    node,
                    inputs,
                    out_def,
                    *stride,
                    *padding,
                    *activation,
                    &numerics,
                    ctx.scratch,
                    out,
                )
            } else if flavor == KernelFlavor::Simd {
                gemm::dwconv_f32_simd(node, inputs, out_def, *stride, *padding, *activation, out)
            } else if ctx.batched && flavor == KernelFlavor::Optimized {
                conv::dwconv_f32_batched(node, inputs, out_def, *stride, *padding, *activation, out)
            } else {
                conv::dwconv_f32(
                    node,
                    inputs,
                    out_def,
                    *stride,
                    *padding,
                    *activation,
                    flavor,
                    out,
                )
            }
        }
        (
            OpKind::DepthwiseConv2d {
                stride,
                padding,
                activation,
            },
            true,
        ) => conv::dwconv_q(
            node,
            inputs,
            out_def,
            *stride,
            *padding,
            *activation,
            flavor,
            ctx.bugs,
            ctx.requant_mode(),
            out,
        ),
        (OpKind::FullyConnected { activation }, false) => {
            if let Some(numerics) = ctx.numerics {
                fc::fc_f32_emulated(node, inputs, out_def, *activation, &numerics, out)
            } else if flavor == KernelFlavor::Simd {
                gemm::fc_f32_simd(node, inputs, out_def, *activation, ctx.bugs, out)
            } else {
                fc::fc_f32(node, inputs, out_def, *activation, flavor, out)
            }
        }
        (OpKind::FullyConnected { activation }, true) => {
            if flavor == KernelFlavor::Simd {
                gemm::fc_q_simd(node, inputs, out_def, *activation, ctx.requant_mode(), out)
            } else {
                fc::fc_q(node, inputs, out_def, *activation, ctx.requant_mode(), out)
            }
        }
        (OpKind::MatMul { transpose_b }, _) => {
            fc::matmul_f32(node, inputs, out_def, *transpose_b, out)
        }
        (
            OpKind::AveragePool2d {
                pool_h,
                pool_w,
                stride,
                padding,
            },
            false,
        ) => pool::avgpool_f32(
            node, inputs, out_def, *pool_h, *pool_w, *stride, *padding, out,
        ),
        (
            OpKind::AveragePool2d {
                pool_h,
                pool_w,
                stride,
                padding,
            },
            true,
        ) => pool::avgpool_q(
            node,
            inputs,
            out_def,
            *pool_h,
            *pool_w,
            *stride,
            *padding,
            ctx.bugs,
            ctx.requant_mode(),
            out,
        ),
        (
            OpKind::MaxPool2d {
                pool_h,
                pool_w,
                stride,
                padding,
            },
            false,
        ) => pool::maxpool_f32(
            node, inputs, out_def, *pool_h, *pool_w, *stride, *padding, out,
        ),
        (
            OpKind::MaxPool2d {
                pool_h,
                pool_w,
                stride,
                padding,
            },
            true,
        ) => pool::maxpool_q(
            node,
            inputs,
            out_def,
            *pool_h,
            *pool_w,
            *stride,
            *padding,
            ctx.requant_mode(),
            out,
        ),
        (OpKind::Mean, false) => pool::mean_f32(node, inputs, out_def, out),
        (OpKind::Mean, true) => pool::mean_q(node, inputs, out_def, ctx.requant_mode(), out),
        (OpKind::Add { activation }, false) => {
            elementwise::add_f32(node, inputs, out_def, *activation, out)
        }
        (OpKind::Add { activation }, true) => {
            elementwise::add_q(node, inputs, out_def, *activation, out)
        }
        (OpKind::Mul, false) => elementwise::mul_f32(node, inputs, out_def, out),
        (OpKind::Mul, true) => elementwise::mul_q(node, inputs, out_def, out),
        (OpKind::Concat { axis }, _) => elementwise::concat(node, inputs, out_def, *axis, out),
        (
            OpKind::Pad {
                top,
                bottom,
                left,
                right,
            },
            _,
        ) => elementwise::pad(node, inputs, out_def, *top, *bottom, *left, *right, out),
        (OpKind::Softmax, false) => elementwise::softmax_f32(node, inputs, out_def, out),
        (OpKind::Softmax, true) => Err(unsupported(node, "quantized softmax (insert Dequantize)")),
        (OpKind::Act(act), false) => elementwise::act_f32(node, inputs, out_def, *act, out),
        (OpKind::Act(act), true) => elementwise::act_q(node, inputs, out_def, *act, out),
        (OpKind::BatchNorm { epsilon }, false) => {
            elementwise::batch_norm_f32(node, inputs, out_def, *epsilon, out)
        }
        (OpKind::LayerNorm { epsilon }, false) => {
            elementwise::layer_norm_f32(node, inputs, out_def, *epsilon, out)
        }
        (OpKind::Embedding, _) => elementwise::embedding_f32(node, inputs, out_def, out),
        (OpKind::Reshape { .. }, _) => elementwise::reshape(node, inputs, out_def, out),
        (OpKind::Quantize, _) => elementwise::quantize(node, inputs, out_def, out),
        (OpKind::Dequantize, _) => elementwise::dequantize(node, inputs, out_def, out),
        (op, true) => Err(unsupported(node, &format!("quantized {}", op.type_label()))),
    };
    // The emulator's flush-to-zero knob models ARM's default FTZ mode at
    // node granularity: every float output has its subnormals flushed before
    // the next op can read them.
    if result.is_ok() && ctx.numerics.map(|n| n.flush_to_zero).unwrap_or(false) {
        if let TensorData::F32(_) = out.data() {
            for v in out.as_f32_mut()? {
                if v.is_subnormal() {
                    *v = 0.0f32.copysign(*v);
                }
            }
        }
    }
    result
}

/// Emulated GEMM-family reduction: `n` (value, weight) terms addressed by
/// `term`, folded under the emulator's accumulation order and multiply-add
/// contraction, starting from `init`.
///
/// With the faithful configuration ([`AccumOrder::Sequential`], split
/// multiply-add) this is exactly the reference kernels' arithmetic.
#[inline]
pub(crate) fn emulated_dot(
    init: f32,
    n: usize,
    term: impl Fn(usize) -> (f32, f32),
    numerics: &EdgeNumerics,
) -> f32 {
    let fma = numerics.fused_multiply_add;
    let step = |acc: f32, i: usize| -> f32 {
        let (a, b) = term(i);
        if fma {
            a.mul_add(b, acc)
        } else {
            acc + a * b
        }
    };
    match numerics.accumulation {
        AccumOrder::Sequential => (0..n).fold(init, step),
        AccumOrder::Reversed => (0..n).rev().fold(init, step),
        AccumOrder::Lanes8 => {
            // `init` (the bias) seeds lane 0, as a real lane reduction would
            // fold the bias into one accumulator register.
            let mut lanes = [0.0f32; 8];
            lanes[0] = init;
            for i in 0..n {
                lanes[i % 8] = step(lanes[i % 8], i);
            }
            ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3]))
                + ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]))
        }
    }
}

pub(crate) fn unsupported(node: &Node, what: &str) -> NnError {
    NnError::InvalidOp {
        node: node.name.clone(),
        reason: format!("unsupported: {what}"),
    }
}

/// Extracts per-tensor `(scale, zero_point)` from a runtime tensor.
pub(crate) fn qparams_of(node: &Node, t: &Tensor) -> Result<(f32, i32)> {
    match t.quant() {
        Some(QuantParams::PerTensor { scale, zero_point }) => Ok((*scale, *zero_point)),
        Some(QuantParams::PerChannel { .. }) => Err(NnError::InvalidOp {
            node: node.name.clone(),
            reason: "expected per-tensor quantization on activation".into(),
        }),
        None => Err(NnError::InvalidOp {
            node: node.name.clone(),
            reason: "missing quantization parameters".into(),
        }),
    }
}

/// Extracts the output `(scale, zero_point)` from the output slot definition.
pub(crate) fn out_qparams(node: &Node, out_def: &TensorDef) -> Result<(f32, i32)> {
    match out_def.quant() {
        Some(QuantParams::PerTensor { scale, zero_point }) => Ok((*scale, *zero_point)),
        _ => Err(NnError::InvalidOp {
            node: node.name.clone(),
            reason: "missing per-tensor quantization on output".into(),
        }),
    }
}

/// Quantized clamp bounds implied by a fused activation.
pub(crate) fn act_qbounds(act: Activation, scale: f32, zp: i32) -> (i32, i32) {
    let (mut lo, mut hi) = (0i32, 255i32);
    if let Some((rlo, rhi)) = act.clamp_bounds() {
        lo = lo.max(zp + (rlo / scale).round() as i32);
        if rhi.is_finite() {
            hi = hi.min(zp + (rhi / scale).round() as i32);
        }
    }
    (lo, hi.max(lo))
}

/// Requantizes an `i32` accumulator to `u8` with real multiplier `m`, at the
/// multiplier precision the execution context dictates
/// ([`RequantMode::Double`] is the native arithmetic; [`RequantMode::Single`]
/// is the emulator's reduced-precision knob).
#[inline]
pub(crate) fn requantize(
    acc: i32,
    m: f64,
    zp_out: i32,
    qlo: i32,
    qhi: i32,
    mode: RequantMode,
) -> u8 {
    let scaled = match mode {
        RequantMode::Double => (m * acc as f64).round() as i32,
        RequantMode::Single => ((m as f32) * acc as f32).round() as i32,
    };
    (zp_out + scaled).clamp(qlo, qhi) as u8
}

/// Borrows a float output slot, checking it matches the slot definition.
pub(crate) fn f32_slot<'a>(out: &'a mut Tensor, out_def: &TensorDef) -> Result<&'a mut [f32]> {
    debug_assert_eq!(out.len(), out_def.shape().num_elements());
    Ok(out.as_f32_mut()?)
}

/// Borrows a quantized (`u8`) output slot. The slot's quantization
/// parameters were attached from the slot definition when the arena was
/// planned, matching what `out_qparams` reads.
pub(crate) fn u8_slot<'a>(out: &'a mut Tensor, out_def: &TensorDef) -> Result<&'a mut [u8]> {
    debug_assert_eq!(out.len(), out_def.shape().num_elements());
    Ok(out.as_u8_mut()?)
}
