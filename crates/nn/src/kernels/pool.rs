//! Pooling and reduction kernels, including the injectable quantized
//! AveragePool2D defect of §4.4. All loops are batch-outer, so stacked
//! batches run natively.

use mlexray_tensor::Tensor;

use crate::graph::{Node, TensorDef};
use crate::kernels::{f32_slot, out_qparams, qparams_of, requantize, u8_slot};
use crate::ops::{same_pad_before, Padding};
use crate::resolver::{KernelBugs, RequantMode};
use crate::Result;

struct PoolGeom {
    n: usize,
    in_h: usize,
    in_w: usize,
    c: usize,
    out_h: usize,
    out_w: usize,
    pad_top: usize,
    pad_left: usize,
}

fn geometry(
    input: &Tensor,
    out_def: &TensorDef,
    pool_h: usize,
    pool_w: usize,
    stride: usize,
    padding: Padding,
) -> PoolGeom {
    let is = input.shape().dims();
    let os = out_def.shape().dims();
    let (pad_top, pad_left) = match padding {
        Padding::Same => (
            same_pad_before(is[1], pool_h, stride),
            same_pad_before(is[2], pool_w, stride),
        ),
        Padding::Valid => (0, 0),
    };
    PoolGeom {
        n: is[0],
        in_h: is[1],
        in_w: is[2],
        c: is[3],
        out_h: os[1],
        out_w: os[2],
        pad_top,
        pad_left,
    }
}

/// Iterates the valid input window of an output cell.
fn window(
    g: &PoolGeom,
    oy: usize,
    ox: usize,
    pool_h: usize,
    pool_w: usize,
    stride: usize,
) -> impl Iterator<Item = (usize, usize)> + '_ {
    let y0 = (oy * stride) as isize - g.pad_top as isize;
    let x0 = (ox * stride) as isize - g.pad_left as isize;
    (0..pool_h).flat_map(move |ky| {
        (0..pool_w).filter_map(move |kx| {
            let iy = y0 + ky as isize;
            let ix = x0 + kx as isize;
            if iy >= 0 && iy < g.in_h as isize && ix >= 0 && ix < g.in_w as isize {
                Some((iy as usize, ix as usize))
            } else {
                None
            }
        })
    })
}

/// Float average pooling.
#[allow(clippy::too_many_arguments)]
pub(crate) fn avgpool_f32(
    node: &Node,
    inputs: &[&Tensor],
    out_def: &TensorDef,
    pool_h: usize,
    pool_w: usize,
    stride: usize,
    padding: Padding,
    out_t: &mut Tensor,
) -> Result<()> {
    let _ = node;
    let x = inputs[0].as_f32()?;
    let g = geometry(inputs[0], out_def, pool_h, pool_w, stride, padding);
    let out = f32_slot(out_t, out_def)?;
    for n in 0..g.n {
        for oy in 0..g.out_h {
            for ox in 0..g.out_w {
                let cells: Vec<(usize, usize)> =
                    window(&g, oy, ox, pool_h, pool_w, stride).collect();
                let count = cells.len().max(1) as f32;
                for ch in 0..g.c {
                    let mut acc = 0.0f32;
                    for &(iy, ix) in &cells {
                        acc += x[((n * g.in_h + iy) * g.in_w + ix) * g.c + ch];
                    }
                    out[((n * g.out_h + oy) * g.out_w + ox) * g.c + ch] = acc / count;
                }
            }
        }
    }
    Ok(())
}

/// Float max pooling.
#[allow(clippy::too_many_arguments)]
pub(crate) fn maxpool_f32(
    node: &Node,
    inputs: &[&Tensor],
    out_def: &TensorDef,
    pool_h: usize,
    pool_w: usize,
    stride: usize,
    padding: Padding,
    out_t: &mut Tensor,
) -> Result<()> {
    let _ = node;
    let x = inputs[0].as_f32()?;
    let g = geometry(inputs[0], out_def, pool_h, pool_w, stride, padding);
    let out = f32_slot(out_t, out_def)?;
    for n in 0..g.n {
        for oy in 0..g.out_h {
            for ox in 0..g.out_w {
                let cells: Vec<(usize, usize)> =
                    window(&g, oy, ox, pool_h, pool_w, stride).collect();
                for ch in 0..g.c {
                    let mut best = f32::NEG_INFINITY;
                    for &(iy, ix) in &cells {
                        best = best.max(x[((n * g.in_h + iy) * g.in_w + ix) * g.c + ch]);
                    }
                    out[((n * g.out_h + oy) * g.out_w + ox) * g.c + ch] = best;
                }
            }
        }
    }
    Ok(())
}

/// Float global reduce-mean: `[n, ..., c] → [n, c]`.
pub(crate) fn mean_f32(
    node: &Node,
    inputs: &[&Tensor],
    out_def: &TensorDef,
    out_t: &mut Tensor,
) -> Result<()> {
    let _ = node;
    let x = inputs[0].as_f32()?;
    let dims = inputs[0].shape().dims();
    let n = dims[0];
    let c = dims[dims.len() - 1];
    let mid: usize = dims[1..dims.len() - 1].iter().product::<usize>().max(1);
    let out = f32_slot(out_t, out_def)?;
    out.iter_mut().for_each(|v| *v = 0.0);
    for b in 0..n {
        for m in 0..mid {
            let base = (b * mid + m) * c;
            for ch in 0..c {
                out[b * c + ch] += x[base + ch];
            }
        }
        for ch in 0..c {
            out[b * c + ch] /= mid as f32;
        }
    }
    Ok(())
}

/// Quantized average pooling. When [`KernelBugs::avgpool_double_division`] is
/// set (both resolvers — it is an op-spec defect), the accumulator is divided
/// by the pool area twice, collapsing outputs toward quantized zero: the
/// constant-output failure that zeroes MobileNet v3 in Fig. 5.
#[allow(clippy::too_many_arguments)]
pub(crate) fn avgpool_q(
    node: &Node,
    inputs: &[&Tensor],
    out_def: &TensorDef,
    pool_h: usize,
    pool_w: usize,
    stride: usize,
    padding: Padding,
    bugs: &KernelBugs,
    requant: RequantMode,
    out_t: &mut Tensor,
) -> Result<()> {
    let input = inputs[0];
    let (s_in, zp_in) = qparams_of(node, input)?;
    let (s_out, zp_out) = out_qparams(node, out_def)?;
    let x = input.as_u8()?;
    let g = geometry(input, out_def, pool_h, pool_w, stride, padding);
    let out = u8_slot(out_t, out_def)?;
    let m = (s_in as f64) / (s_out as f64);
    let buggy = bugs.avgpool_double_division && pool_h * pool_w >= 16;
    for n in 0..g.n {
        for oy in 0..g.out_h {
            for ox in 0..g.out_w {
                let cells: Vec<(usize, usize)> =
                    window(&g, oy, ox, pool_h, pool_w, stride).collect();
                let count = cells.len().max(1) as i32;
                for ch in 0..g.c {
                    let mut acc: i32 = 0;
                    for &(iy, ix) in &cells {
                        acc += x[((n * g.in_h + iy) * g.in_w + ix) * g.c + ch] as i32;
                    }
                    let avg_q = if buggy {
                        // Injected defect: divides by the area twice.
                        (acc / count) / count
                    } else {
                        // Rounded average in the quantized domain.
                        (acc + count / 2) / count
                    };
                    let centered = avg_q - zp_in;
                    out[((n * g.out_h + oy) * g.out_w + ox) * g.c + ch] =
                        requantize(centered, m, zp_out, 0, 255, requant);
                }
            }
        }
    }
    Ok(())
}

/// Quantized max pooling (correct in both resolvers).
#[allow(clippy::too_many_arguments)]
pub(crate) fn maxpool_q(
    node: &Node,
    inputs: &[&Tensor],
    out_def: &TensorDef,
    pool_h: usize,
    pool_w: usize,
    stride: usize,
    padding: Padding,
    requant: RequantMode,
    out_t: &mut Tensor,
) -> Result<()> {
    let input = inputs[0];
    let (s_in, zp_in) = qparams_of(node, input)?;
    let (s_out, zp_out) = out_qparams(node, out_def)?;
    let x = input.as_u8()?;
    let g = geometry(input, out_def, pool_h, pool_w, stride, padding);
    let m = (s_in as f64) / (s_out as f64);
    let out = u8_slot(out_t, out_def)?;
    for n in 0..g.n {
        for oy in 0..g.out_h {
            for ox in 0..g.out_w {
                let cells: Vec<(usize, usize)> =
                    window(&g, oy, ox, pool_h, pool_w, stride).collect();
                for ch in 0..g.c {
                    let mut best: i32 = 0;
                    let mut first = true;
                    for &(iy, ix) in &cells {
                        let v = x[((n * g.in_h + iy) * g.in_w + ix) * g.c + ch] as i32;
                        if first || v > best {
                            best = v;
                            first = false;
                        }
                    }
                    out[((n * g.out_h + oy) * g.out_w + ox) * g.c + ch] =
                        requantize(best - zp_in, m, zp_out, 0, 255, requant);
                }
            }
        }
    }
    Ok(())
}

/// Quantized global reduce-mean (TFLite `Mean`, correct — which is why
/// MobileNet v1/v2 survive quantization in Fig. 5 while v3's `AveragePool2d`
/// does not).
pub(crate) fn mean_q(
    node: &Node,
    inputs: &[&Tensor],
    out_def: &TensorDef,
    requant: RequantMode,
    out_t: &mut Tensor,
) -> Result<()> {
    let input = inputs[0];
    let (s_in, zp_in) = qparams_of(node, input)?;
    let (s_out, zp_out) = out_qparams(node, out_def)?;
    let x = input.as_u8()?;
    let dims = input.shape().dims();
    let n = dims[0];
    let c = dims[dims.len() - 1];
    let mid: usize = dims[1..dims.len() - 1].iter().product::<usize>().max(1);
    let m = (s_in as f64) / (s_out as f64);
    let out = u8_slot(out_t, out_def)?;
    for b in 0..n {
        for ch in 0..c {
            let mut acc: i64 = 0;
            for mi in 0..mid {
                acc += x[(b * mid + mi) * c + ch] as i64;
            }
            let avg = ((acc + (mid as i64) / 2) / mid as i64) as i32;
            out[b * c + ch] = requantize(avg - zp_in, m, zp_out, 0, 255, requant);
        }
    }
    Ok(())
}
