//! Runtime-feature-dispatched SIMD GEMM micro-kernels — the
//! [`KernelFlavor::Simd`](crate::KernelFlavor::Simd) execution paths.
//!
//! # The dual-engine contract
//!
//! Every kernel here is defined in terms of one canonical "8-lane virtual
//! SIMD" arithmetic, implemented twice:
//!
//! * an **AVX2/FMA** engine (x86_64 only, behind one-time runtime feature
//!   detection), and
//! * a **scalar mirror** that performs the *same* per-lane operations in the
//!   same order with [`f32::mul_add`] (IEEE-754 fused multiply-add, exactly
//!   what `vfmadd` computes).
//!
//! The two engines are **bitwise identical** by construction: per-lane FMA
//! (`_mm256_fmadd_ps` ≡ `f32::mul_add` lane by lane), a fixed-order
//! horizontal reduction `((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7))` (never
//! `hadd`), and a sequential fused tail. Consequently the engine choice never
//! changes a single output bit: golden records made on an AVX2 machine
//! verify on any host, and the CI forced-scalar run (`MLEXRAY_SIMD=scalar`)
//! must match the feature-dispatched run exactly. Quantized kernels
//! accumulate in exact `i32` arithmetic, where any summation order is
//! identical — they are bitwise-equal to the *reference* kernels too.
//!
//! Feature detection runs **once** per process ([`OnceLock`]); per-call
//! dispatch is a single atomic load. `MLEXRAY_SIMD=scalar` in the
//! environment forces the scalar engine (the CI fallback leg); tests that
//! need both engines in one process use the engine-explicit entry points
//! instead of mutating the environment.

use std::sync::OnceLock;

use mlexray_tensor::{QuantParams, Tensor};

use crate::graph::{Node, TensorDef};
use crate::kernels::conv::{geometry, weight_scale};
use crate::kernels::{act_qbounds, f32_slot, out_qparams, qparams_of, requantize, u8_slot};
use crate::ops::{Activation, Padding};
use crate::resolver::{KernelBugs, RequantMode};
use crate::Result;

/// Vector width of the canonical virtual-SIMD arithmetic (f32 lanes).
pub const SIMD_LANES: usize = 8;

/// The instruction engine backing the SIMD kernels.
///
/// Both engines compute bit-identical results (see the module docs); the
/// enum only selects how fast the bits are produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdEngine {
    /// 256-bit AVX2 + FMA intrinsics (x86_64, runtime-detected).
    Avx2Fma,
    /// The portable scalar mirror of the same arithmetic.
    Scalar,
}

impl SimdEngine {
    /// Stable label for logs and benchmark artifacts.
    pub fn label(self) -> &'static str {
        match self {
            SimdEngine::Avx2Fma => "avx2+fma",
            SimdEngine::Scalar => "scalar",
        }
    }
}

/// The engine the SIMD kernels dispatch to on this host.
///
/// Detection runs once per process and is cached; `MLEXRAY_SIMD=scalar`
/// forces the scalar mirror regardless of CPU features.
pub fn active_engine() -> SimdEngine {
    static ENGINE: OnceLock<SimdEngine> = OnceLock::new();
    *ENGINE.get_or_init(detect_engine)
}

fn detect_engine() -> SimdEngine {
    if std::env::var_os("MLEXRAY_SIMD").is_some_and(|v| v == "scalar") {
        return SimdEngine::Scalar;
    }
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            return SimdEngine::Avx2Fma;
        }
    }
    SimdEngine::Scalar
}

// ---------------------------------------------------------------------------
// f32 dot micro-kernel (single row and 4-row variants)
// ---------------------------------------------------------------------------

/// Canonical virtual-SIMD dot product under an explicit engine: 8 fused
/// multiply-add lanes striped over the index, fixed-order lane reduction,
/// sequential fused tail. Public so test suites can pin the two engines
/// against each other in one process.
pub fn dot_f32_with(engine: SimdEngine, a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    match engine {
        SimdEngine::Avx2Fma => dot_f32_avx2(a, b, a.len()),
        SimdEngine::Scalar => dot_f32_scalar(a, b, a.len()),
    }
}

/// `dot_f32_with` with a truncated logical length (the injected K-tail
/// defect drops the final element).
fn dot_f32_len(engine: SimdEngine, a: &[f32], b: &[f32], len: usize) -> f32 {
    match engine {
        SimdEngine::Avx2Fma => dot_f32_avx2(a, b, len),
        SimdEngine::Scalar => dot_f32_scalar(a, b, len),
    }
}

/// Logical reduction length for the f32 GEMM paths: the injected
/// tile-boundary defect skips the last element of the K-loop remainder —
/// but only when K is not a multiple of the vector width, exactly the shape
/// a hand-unrolled remainder loop gets wrong.
fn k_len(k: usize, bugs: &KernelBugs) -> usize {
    if bugs.simd_gemm_k_tail_skip && !k.is_multiple_of(SIMD_LANES) {
        k - 1
    } else {
        k
    }
}

fn dot_f32_scalar(a: &[f32], b: &[f32], len: usize) -> f32 {
    let mut lanes = [0.0f32; SIMD_LANES];
    let chunks = len / SIMD_LANES;
    for i in 0..chunks {
        let o = i * SIMD_LANES;
        for (l, acc) in lanes.iter_mut().enumerate() {
            *acc = a[o + l].mul_add(b[o + l], *acc);
        }
    }
    let mut sum = reduce8(lanes);
    for i in chunks * SIMD_LANES..len {
        sum = a[i].mul_add(b[i], sum);
    }
    sum
}

/// The canonical lane reduction: a fixed binary tree, never reassociated.
#[inline]
fn reduce8(l: [f32; 8]) -> f32 {
    ((l[0] + l[1]) + (l[2] + l[3])) + ((l[4] + l[5]) + (l[6] + l[7]))
}

#[cfg(target_arch = "x86_64")]
fn dot_f32_avx2(a: &[f32], b: &[f32], len: usize) -> f32 {
    // SAFETY: `Avx2Fma` is only ever produced by `detect_engine` (after
    // runtime feature checks) or by tests that themselves gate on
    // `active_engine()`.
    unsafe { dot_f32_avx2_inner(a, b, len) }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn dot_f32_avx2_inner(a: &[f32], b: &[f32], len: usize) -> f32 {
    use std::arch::x86_64::*;
    let mut acc = _mm256_setzero_ps();
    let chunks = len / SIMD_LANES;
    for i in 0..chunks {
        let o = i * SIMD_LANES;
        let va = _mm256_loadu_ps(a.as_ptr().add(o));
        let vb = _mm256_loadu_ps(b.as_ptr().add(o));
        acc = _mm256_fmadd_ps(va, vb, acc);
    }
    let mut lanes = [0.0f32; SIMD_LANES];
    _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
    let mut sum = reduce8(lanes);
    for i in chunks * SIMD_LANES..len {
        sum = a[i].mul_add(b[i], sum);
    }
    sum
}

#[cfg(not(target_arch = "x86_64"))]
fn dot_f32_avx2(a: &[f32], b: &[f32], len: usize) -> f32 {
    // Unreachable in practice (`detect_engine` never yields `Avx2Fma` off
    // x86_64); the scalar mirror is the same arithmetic by contract.
    dot_f32_scalar(a, b, len)
}

/// Four dot products sharing one left-hand row (four independent lane
/// accumulators keep four FMA chains in flight). Each output is
/// bitwise-identical to [`dot_f32_with`] on the same pair.
fn dot_f32_x4(
    engine: SimdEngine,
    a: &[f32],
    b0: &[f32],
    b1: &[f32],
    b2: &[f32],
    b3: &[f32],
    len: usize,
) -> [f32; 4] {
    match engine {
        SimdEngine::Avx2Fma => dot_f32_x4_avx2(a, b0, b1, b2, b3, len),
        SimdEngine::Scalar => [
            dot_f32_scalar(a, b0, len),
            dot_f32_scalar(a, b1, len),
            dot_f32_scalar(a, b2, len),
            dot_f32_scalar(a, b3, len),
        ],
    }
}

#[cfg(target_arch = "x86_64")]
fn dot_f32_x4_avx2(
    a: &[f32],
    b0: &[f32],
    b1: &[f32],
    b2: &[f32],
    b3: &[f32],
    len: usize,
) -> [f32; 4] {
    // SAFETY: see `dot_f32_avx2`.
    unsafe { dot_f32_x4_avx2_inner(a, b0, b1, b2, b3, len) }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn dot_f32_x4_avx2_inner(
    a: &[f32],
    b0: &[f32],
    b1: &[f32],
    b2: &[f32],
    b3: &[f32],
    len: usize,
) -> [f32; 4] {
    use std::arch::x86_64::*;
    let mut acc0 = _mm256_setzero_ps();
    let mut acc1 = _mm256_setzero_ps();
    let mut acc2 = _mm256_setzero_ps();
    let mut acc3 = _mm256_setzero_ps();
    let chunks = len / SIMD_LANES;
    for i in 0..chunks {
        let o = i * SIMD_LANES;
        let va = _mm256_loadu_ps(a.as_ptr().add(o));
        acc0 = _mm256_fmadd_ps(va, _mm256_loadu_ps(b0.as_ptr().add(o)), acc0);
        acc1 = _mm256_fmadd_ps(va, _mm256_loadu_ps(b1.as_ptr().add(o)), acc1);
        acc2 = _mm256_fmadd_ps(va, _mm256_loadu_ps(b2.as_ptr().add(o)), acc2);
        acc3 = _mm256_fmadd_ps(va, _mm256_loadu_ps(b3.as_ptr().add(o)), acc3);
    }
    let mut out = [0.0f32; 4];
    for (slot, acc) in out.iter_mut().zip([acc0, acc1, acc2, acc3]) {
        let mut lanes = [0.0f32; SIMD_LANES];
        _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
        *slot = reduce8(lanes);
    }
    for i in chunks * SIMD_LANES..len {
        out[0] = a[i].mul_add(b0[i], out[0]);
        out[1] = a[i].mul_add(b1[i], out[1]);
        out[2] = a[i].mul_add(b2[i], out[2]);
        out[3] = a[i].mul_add(b3[i], out[3]);
    }
    out
}

#[cfg(not(target_arch = "x86_64"))]
fn dot_f32_x4_avx2(
    a: &[f32],
    b0: &[f32],
    b1: &[f32],
    b2: &[f32],
    b3: &[f32],
    len: usize,
) -> [f32; 4] {
    [
        dot_f32_scalar(a, b0, len),
        dot_f32_scalar(a, b1, len),
        dot_f32_scalar(a, b2, len),
        dot_f32_scalar(a, b3, len),
    ]
}

// ---------------------------------------------------------------------------
// i8 × i8 → i32 dot micro-kernel
// ---------------------------------------------------------------------------

/// Integer dot product over zero-point-corrected `u8` activations and `i8`
/// weights, accumulating in exact `i32` — bitwise-identical under any
/// engine (and to the reference kernels), absent overflow. Public for the
/// cross-engine test suites.
pub fn dot_q8_with(engine: SimdEngine, a: &[u8], zp: i32, w: &[i8]) -> i32 {
    debug_assert_eq!(a.len(), w.len());
    match engine {
        SimdEngine::Avx2Fma => dot_q8_avx2(a, zp, w),
        SimdEngine::Scalar => dot_q8_scalar(a, zp, w),
    }
}

fn dot_q8_scalar(a: &[u8], zp: i32, w: &[i8]) -> i32 {
    let mut acc = 0i32;
    for i in 0..a.len() {
        acc += (a[i] as i32 - zp) * w[i] as i32;
    }
    acc
}

#[cfg(target_arch = "x86_64")]
fn dot_q8_avx2(a: &[u8], zp: i32, w: &[i8]) -> i32 {
    // SAFETY: see `dot_f32_avx2`.
    unsafe { dot_q8_avx2_inner(a, zp, w) }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn dot_q8_avx2_inner(a: &[u8], zp: i32, w: &[i8]) -> i32 {
    use std::arch::x86_64::*;
    // 16 MACs per iteration: widen u8→i16 / i8→i16, subtract the zero
    // point in i16 (exact: 0..=255 minus −255..=255 fits), then madd pairs
    // into i32. Integer arithmetic is associative, so the lane order does
    // not matter for bit-equality with the scalar mirror.
    let vzp = _mm256_set1_epi16(zp as i16);
    let mut acc = _mm256_setzero_si256();
    let chunks = a.len() / 16;
    for i in 0..chunks {
        let o = i * 16;
        let va = _mm256_cvtepu8_epi16(_mm_loadu_si128(a.as_ptr().add(o) as *const _));
        let vw = _mm256_cvtepi8_epi16(_mm_loadu_si128(w.as_ptr().add(o) as *const _));
        let vx = _mm256_sub_epi16(va, vzp);
        acc = _mm256_add_epi32(acc, _mm256_madd_epi16(vx, vw));
    }
    let mut lanes = [0i32; 8];
    _mm256_storeu_si256(lanes.as_mut_ptr() as *mut _, acc);
    let mut sum: i32 = lanes.iter().sum();
    for i in chunks * 16..a.len() {
        sum += (a[i] as i32 - zp) * w[i] as i32;
    }
    sum
}

#[cfg(not(target_arch = "x86_64"))]
fn dot_q8_avx2(a: &[u8], zp: i32, w: &[i8]) -> i32 {
    dot_q8_scalar(a, zp, w)
}

// ---------------------------------------------------------------------------
// Kernel entry points (dispatched from `execute_node` for KernelFlavor::Simd)
// ---------------------------------------------------------------------------

/// Output rows sharing one weight fetch per GEMM tile (same blocking shape
/// as the optimized scalar GEMM).
const ROW_TILE: usize = 16;

/// SIMD float convolution: whole-batch im2col (1×1 stride-1 convolutions
/// read the input buffer copy-free) + row/output-channel tiled virtual-SIMD
/// GEMM. Handles any batch size natively, so both `invoke` and
/// `invoke_batch` land here.
#[allow(clippy::too_many_arguments)]
pub(crate) fn conv2d_f32_simd(
    node: &Node,
    inputs: &[&Tensor],
    out_def: &TensorDef,
    stride: usize,
    padding: Padding,
    activation: Activation,
    bugs: &KernelBugs,
    scratch: &mut Vec<f32>,
    out_t: &mut Tensor,
) -> Result<()> {
    let _ = node;
    let engine = active_engine();
    let input = inputs[0];
    let weights = inputs[1];
    let bias = inputs.get(2).map(|t| t.as_f32()).transpose()?;
    let x = input.as_f32()?;
    let w = weights.as_f32()?;
    let ws = weights.shape().dims();
    let (out_c, kh, kw) = (ws[0], ws[1], ws[2]);
    let g = geometry(input, out_def, kh, kw, stride, padding);
    let out = f32_slot(out_t, out_def)?;
    let ksize = kh * kw * g.in_c;
    let rows = g.n * g.out_h * g.out_w;
    let len = k_len(ksize, bugs);

    // 1×1 stride-1: the im2col matrix *is* the input buffer (copy-free).
    let direct = kh == 1 && kw == 1 && stride == 1 && g.out_h == g.in_h && g.out_w == g.in_w;
    let matrix: &[f32] = if direct {
        x
    } else {
        scratch.clear();
        scratch.resize(rows * ksize, 0.0);
        let mut row = 0usize;
        for n in 0..g.n {
            for oy in 0..g.out_h {
                for ox in 0..g.out_w {
                    let pbase = row * ksize;
                    for ky in 0..kh {
                        let iy = (oy * stride + ky) as isize - g.pad_top as isize;
                        if iy < 0 || iy >= g.in_h as isize {
                            continue;
                        }
                        for kx in 0..kw {
                            let ix = (ox * stride + kx) as isize - g.pad_left as isize;
                            if ix < 0 || ix >= g.in_w as isize {
                                continue;
                            }
                            let ibase =
                                ((n * g.in_h + iy as usize) * g.in_w + ix as usize) * g.in_c;
                            let dst = pbase + (ky * kw + kx) * g.in_c;
                            scratch[dst..dst + g.in_c].copy_from_slice(&x[ibase..ibase + g.in_c]);
                        }
                    }
                    row += 1;
                }
            }
        }
        scratch
    };

    for r0 in (0..rows).step_by(ROW_TILE) {
        let r1 = (r0 + ROW_TILE).min(rows);
        let mut oc = 0usize;
        while oc + 4 <= out_c {
            let w0 = &w[oc * ksize..(oc + 1) * ksize];
            let w1 = &w[(oc + 1) * ksize..(oc + 2) * ksize];
            let w2 = &w[(oc + 2) * ksize..(oc + 3) * ksize];
            let w3 = &w[(oc + 3) * ksize..(oc + 4) * ksize];
            let b: [f32; 4] = std::array::from_fn(|k| bias.map(|b| b[oc + k]).unwrap_or(0.0));
            for r in r0..r1 {
                let accs = dot_f32_x4(
                    engine,
                    &matrix[r * ksize..(r + 1) * ksize],
                    w0,
                    w1,
                    w2,
                    w3,
                    len,
                );
                let obase = r * out_c + oc;
                for k in 0..4 {
                    out[obase + k] = activation.apply(accs[k] + b[k]);
                }
            }
            oc += 4;
        }
        while oc < out_c {
            let wrow = &w[oc * ksize..(oc + 1) * ksize];
            let b = bias.map(|b| b[oc]).unwrap_or(0.0);
            for r in r0..r1 {
                let acc = dot_f32_len(engine, &matrix[r * ksize..(r + 1) * ksize], wrow, len) + b;
                out[r * out_c + oc] = activation.apply(acc);
            }
            oc += 1;
        }
    }
    Ok(())
}

/// SIMD float depthwise convolution: NHWC channels are contiguous, so the
/// channel loop vectorizes directly — 8 channels per step, vertical
/// multiply + add (deliberately **no** FMA: each channel's sum must stay
/// `acc += x*w` in `(ky, kx)` order, which keeps this kernel
/// bitwise-identical to both scalar flavors of `dwconv_f32`).
#[allow(clippy::too_many_arguments)]
pub(crate) fn dwconv_f32_simd(
    node: &Node,
    inputs: &[&Tensor],
    out_def: &TensorDef,
    stride: usize,
    padding: Padding,
    activation: Activation,
    out_t: &mut Tensor,
) -> Result<()> {
    let _ = node;
    let engine = active_engine();
    let input = inputs[0];
    let weights = inputs[1];
    let bias = inputs.get(2).map(|t| t.as_f32()).transpose()?;
    let x = input.as_f32()?;
    let w = weights.as_f32()?;
    let ws = weights.shape().dims();
    let (kh, kw, c) = (ws[1], ws[2], ws[3]);
    let g = geometry(input, out_def, kh, kw, stride, padding);
    let out = f32_slot(out_t, out_def)?;

    for n in 0..g.n {
        for oy in 0..g.out_h {
            for ox in 0..g.out_w {
                let obase = ((n * g.out_h + oy) * g.out_w + ox) * c;
                // Gather the in-bounds taps once per output cell; the
                // validity pattern is shared by every channel.
                let mut ch = 0usize;
                while ch + SIMD_LANES <= c {
                    let mut acc = [0.0f32; SIMD_LANES];
                    for (l, a) in acc.iter_mut().enumerate() {
                        *a = bias.map(|b| b[ch + l]).unwrap_or(0.0);
                    }
                    dw_cell(engine, x, w, &g, stride, kh, kw, c, n, oy, ox, ch, &mut acc);
                    for (l, a) in acc.iter().enumerate() {
                        out[obase + ch + l] = activation.apply(*a);
                    }
                    ch += SIMD_LANES;
                }
                while ch < c {
                    let mut acc = bias.map(|b| b[ch]).unwrap_or(0.0);
                    for ky in 0..kh {
                        let iy = (oy * stride + ky) as isize - g.pad_top as isize;
                        if iy < 0 || iy >= g.in_h as isize {
                            continue;
                        }
                        for kx in 0..kw {
                            let ix = (ox * stride + kx) as isize - g.pad_left as isize;
                            if ix < 0 || ix >= g.in_w as isize {
                                continue;
                            }
                            let i = ((n * g.in_h + iy as usize) * g.in_w + ix as usize) * c + ch;
                            acc += x[i] * w[(ky * kw + kx) * c + ch];
                        }
                    }
                    out[obase + ch] = activation.apply(acc);
                    ch += 1;
                }
            }
        }
    }
    Ok(())
}

/// One 8-channel depthwise output cell: taps in `(ky, kx)` order, vertical
/// unfused multiply + add per channel.
#[allow(clippy::too_many_arguments)]
fn dw_cell(
    engine: SimdEngine,
    x: &[f32],
    w: &[f32],
    g: &crate::kernels::conv::ConvGeom,
    stride: usize,
    kh: usize,
    kw: usize,
    c: usize,
    n: usize,
    oy: usize,
    ox: usize,
    ch: usize,
    acc: &mut [f32; SIMD_LANES],
) {
    for ky in 0..kh {
        let iy = (oy * stride + ky) as isize - g.pad_top as isize;
        if iy < 0 || iy >= g.in_h as isize {
            continue;
        }
        for kx in 0..kw {
            let ix = (ox * stride + kx) as isize - g.pad_left as isize;
            if ix < 0 || ix >= g.in_w as isize {
                continue;
            }
            let i = ((n * g.in_h + iy as usize) * g.in_w + ix as usize) * c + ch;
            let wb = (ky * kw + kx) * c + ch;
            match engine {
                SimdEngine::Avx2Fma => {
                    dw_tap_avx2(&x[i..i + SIMD_LANES], &w[wb..wb + SIMD_LANES], acc)
                }
                SimdEngine::Scalar => {
                    for l in 0..SIMD_LANES {
                        acc[l] += x[i + l] * w[wb + l];
                    }
                }
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
fn dw_tap_avx2(x: &[f32], w: &[f32], acc: &mut [f32; SIMD_LANES]) {
    // SAFETY: see `dot_f32_avx2`.
    unsafe { dw_tap_avx2_inner(x, w, acc) }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dw_tap_avx2_inner(x: &[f32], w: &[f32], acc: &mut [f32; SIMD_LANES]) {
    use std::arch::x86_64::*;
    let va = _mm256_loadu_ps(acc.as_ptr());
    let prod = _mm256_mul_ps(_mm256_loadu_ps(x.as_ptr()), _mm256_loadu_ps(w.as_ptr()));
    _mm256_storeu_ps(acc.as_mut_ptr(), _mm256_add_ps(va, prod));
}

#[cfg(not(target_arch = "x86_64"))]
fn dw_tap_avx2(x: &[f32], w: &[f32], acc: &mut [f32; SIMD_LANES]) {
    for l in 0..SIMD_LANES {
        acc[l] += x[l] * w[l];
    }
}

/// SIMD float fully-connected layer: each `[row] × [weight row]` reduction
/// runs through the virtual-SIMD dot, four output features per weight
/// fetch.
pub(crate) fn fc_f32_simd(
    node: &Node,
    inputs: &[&Tensor],
    out_def: &TensorDef,
    activation: Activation,
    bugs: &KernelBugs,
    out_t: &mut Tensor,
) -> Result<()> {
    let _ = node;
    let engine = active_engine();
    let x = inputs[0].as_f32()?;
    let w = inputs[1].as_f32()?;
    let bias = inputs.get(2).map(|t| t.as_f32()).transpose()?;
    let in_f = inputs[1].shape().dims()[1];
    let out_f = inputs[1].shape().dims()[0];
    let batch = inputs[0].shape().dims()[0];
    let out = f32_slot(out_t, out_def)?;
    let len = k_len(in_f, bugs);
    for n in 0..batch {
        let xrow = &x[n * in_f..(n + 1) * in_f];
        let mut o = 0usize;
        while o + 4 <= out_f {
            let accs = dot_f32_x4(
                engine,
                xrow,
                &w[o * in_f..(o + 1) * in_f],
                &w[(o + 1) * in_f..(o + 2) * in_f],
                &w[(o + 2) * in_f..(o + 3) * in_f],
                &w[(o + 3) * in_f..(o + 4) * in_f],
                len,
            );
            for k in 0..4 {
                let b = bias.map(|b| b[o + k]).unwrap_or(0.0);
                out[n * out_f + o + k] = activation.apply(accs[k] + b);
            }
            o += 4;
        }
        while o < out_f {
            let acc = dot_f32_len(engine, xrow, &w[o * in_f..(o + 1) * in_f], len);
            out[n * out_f + o] = activation.apply(acc + bias.map(|b| b[o]).unwrap_or(0.0));
            o += 1;
        }
    }
    Ok(())
}

/// SIMD quantized convolution: whole-batch `u8` im2col — padding taps are
/// filled with the input zero point, so they contribute exactly zero — then
/// an i8×i8→i32 batched GEMM. Integer accumulation is exact, so outputs
/// are bitwise-identical to [`conv2d_q`](super::conv::conv2d_q) in every
/// flavor and engine.
#[allow(clippy::too_many_arguments)]
pub(crate) fn conv2d_q_simd(
    node: &Node,
    inputs: &[&Tensor],
    out_def: &TensorDef,
    stride: usize,
    padding: Padding,
    activation: Activation,
    requant: RequantMode,
    out_t: &mut Tensor,
) -> Result<()> {
    let engine = active_engine();
    let input = inputs[0];
    let weights = inputs[1];
    let bias = inputs.get(2).map(|t| t.as_i32()).transpose()?;
    let (s_in, zp_in) = qparams_of(node, input)?;
    let (s_out, zp_out) = out_qparams(node, out_def)?;
    let wq = weights.quant().cloned().unwrap_or(QuantParams::PerTensor {
        scale: 1.0,
        zero_point: 0,
    });
    let x = input.as_u8()?;
    let w = weights.as_i8()?;
    let ws = weights.shape().dims();
    let (out_c, kh, kw) = (ws[0], ws[1], ws[2]);
    let g = geometry(input, out_def, kh, kw, stride, padding);
    let (qlo, qhi) = act_qbounds(activation, s_out, zp_out);
    let out = u8_slot(out_t, out_def)?;
    let ksize = kh * kw * g.in_c;
    let rows = g.n * g.out_h * g.out_w;

    // 1×1 stride-1: read the activation buffer directly.
    let direct = kh == 1 && kw == 1 && stride == 1 && g.out_h == g.in_h && g.out_w == g.in_w;
    let patches: Vec<u8>;
    let matrix: &[u8] = if direct {
        x
    } else {
        let mut m = vec![
            // Zero-point fill: an untouched (padding) tap contributes
            // (zp - zp) * w == 0, matching the reference kernel's skip.
            zp_in.clamp(0, 255) as u8;
            rows * ksize
        ];
        let mut row = 0usize;
        for n in 0..g.n {
            for oy in 0..g.out_h {
                for ox in 0..g.out_w {
                    let pbase = row * ksize;
                    for ky in 0..kh {
                        let iy = (oy * stride + ky) as isize - g.pad_top as isize;
                        if iy < 0 || iy >= g.in_h as isize {
                            continue;
                        }
                        for kx in 0..kw {
                            let ix = (ox * stride + kx) as isize - g.pad_left as isize;
                            if ix < 0 || ix >= g.in_w as isize {
                                continue;
                            }
                            let ibase =
                                ((n * g.in_h + iy as usize) * g.in_w + ix as usize) * g.in_c;
                            let dst = pbase + (ky * kw + kx) * g.in_c;
                            m[dst..dst + g.in_c].copy_from_slice(&x[ibase..ibase + g.in_c]);
                        }
                    }
                    row += 1;
                }
            }
        }
        patches = m;
        &patches
    };

    for r0 in (0..rows).step_by(ROW_TILE) {
        let r1 = (r0 + ROW_TILE).min(rows);
        for oc in 0..out_c {
            let wrow = &w[oc * ksize..(oc + 1) * ksize];
            let b = bias.map(|b| b[oc]).unwrap_or(0);
            let m = (s_in as f64) * (weight_scale(&wq, oc) as f64) / (s_out as f64);
            for r in r0..r1 {
                let acc = b + dot_q8_with(engine, &matrix[r * ksize..(r + 1) * ksize], zp_in, wrow);
                out[r * out_c + oc] = requantize(acc, m, zp_out, qlo, qhi, requant);
            }
        }
    }
    Ok(())
}

/// SIMD quantized fully-connected layer: i8×i8→i32 row reductions, exact
/// and bitwise-identical to [`fc_q`](super::fc::fc_q).
pub(crate) fn fc_q_simd(
    node: &Node,
    inputs: &[&Tensor],
    out_def: &TensorDef,
    activation: Activation,
    requant: RequantMode,
    out_t: &mut Tensor,
) -> Result<()> {
    let engine = active_engine();
    let input = inputs[0];
    let weights = inputs[1];
    let bias = inputs.get(2).map(|t| t.as_i32()).transpose()?;
    let (s_in, zp_in) = qparams_of(node, input)?;
    let (s_out, zp_out) = out_qparams(node, out_def)?;
    let wq = weights.quant().cloned().unwrap_or(QuantParams::PerTensor {
        scale: 1.0,
        zero_point: 0,
    });
    let x = input.as_u8()?;
    let w = weights.as_i8()?;
    let in_f = weights.shape().dims()[1];
    let out_f = weights.shape().dims()[0];
    let batch = input.shape().dims()[0];
    let (qlo, qhi) = act_qbounds(activation, s_out, zp_out);
    let out = u8_slot(out_t, out_def)?;
    for n in 0..batch {
        let xrow = &x[n * in_f..(n + 1) * in_f];
        for o in 0..out_f {
            let acc = bias.map(|b| b[o]).unwrap_or(0)
                + dot_q8_with(engine, xrow, zp_in, &w[o * in_f..(o + 1) * in_f]);
            let m = (s_in as f64) * (wq.for_channel(o).0 as f64) / (s_out as f64);
            out[n * out_f + o] = requantize(acc, m, zp_out, qlo, qhi, requant);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det_f32(seed: u64, n: usize) -> Vec<f32> {
        let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..n)
            .map(|_| {
                s ^= s >> 12;
                s ^= s << 25;
                s ^= s >> 27;
                let bits = s.wrapping_mul(0x2545_F491_4F6C_DD1D);
                ((bits >> 40) as f32 / (1u64 << 24) as f32) * 3.0 - 1.5
            })
            .collect()
    }

    #[test]
    fn engines_agree_bitwise_on_f32_dots() {
        if active_engine() == SimdEngine::Scalar {
            // No vector unit to cross-check against on this host; the
            // scalar mirror *is* the canonical arithmetic.
            return;
        }
        for len in [0, 1, 3, 7, 8, 9, 15, 16, 17, 27, 64, 129, 1000] {
            let a = det_f32(len as u64 + 1, len);
            let b = det_f32(len as u64 + 2, len);
            let fast = dot_f32_with(SimdEngine::Avx2Fma, &a, &b);
            let slow = dot_f32_with(SimdEngine::Scalar, &a, &b);
            assert_eq!(
                fast.to_bits(),
                slow.to_bits(),
                "engine divergence at len {len}: {fast} vs {slow}"
            );
        }
    }

    #[test]
    fn engines_agree_bitwise_on_q8_dots() {
        if active_engine() == SimdEngine::Scalar {
            return;
        }
        for len in [0, 1, 5, 15, 16, 17, 31, 32, 33, 100, 1000] {
            let a: Vec<u8> = (0..len).map(|i| (i * 37 % 256) as u8).collect();
            let w: Vec<i8> = (0..len)
                .map(|i| ((i * 53 % 255) as i16 - 127) as i8)
                .collect();
            for zp in [0, 7, 128, 255] {
                assert_eq!(
                    dot_q8_with(SimdEngine::Avx2Fma, &a, zp, &w),
                    dot_q8_with(SimdEngine::Scalar, &a, zp, &w),
                    "q8 engine divergence at len {len}, zp {zp}"
                );
            }
        }
    }

    #[test]
    fn x4_matches_single_row_dots() {
        let engine = active_engine();
        for len in [1, 8, 17, 65] {
            let a = det_f32(9, len);
            let rows: Vec<Vec<f32>> = (0..4).map(|r| det_f32(100 + r, len)).collect();
            let x4 = dot_f32_x4(engine, &a, &rows[0], &rows[1], &rows[2], &rows[3], len);
            for k in 0..4 {
                assert_eq!(
                    x4[k].to_bits(),
                    dot_f32_with(engine, &a, &rows[k]).to_bits(),
                    "x4 lane {k} diverged at len {len}"
                );
            }
        }
    }

    #[test]
    fn k_tail_bug_fires_only_on_ragged_k() {
        let bug = KernelBugs {
            simd_gemm_k_tail_skip: true,
            ..KernelBugs::none()
        };
        assert_eq!(k_len(16, &bug), 16, "aligned K must be untouched");
        assert_eq!(k_len(17, &bug), 16, "ragged K drops its last element");
        assert_eq!(k_len(17, &KernelBugs::none()), 17);
    }

    #[test]
    fn detection_is_cached_and_labelled() {
        let e = active_engine();
        assert_eq!(e, active_engine());
        assert!(["avx2+fma", "scalar"].contains(&e.label()));
    }
}
