use std::fmt;

use mlexray_tensor::TensorError;

/// Errors produced by graph construction, conversion, quantization and
/// interpretation.
#[derive(Debug, Clone, PartialEq)]
pub enum NnError {
    /// A graph invariant was violated (dangling tensor, duplicate output...).
    InvalidGraph(String),
    /// An op received incompatible input shapes or dtypes.
    InvalidOp {
        /// Name of the offending node.
        node: String,
        /// Human-readable reason.
        reason: String,
    },
    /// The interpreter was invoked with the wrong number or shape of inputs.
    InvalidInput(String),
    /// Quantization failed (missing calibration, unsupported op...).
    Quantization(String),
    /// Conversion failed (unfusable pattern...).
    Conversion(String),
    /// A tensor-level error surfaced.
    Tensor(TensorError),
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::InvalidGraph(msg) => write!(f, "invalid graph: {msg}"),
            NnError::InvalidOp { node, reason } => write!(f, "invalid op at '{node}': {reason}"),
            NnError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
            NnError::Quantization(msg) => write!(f, "quantization error: {msg}"),
            NnError::Conversion(msg) => write!(f, "conversion error: {msg}"),
            NnError::Tensor(e) => write!(f, "tensor error: {e}"),
        }
    }
}

impl std::error::Error for NnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NnError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for NnError {
    fn from(e: TensorError) -> Self {
        NnError::Tensor(e)
    }
}
