use std::time::{Duration, Instant};

use mlexray_tensor::{DType, Tensor};

use crate::graph::{Graph, TensorDef};
use crate::kernels::execute_node;
use crate::ops::OpKind;
use crate::resolver::{KernelBugs, KernelFlavor};
use crate::{NnError, Result};

/// Interpreter configuration: which kernel family to dispatch and which
/// injected defects are active.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct InterpreterOptions {
    /// Kernel family (TFLite `OpResolver` vs `RefOpResolver`).
    pub flavor: KernelFlavor,
    /// Injected kernel defects (off by default).
    pub bugs: KernelBugs,
}

impl InterpreterOptions {
    /// Optimized kernels, no bugs — the production default.
    pub fn optimized() -> Self {
        InterpreterOptions {
            flavor: KernelFlavor::Optimized,
            bugs: KernelBugs::none(),
        }
    }

    /// Reference kernels, no bugs — the debugging resolver.
    pub fn reference() -> Self {
        InterpreterOptions {
            flavor: KernelFlavor::Reference,
            bugs: KernelBugs::none(),
        }
    }
}

/// Everything ML-EXray's per-layer instrumentation can see about one executed
/// node: identity, op, output values and measured latency.
#[derive(Debug)]
pub struct LayerRecord<'a> {
    /// Execution index of the node.
    pub index: usize,
    /// Node display name.
    pub name: &'a str,
    /// The operation performed.
    pub op: &'a OpKind,
    /// The node's output tensor.
    pub output: &'a Tensor,
    /// Wall-clock latency of the kernel.
    pub latency: Duration,
    /// MAC estimate for the node (drives simulated-device cost models).
    pub macs: u64,
}

/// Observer invoked after every node — the hook ML-EXray's EdgeML Monitor
/// (and the device simulator) attaches to.
pub trait LayerObserver {
    /// Called once per executed node, in execution order.
    fn on_layer(&mut self, record: &LayerRecord<'_>);
}

/// A no-op observer.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl LayerObserver for NullObserver {
    fn on_layer(&mut self, _record: &LayerRecord<'_>) {}
}

/// Aggregate statistics of one `invoke`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvokeStats {
    /// End-to-end wall-clock latency.
    pub latency: Duration,
    /// Peak bytes held by live activation tensors during the run.
    pub peak_activation_bytes: usize,
}

/// Executes a [`Graph`] node by node, TFLite-interpreter style.
///
/// # Example
///
/// ```
/// use mlexray_nn::{GraphBuilder, Interpreter, InterpreterOptions};
/// use mlexray_tensor::{Shape, Tensor};
///
/// let mut b = GraphBuilder::new("softmax-only");
/// let x = b.input("x", Shape::matrix(1, 3));
/// let y = b.softmax("s", x)?;
/// b.output(y);
/// let graph = b.finish()?;
///
/// let mut interp = Interpreter::new(&graph, InterpreterOptions::optimized())?;
/// let out = interp.invoke(&[Tensor::from_f32(Shape::matrix(1, 3), vec![0.0, 1.0, 2.0])?])?;
/// let p = out[0].as_f32()?;
/// assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-5);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Interpreter<'g> {
    graph: &'g Graph,
    options: InterpreterOptions,
    /// One slot per graph tensor; constants are materialized once.
    values: Vec<Option<Tensor>>,
    last_stats: Option<InvokeStats>,
}

impl<'g> Interpreter<'g> {
    /// Prepares an interpreter for a graph (validates it and materializes
    /// constants).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidGraph`] if validation fails.
    pub fn new(graph: &'g Graph, options: InterpreterOptions) -> Result<Self> {
        graph.validate()?;
        let values = graph
            .tensors()
            .iter()
            .map(|def| def.as_constant().cloned())
            .collect();
        Ok(Interpreter {
            graph,
            options,
            values,
            last_stats: None,
        })
    }

    /// The interpreter's options.
    pub fn options(&self) -> InterpreterOptions {
        self.options
    }

    /// The graph being executed.
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// Statistics of the most recent invoke, if any.
    pub fn last_stats(&self) -> Option<InvokeStats> {
        self.last_stats
    }

    fn check_inputs(&self, inputs: &[Tensor]) -> Result<()> {
        let expected = self.graph.inputs();
        if inputs.len() != expected.len() {
            return Err(NnError::InvalidInput(format!(
                "expected {} inputs, got {}",
                expected.len(),
                inputs.len()
            )));
        }
        for (&id, t) in expected.iter().zip(inputs) {
            let def = self.graph.tensor(id);
            if def.shape() != t.shape() {
                return Err(NnError::InvalidInput(format!(
                    "input '{}' expects shape {}, got {}",
                    def.name(),
                    def.shape(),
                    t.shape()
                )));
            }
            if def.dtype() != t.dtype() {
                return Err(NnError::InvalidInput(format!(
                    "input '{}' expects {:?}, got {:?}",
                    def.name(),
                    def.dtype(),
                    t.dtype()
                )));
            }
        }
        Ok(())
    }

    /// Runs the graph and returns its outputs.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidInput`] on interface mismatches and
    /// [`NnError::InvalidOp`] if a kernel rejects its operands.
    pub fn invoke(&mut self, inputs: &[Tensor]) -> Result<Vec<Tensor>> {
        self.invoke_observed(inputs, &mut NullObserver)
    }

    /// Runs the graph, reporting every executed node to `observer`.
    ///
    /// # Errors
    ///
    /// Same as [`Interpreter::invoke`].
    pub fn invoke_observed(
        &mut self,
        inputs: &[Tensor],
        observer: &mut dyn LayerObserver,
    ) -> Result<Vec<Tensor>> {
        self.check_inputs(inputs)?;
        let start = Instant::now();

        // Reset activation slots and bind inputs (attaching declared input
        // quantization so quantized graphs see parameterized tensors).
        for (i, def) in self.graph.tensors().iter().enumerate() {
            if matches!(def, TensorDef::Activation { .. } | TensorDef::Input { .. }) {
                self.values[i] = None;
            }
        }
        for (&id, t) in self.graph.inputs().iter().zip(inputs) {
            let def = self.graph.tensor(id);
            let mut bound = t.clone();
            if bound.dtype() != DType::F32 && bound.quant().is_none() {
                bound.set_quant(def.quant().cloned());
            }
            self.values[id.0] = Some(bound);
        }

        let mut peak = 0usize;
        for (index, node) in self.graph.nodes().iter().enumerate() {
            let out_def = self.graph.tensor(node.output);
            let node_start = Instant::now();
            let result = {
                let input_refs: Vec<&Tensor> = node
                    .inputs
                    .iter()
                    .map(|id| {
                        self.values[id.0]
                            .as_ref()
                            .expect("validated graph guarantees def-before-use")
                    })
                    .collect();
                execute_node(
                    self.graph,
                    node,
                    &input_refs,
                    out_def,
                    self.options.flavor,
                    &self.options.bugs,
                )?
            };
            let latency = node_start.elapsed();
            observer.on_layer(&LayerRecord {
                index,
                name: &node.name,
                op: &node.op,
                output: &result,
                latency,
                macs: self.graph.node_macs(crate::graph::NodeId(index)),
            });
            self.values[node.output.0] = Some(result);

            let live: usize = self
                .graph
                .tensors()
                .iter()
                .enumerate()
                .filter(|(_, d)| matches!(d, TensorDef::Activation { .. }))
                .filter_map(|(i, _)| self.values[i].as_ref())
                .map(Tensor::byte_size)
                .sum();
            peak = peak.max(live);
        }

        let outputs = self
            .graph
            .outputs()
            .iter()
            .map(|&id| {
                self.values[id.0]
                    .clone()
                    .ok_or_else(|| NnError::InvalidGraph("output never produced".into()))
            })
            .collect::<Result<Vec<_>>>()?;
        self.last_stats = Some(InvokeStats {
            latency: start.elapsed(),
            peak_activation_bytes: peak,
        });
        Ok(outputs)
    }

    /// The value of any tensor slot after the last invoke (useful for
    /// debugging intermediate activations by id).
    pub fn tensor_value(&self, id: crate::graph::TensorId) -> Option<&Tensor> {
        self.values.get(id.0).and_then(Option::as_ref)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::ops::{Activation, Padding};
    use mlexray_tensor::Shape;

    fn conv_graph() -> Graph {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", Shape::nhwc(1, 3, 3, 1));
        // Identity 1x1 kernel scaled by 2.
        let w = b.constant(
            "w",
            Tensor::from_f32(Shape::new(vec![1, 1, 1, 1]), vec![2.0]).unwrap(),
        );
        let y = b
            .conv2d("c", x, w, None, 1, Padding::Same, Activation::Relu)
            .unwrap();
        b.output(y);
        b.finish().unwrap()
    }

    #[test]
    fn conv_identity_scales() {
        let g = conv_graph();
        let mut interp = Interpreter::new(&g, InterpreterOptions::optimized()).unwrap();
        let input = Tensor::from_f32(
            Shape::nhwc(1, 3, 3, 1),
            vec![1.0, -1.0, 2.0, 0.5, 0.0, -3.0, 1.5, 2.5, -0.5],
        )
        .unwrap();
        let out = interp.invoke(&[input]).unwrap();
        let v = out[0].as_f32().unwrap();
        assert_eq!(v[0], 2.0);
        assert_eq!(v[1], 0.0, "ReLU clips negatives");
        assert_eq!(v[2], 4.0);
        assert!(interp.last_stats().unwrap().peak_activation_bytes > 0);
    }

    #[test]
    fn wrong_input_shape_rejected() {
        let g = conv_graph();
        let mut interp = Interpreter::new(&g, InterpreterOptions::optimized()).unwrap();
        let bad = Tensor::zeros(DType::F32, Shape::nhwc(1, 2, 2, 1));
        assert!(matches!(
            interp.invoke(&[bad]),
            Err(NnError::InvalidInput(_))
        ));
        assert!(matches!(interp.invoke(&[]), Err(NnError::InvalidInput(_))));
    }

    #[test]
    fn observer_sees_every_layer() {
        struct Count(Vec<String>);
        impl LayerObserver for Count {
            fn on_layer(&mut self, r: &LayerRecord<'_>) {
                self.0.push(format!("{}:{}", r.index, r.name));
            }
        }
        let g = conv_graph();
        let mut interp = Interpreter::new(&g, InterpreterOptions::optimized()).unwrap();
        let mut obs = Count(Vec::new());
        let x = Tensor::zeros(DType::F32, Shape::nhwc(1, 3, 3, 1));
        interp.invoke_observed(&[x], &mut obs).unwrap();
        assert_eq!(obs.0, vec!["0:c"]);
    }

    #[test]
    fn flavors_agree_on_small_float_conv() {
        let g = conv_graph();
        let x = Tensor::from_f32(
            Shape::nhwc(1, 3, 3, 1),
            vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9],
        )
        .unwrap();
        let mut opt = Interpreter::new(&g, InterpreterOptions::optimized()).unwrap();
        let mut reference = Interpreter::new(&g, InterpreterOptions::reference()).unwrap();
        let a = opt.invoke(std::slice::from_ref(&x)).unwrap();
        let b = reference.invoke(std::slice::from_ref(&x)).unwrap();
        for (u, v) in a[0].as_f32().unwrap().iter().zip(b[0].as_f32().unwrap()) {
            assert!((u - v).abs() < 1e-5);
        }
    }
}
