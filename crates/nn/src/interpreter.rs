use std::time::{Duration, Instant};

use mlexray_tensor::{DType, Shape, Tensor, TensorData};

use crate::graph::{Graph, TensorDef, TensorId};
use crate::kernels::{execute_node, KernelCtx};
use crate::ops::OpKind;
use crate::plan::{batched_shape, MemoryPlan};
use crate::resolver::{EdgeNumerics, KernelBugs, KernelFlavor};
use crate::{NnError, Result};

/// Interpreter configuration: which kernel family to dispatch, which
/// injected defects are active, and (for the edge-emulator backend) which
/// emulated numerics to apply.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct InterpreterOptions {
    /// Kernel family (TFLite `OpResolver` vs `RefOpResolver`).
    pub flavor: KernelFlavor,
    /// Injected kernel defects (off by default).
    pub bugs: KernelBugs,
    /// Emulated edge-runtime numerics. `None` (the default) runs the
    /// flavor's native arithmetic; `Some` routes GEMM-family float kernels
    /// through the emulated accumulator, applies the configured
    /// requantization precision to quantized kernels, and optionally flushes
    /// subnormal outputs to zero after every node.
    pub numerics: Option<EdgeNumerics>,
}

impl InterpreterOptions {
    /// Optimized kernels, no bugs — the production default.
    pub fn optimized() -> Self {
        InterpreterOptions {
            flavor: KernelFlavor::Optimized,
            bugs: KernelBugs::none(),
            numerics: None,
        }
    }

    /// Reference kernels, no bugs — the debugging resolver.
    pub fn reference() -> Self {
        InterpreterOptions {
            flavor: KernelFlavor::Reference,
            bugs: KernelBugs::none(),
            numerics: None,
        }
    }

    /// Edge-emulator numerics over reference kernel structure, no bugs.
    pub fn emulated(numerics: EdgeNumerics) -> Self {
        InterpreterOptions {
            flavor: KernelFlavor::Reference,
            bugs: KernelBugs::none(),
            numerics: Some(numerics),
        }
    }
}

/// Everything ML-EXray's per-layer instrumentation can see about one executed
/// node: identity, op, output values, measured latency and the frame it
/// belongs to.
#[derive(Debug)]
pub struct LayerRecord<'a> {
    /// Execution index of the node.
    pub index: usize,
    /// Node display name.
    pub name: &'a str,
    /// The operation performed.
    pub op: &'a OpKind,
    /// The node's output tensor. During a batched invoke this is the
    /// per-frame view, so logging stays per-frame — unless the observer
    /// declined it via [`LayerObserver::wants_output`], in which case it
    /// is an empty placeholder the observer promised not to read.
    pub output: &'a Tensor,
    /// Index of the frame within the invoked batch (`0` for single invokes).
    pub batch: usize,
    /// Wall-clock latency of the kernel. During a batched invoke each
    /// frame's record carries its share (node latency / batch size).
    pub latency: Duration,
    /// MAC estimate for the node (drives simulated-device cost models),
    /// counted per frame.
    pub macs: u64,
}

/// Observer invoked after every node — the hook ML-EXray's EdgeML Monitor
/// (and the device simulator) attaches to.
pub trait LayerObserver {
    /// Called once per executed node per frame, in execution order.
    fn on_layer(&mut self, record: &LayerRecord<'_>);

    /// Whether the observer wants records at all. Returning `false` (as
    /// [`NullObserver`] does) lets batched invokes skip materializing
    /// per-frame output views entirely.
    fn enabled(&self) -> bool {
        true
    }

    /// Whether the observer will read [`LayerRecord::output`] for this
    /// frame of the batch. A batched invoke materializes the per-frame
    /// output view — an activation-sized copy per layer per frame — only
    /// for frames that want it; other frames still receive their records
    /// (index, latency share, MACs) with an empty placeholder output.
    /// Observers that only consume timings (e.g. span capture) override
    /// this to return `false`, keeping deep telemetry's copy cost off
    /// timing-only instrumentation.
    fn wants_output(&self, _batch: usize) -> bool {
        true
    }
}

/// A no-op observer.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl LayerObserver for NullObserver {
    fn on_layer(&mut self, _record: &LayerRecord<'_>) {}

    fn enabled(&self) -> bool {
        false
    }
}

/// Aggregate statistics of one `invoke` / `invoke_batch`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvokeStats {
    /// End-to-end wall-clock latency of the whole (possibly batched) invoke.
    pub latency: Duration,
    /// Planned peak bytes simultaneously live across runtime tensors
    /// (inputs + activations) under the memory plan's lifetimes.
    pub peak_activation_bytes: usize,
    /// Planned arena footprint: what one contiguous allocation serving every
    /// runtime tensor of the invoke would occupy, with lifetime-disjoint
    /// tensors sharing bytes. This is the layout a byte-arena deployment
    /// backend would allocate; the interpreter itself keeps one buffer per
    /// slot ([`MemoryPlan::unshared_bytes`] resident) so
    /// [`Interpreter::tensor_value`] can expose every intermediate after
    /// the invoke.
    pub arena_bytes: usize,
    /// Buffer allocations performed to service this invoke's data flow
    /// (output materialization only — arena slots are preallocated and
    /// reused, so with a disabled observer this is
    /// `outputs × frames`, independent of graph depth).
    pub allocations: usize,
    /// Frames executed by this invoke (1 for [`Interpreter::invoke`]).
    pub batch: usize,
    /// Frames simultaneously resident in the arena the peak/arena figures
    /// describe: `batch` when frames were stacked into one graph execution,
    /// `1` when they ran per-frame (single invokes and the non-batchable
    /// fallback). Per-frame memory attribution is
    /// `peak_activation_bytes / arena_frames`.
    pub arena_frames: usize,
}

impl InvokeStats {
    /// This invoke's latency attributed to one frame (`latency / batch`) —
    /// what a serving layer reports as per-request execution time when
    /// several coalesced requests shared one batched invoke.
    pub fn per_frame_latency(&self) -> Duration {
        self.latency / self.batch.max(1) as u32
    }

    /// This invoke's throughput in frames per second.
    pub fn frames_per_sec(&self) -> f64 {
        let secs = self.latency.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.batch as f64 / secs
        }
    }
}

/// One prepared execution arena: the memory plan for a batch factor plus the
/// preallocated per-slot buffers and GEMM scratch it describes.
#[derive(Debug)]
struct ExecState {
    batch: usize,
    plan: MemoryPlan,
    /// Batched slot definitions; `None` means the graph's own definition
    /// applies (always the case at batch factor 1, and for constants).
    defs: Vec<Option<TensorDef>>,
    /// Runtime slots, preallocated from the plan; constants stay `None` and
    /// are read straight from the graph.
    values: Vec<Option<Tensor>>,
    /// f32 scratch for the batched GEMM convolution; capacity reserved at
    /// plan time so kernels never reallocate it in steady state.
    scratch: Vec<f32>,
}

impl ExecState {
    fn new(graph: &Graph, batch: usize) -> Result<Self> {
        let plan = MemoryPlan::for_graph(graph, batch)?;
        // Debug builds re-prove the arena layout with the independent
        // verifier from the static analyzer, so a future planner bug fails
        // loudly in tests instead of silently corrupting activations in
        // release.
        #[cfg(debug_assertions)]
        {
            let findings = crate::analysis::verify_plan(graph, &plan);
            assert!(
                findings.is_empty(),
                "memory plan failed alias verification:\n{}",
                findings
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join("\n")
            );
        }
        let mut defs: Vec<Option<TensorDef>> = vec![None; graph.tensors().len()];
        let mut values: Vec<Option<Tensor>> = vec![None; graph.tensors().len()];
        for (i, def) in graph.tensors().iter().enumerate() {
            if matches!(def, TensorDef::Constant { .. }) {
                continue;
            }
            let shape = batched_shape(def.shape(), batch)?;
            if batch > 1 {
                defs[i] = Some(match def {
                    TensorDef::Input {
                        name, dtype, quant, ..
                    } => TensorDef::Input {
                        name: name.clone(),
                        shape: shape.clone(),
                        dtype: *dtype,
                        quant: quant.clone(),
                    },
                    TensorDef::Activation {
                        name, dtype, quant, ..
                    } => TensorDef::Activation {
                        name: name.clone(),
                        shape: shape.clone(),
                        dtype: *dtype,
                        quant: quant.clone(),
                    },
                    TensorDef::Constant { .. } => unreachable!("constants skipped above"),
                });
            }
            let mut slot = Tensor::zeros(def.dtype(), shape);
            slot.set_quant(def.quant().cloned());
            values[i] = Some(slot);
        }
        let mut scratch = Vec::new();
        scratch.reserve_exact(plan.scratch_elems());
        Ok(ExecState {
            batch,
            plan,
            defs,
            values,
            scratch,
        })
    }

    fn def<'a>(&'a self, graph: &'a Graph, id: usize) -> &'a TensorDef {
        self.defs[id]
            .as_ref()
            .unwrap_or_else(|| graph.tensor(TensorId(id)))
    }
}

/// Materializes frame `b` of a stacked tensor as its own tensor with the
/// per-frame `shape`.
fn frame_view(stacked: &Tensor, shape: &Shape, b: usize) -> Result<Tensor> {
    let per = shape.num_elements();
    let lo = b * per;
    let mut out = Tensor::zeros(stacked.dtype(), shape.clone());
    match stacked.data() {
        TensorData::F32(src) => out.as_f32_mut()?.copy_from_slice(&src[lo..lo + per]),
        TensorData::U8(src) => out.as_u8_mut()?.copy_from_slice(&src[lo..lo + per]),
        TensorData::I8(src) => out.as_i8_mut()?.copy_from_slice(&src[lo..lo + per]),
        TensorData::I32(src) => out.as_i32_mut()?.copy_from_slice(&src[lo..lo + per]),
    }
    out.set_quant(stacked.quant().cloned());
    Ok(out)
}

/// Copies `src`'s buffer into `dst` starting at element offset `at`.
fn copy_into_slot(dst: &mut Tensor, src: &Tensor, at: usize) -> Result<()> {
    let n = src.len();
    match src.data() {
        TensorData::F32(v) => dst.as_f32_mut()?[at..at + n].copy_from_slice(v),
        TensorData::U8(v) => dst.as_u8_mut()?[at..at + n].copy_from_slice(v),
        TensorData::I8(v) => dst.as_i8_mut()?[at..at + n].copy_from_slice(v),
        TensorData::I32(v) => dst.as_i32_mut()?[at..at + n].copy_from_slice(v),
    }
    Ok(())
}

/// Executes a [`Graph`] node by node, TFLite-interpreter style, over a
/// preplanned buffer arena ([`MemoryPlan`]): every runtime tensor's buffer
/// is allocated once, up front, and reused across invokes, so steady-state
/// execution performs no per-node allocation.
///
/// # Example
///
/// ```
/// use mlexray_nn::{GraphBuilder, Interpreter, InterpreterOptions};
/// use mlexray_tensor::{Shape, Tensor};
///
/// let mut b = GraphBuilder::new("softmax-only");
/// let x = b.input("x", Shape::matrix(1, 3));
/// let y = b.softmax("s", x)?;
/// b.output(y);
/// let graph = b.finish()?;
///
/// let mut interp = Interpreter::new(&graph, InterpreterOptions::optimized())?;
/// let out = interp.invoke(&[Tensor::from_f32(Shape::matrix(1, 3), vec![0.0, 1.0, 2.0])?])?;
/// let p = out[0].as_f32()?;
/// assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-5);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Interpreter<'g> {
    graph: &'g Graph,
    options: InterpreterOptions,
    single: ExecState,
    /// Cached arenas for batched invokes, one per batch size seen (a replay
    /// shard's tail chunk and its full chunks each keep theirs). Dropped via
    /// [`Interpreter::release_batched_arenas`].
    batched: Vec<ExecState>,
    /// Whether the graph can run stacked batches (see
    /// [`Interpreter::is_batchable`]).
    batch_safe: bool,
    /// Batch size of the most recent stacked invoke, when the last invoke
    /// ran on a batched arena (decides which arena
    /// [`Interpreter::tensor_value`] reads).
    last_batched: Option<usize>,
    last_stats: Option<InvokeStats>,
}

impl<'g> Interpreter<'g> {
    /// Prepares an interpreter for a graph: validates it, computes the
    /// [`MemoryPlan`] and preallocates every runtime tensor's buffer.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidGraph`] if validation fails.
    pub fn new(graph: &'g Graph, options: InterpreterOptions) -> Result<Self> {
        graph.validate()?;
        Ok(Interpreter {
            graph,
            options,
            single: ExecState::new(graph, 1)?,
            batched: Vec::new(),
            batch_safe: batch_safe(graph),
            last_batched: None,
            last_stats: None,
        })
    }

    /// The interpreter's options.
    pub fn options(&self) -> InterpreterOptions {
        self.options
    }

    /// The graph being executed.
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// Statistics of the most recent invoke, if any.
    pub fn last_stats(&self) -> Option<InvokeStats> {
        self.last_stats
    }

    /// The memory plan backing single-frame invokes.
    pub fn memory_plan(&self) -> &MemoryPlan {
        &self.single.plan
    }

    /// Whether [`Interpreter::invoke_batch`] can stack frames into one graph
    /// execution for this graph. Graphs that mix frames across the batch
    /// dimension (matrix products between activations, concatenation along
    /// axis 0, non-constant weights, gate-shaped constant multiplicands)
    /// fall back to per-frame execution inside `invoke_batch`.
    pub fn is_batchable(&self) -> bool {
        self.batch_safe
    }

    fn check_inputs(&self, inputs: &[Tensor]) -> Result<()> {
        let expected = self.graph.inputs();
        if inputs.len() != expected.len() {
            return Err(NnError::InvalidInput(format!(
                "expected {} inputs, got {}",
                expected.len(),
                inputs.len()
            )));
        }
        for (&id, t) in expected.iter().zip(inputs) {
            let def = self.graph.tensor(id);
            if def.shape() != t.shape() {
                return Err(NnError::InvalidInput(format!(
                    "input '{}' expects shape {}, got {}",
                    def.name(),
                    def.shape(),
                    t.shape()
                )));
            }
            if def.dtype() != t.dtype() {
                return Err(NnError::InvalidInput(format!(
                    "input '{}' expects {:?}, got {:?}",
                    def.name(),
                    def.dtype(),
                    t.dtype()
                )));
            }
        }
        Ok(())
    }

    /// Copies every sample's inputs into the arena's input slots (sample `b`
    /// lands at frame offset `b`) and resolves the slots' quantization.
    fn stage_inputs(graph: &Graph, state: &mut ExecState, samples: &[&[Tensor]]) -> Result<()> {
        for (k, &id) in graph.inputs().iter().enumerate() {
            let def = graph.tensor(id);
            let per = def.shape().num_elements();
            let slot = state.values[id.0]
                .as_mut()
                .expect("input slots are always planned");
            for (b, sample) in samples.iter().enumerate() {
                copy_into_slot(slot, &sample[k], b * per)?;
            }
            let first = &samples[0][k];
            let quant = if first.quant().is_some() {
                first.quant().cloned()
            } else if first.dtype() != DType::F32 {
                def.quant().cloned()
            } else {
                None
            };
            slot.set_quant(quant);
        }
        Ok(())
    }

    /// Runs every node over the staged arena. `frames` is the number of
    /// stacked frames in the arena; `batch_base` offsets the frame index
    /// reported to the observer (used by the per-frame fallback).
    fn execute_graph(
        graph: &Graph,
        options: InterpreterOptions,
        state: &mut ExecState,
        observer: &mut dyn LayerObserver,
        batch_base: usize,
    ) -> Result<()> {
        let frames = state.batch;
        // Frames whose observer declined the output view share this one
        // empty placeholder (contract: they never read it, so the dtype
        // is immaterial).
        let placeholder = Tensor::zeros(DType::F32, Shape::new([0usize; 0]));
        for (index, node) in graph.nodes().iter().enumerate() {
            let out_id = node.output.0;
            // Degenerate graphs may write a constant slot; give them a
            // fresh buffer instead of the (absent) planned slot.
            let mut out = match state.values[out_id].take() {
                Some(t) => t,
                None => {
                    let d = state.def(graph, out_id);
                    let mut t = Tensor::zeros(d.dtype(), d.shape().clone());
                    t.set_quant(d.quant().cloned());
                    t
                }
            };
            let node_start = Instant::now();
            let result = {
                let (values, defs, scratch) = (&state.values, &state.defs, &mut state.scratch);
                let input_refs: Vec<&Tensor> = node
                    .inputs
                    .iter()
                    .map(|id| {
                        values[id.0]
                            .as_ref()
                            .or_else(|| graph.tensor(*id).as_constant())
                            .expect("validated graph guarantees def-before-use")
                    })
                    .collect();
                let out_def = defs[out_id]
                    .as_ref()
                    .unwrap_or_else(|| graph.tensor(TensorId(out_id)));
                let mut ctx = KernelCtx {
                    flavor: options.flavor,
                    bugs: &options.bugs,
                    numerics: options.numerics,
                    batched: frames > 1,
                    scratch,
                };
                execute_node(graph, node, &input_refs, out_def, &mut out, &mut ctx)
            };
            let latency = node_start.elapsed();
            state.values[out_id] = Some(out);
            result?;
            if observer.enabled() {
                let macs = graph.node_macs(crate::graph::NodeId(index));
                let produced = state.values[out_id].as_ref().expect("restored above");
                if frames == 1 {
                    observer.on_layer(&LayerRecord {
                        index,
                        name: &node.name,
                        op: &node.op,
                        output: produced,
                        batch: batch_base,
                        latency,
                        macs,
                    });
                } else {
                    let per_shape = graph.tensor(TensorId(out_id)).shape();
                    let share = latency / frames as u32;
                    for b in 0..frames {
                        let frame = batch_base + b;
                        let view = if observer.wants_output(frame) {
                            Some(frame_view(produced, per_shape, b)?)
                        } else {
                            None
                        };
                        observer.on_layer(&LayerRecord {
                            index,
                            name: &node.name,
                            op: &node.op,
                            output: view.as_ref().unwrap_or(&placeholder),
                            batch: frame,
                            latency: share,
                            macs,
                        });
                    }
                }
            }
        }
        Ok(())
    }

    fn collect_outputs(graph: &Graph, state: &ExecState) -> Result<Vec<Tensor>> {
        graph
            .outputs()
            .iter()
            .map(|&id| {
                state.values[id.0]
                    .clone()
                    .ok_or_else(|| NnError::InvalidGraph("output never produced".into()))
            })
            .collect()
    }

    /// Runs the graph and returns its outputs.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidInput`] on interface mismatches and
    /// [`NnError::InvalidOp`] if a kernel rejects its operands.
    pub fn invoke(&mut self, inputs: &[Tensor]) -> Result<Vec<Tensor>> {
        self.invoke_observed(inputs, &mut NullObserver)
    }

    /// Runs the graph, reporting every executed node to `observer`.
    ///
    /// # Errors
    ///
    /// Same as [`Interpreter::invoke`].
    pub fn invoke_observed(
        &mut self,
        inputs: &[Tensor],
        observer: &mut dyn LayerObserver,
    ) -> Result<Vec<Tensor>> {
        self.check_inputs(inputs)?;
        let start = Instant::now();
        Self::stage_inputs(self.graph, &mut self.single, &[inputs])?;
        Self::execute_graph(self.graph, self.options, &mut self.single, observer, 0)?;
        let outputs = Self::collect_outputs(self.graph, &self.single)?;
        self.last_batched = None;
        self.last_stats = Some(InvokeStats {
            latency: start.elapsed(),
            peak_activation_bytes: self.single.plan.peak_bytes(),
            arena_bytes: self.single.plan.arena_bytes(),
            allocations: outputs.len(),
            batch: 1,
            arena_frames: 1,
        });
        Ok(outputs)
    }

    /// Runs the graph once over a stacked `batch` of input sets and returns
    /// one output set per frame, in order.
    ///
    /// Frames are stacked along the batch (leading) dimension and the whole
    /// graph executes a single time with batch-aware kernels over a
    /// preplanned arena; results are **bitwise-identical** to invoking each
    /// frame separately (the property suite pins this). Graphs that cannot
    /// stack frames (see [`Interpreter::is_batchable`]) — and batches whose
    /// samples carry differing quantization parameters — transparently fall
    /// back to per-frame execution.
    ///
    /// # Errors
    ///
    /// Same as [`Interpreter::invoke`], checked per sample.
    pub fn invoke_batch(&mut self, batch: &[&[Tensor]]) -> Result<Vec<Vec<Tensor>>> {
        self.invoke_batch_observed(batch, &mut NullObserver)
    }

    /// Like [`Interpreter::invoke_batch`], reporting per-frame layer records
    /// to `observer` ([`LayerRecord::batch`] carries the frame index).
    ///
    /// # Errors
    ///
    /// Same as [`Interpreter::invoke_batch`].
    pub fn invoke_batch_observed(
        &mut self,
        batch: &[&[Tensor]],
        observer: &mut dyn LayerObserver,
    ) -> Result<Vec<Vec<Tensor>>> {
        let frames = batch.len();
        if frames == 0 {
            return Ok(Vec::new());
        }
        for sample in batch {
            self.check_inputs(sample)?;
        }
        if frames == 1 || !self.batch_safe || !uniform_quant(batch) {
            return self.invoke_batch_sequential(batch, observer);
        }

        let index = match self.batched.iter().position(|s| s.batch == frames) {
            Some(i) => i,
            None => {
                self.batched.push(ExecState::new(self.graph, frames)?);
                self.batched.len() - 1
            }
        };
        let start = Instant::now();
        let state = &mut self.batched[index];
        Self::stage_inputs(self.graph, state, batch)?;
        Self::execute_graph(self.graph, self.options, state, observer, 0)?;

        let mut outputs = Vec::with_capacity(frames);
        let mut allocations = 0usize;
        for b in 0..frames {
            let mut per_frame = Vec::with_capacity(self.graph.outputs().len());
            for &id in self.graph.outputs() {
                let stacked = state.values[id.0]
                    .as_ref()
                    .ok_or_else(|| NnError::InvalidGraph("output never produced".into()))?;
                per_frame.push(frame_view(stacked, self.graph.tensor(id).shape(), b)?);
                allocations += 1;
            }
            outputs.push(per_frame);
        }
        self.last_batched = Some(frames);
        self.last_stats = Some(InvokeStats {
            latency: start.elapsed(),
            peak_activation_bytes: state.plan.peak_bytes(),
            arena_bytes: state.plan.arena_bytes(),
            allocations,
            batch: frames,
            arena_frames: frames,
        });
        Ok(outputs)
    }

    /// Per-frame fallback for graphs (or batches) that cannot stack: runs
    /// each sample through the single-frame arena, still reporting the frame
    /// index to the observer.
    fn invoke_batch_sequential(
        &mut self,
        batch: &[&[Tensor]],
        observer: &mut dyn LayerObserver,
    ) -> Result<Vec<Vec<Tensor>>> {
        let start = Instant::now();
        let mut outputs = Vec::with_capacity(batch.len());
        let mut allocations = 0usize;
        for (b, sample) in batch.iter().enumerate() {
            Self::stage_inputs(self.graph, &mut self.single, &[*sample])?;
            Self::execute_graph(self.graph, self.options, &mut self.single, observer, b)?;
            let outs = Self::collect_outputs(self.graph, &self.single)?;
            allocations += outs.len();
            outputs.push(outs);
        }
        self.last_batched = None;
        self.last_stats = Some(InvokeStats {
            latency: start.elapsed(),
            peak_activation_bytes: self.single.plan.peak_bytes(),
            arena_bytes: self.single.plan.arena_bytes(),
            allocations,
            batch: batch.len(),
            arena_frames: 1,
        });
        Ok(outputs)
    }

    /// Drops every cached batched arena (and its plan), returning the
    /// interpreter to its single-invoke memory footprint. Batched arenas
    /// are otherwise retained so repeated `invoke_batch` calls of the same
    /// size pay no replanning or reallocation.
    pub fn release_batched_arenas(&mut self) {
        self.batched.clear();
        self.last_batched = None;
    }

    /// The value of any tensor slot after the last invoke (useful for
    /// debugging intermediate activations by id). Arena slots are reused,
    /// not freed, so every intermediate remains readable until the next
    /// invoke; after a stacked batched invoke the value holds all frames.
    pub fn tensor_value(&self, id: TensorId) -> Option<&Tensor> {
        let state = self
            .last_batched
            .and_then(|n| self.batched.iter().find(|s| s.batch == n))
            .unwrap_or(&self.single);
        state.values.get(id.0).and_then(Option::as_ref).or_else(|| {
            self.graph
                .tensors()
                .get(id.0)
                .and_then(TensorDef::as_constant)
        })
    }
}

/// All samples in a batch must agree on input quantization for stacking to
/// preserve per-frame semantics.
fn uniform_quant(batch: &[&[Tensor]]) -> bool {
    let first = batch[0];
    batch[1..].iter().all(|sample| {
        sample
            .iter()
            .zip(first)
            .all(|(a, b)| a.quant() == b.quant())
    })
}

/// Whether stacking frames along the leading dimension preserves per-frame
/// semantics for every node of `graph`. The static analyzer re-derives
/// this verdict independently ([`crate::analysis::certify_batchable`]) and
/// cross-checks it against this function.
pub(crate) fn batch_safe(graph: &Graph) -> bool {
    let constant = |id: TensorId| graph.tensor(id).as_constant().is_some();
    // A rank-1 runtime tensor's leading dimension doubles as its feature
    // dimension, so scaling it changes row-based kernels' geometry (e.g.
    // softmax over a stacked vector would normalize across frames).
    if graph
        .tensors()
        .iter()
        .any(|def| def.as_constant().is_none() && def.shape().rank() < 2)
    {
        return false;
    }
    graph.nodes().iter().all(|node| {
        // Batched execution scales every runtime tensor's leading dimension;
        // a constant data operand would be left behind.
        if node.inputs.first().map(|&id| constant(id)).unwrap_or(true) {
            return false;
        }
        match &node.op {
            // Weights *and* bias must be baked in — a runtime-computed
            // operand past inputs[0] would need stacking the kernels don't
            // apply to it.
            OpKind::Conv2d { .. }
            | OpKind::DepthwiseConv2d { .. }
            | OpKind::FullyConnected { .. }
            | OpKind::MatMul { .. }
            | OpKind::Embedding => node.inputs[1..].iter().all(|&id| constant(id)),
            OpKind::BatchNorm { .. } | OpKind::LayerNorm { .. } => {
                node.inputs[1..].iter().all(|&id| constant(id))
            }
            OpKind::Concat { axis } => *axis != 0 && node.inputs.iter().all(|&id| !constant(id)),
            OpKind::Add { .. } => {
                // Constant rhs broadcasts by trailing suffix (frame-periodic
                // under stacking); runtime rhs must batch alongside the lhs.
                constant(node.inputs[1])
                    || graph.tensor(node.inputs[1]).shape() == graph.tensor(node.inputs[0]).shape()
            }
            OpKind::Mul => {
                let lhs = graph.tensor(node.inputs[0]).shape();
                let rhs = graph.tensor(node.inputs[1]).shape();
                if constant(node.inputs[1]) {
                    // Only scalar constants index identically after stacking.
                    rhs.num_elements() == 1
                } else {
                    // Same shape, or a [n,1,1,c] gate with matching batch.
                    rhs == lhs
                        || (lhs.rank() == 4
                            && rhs.rank() == 4
                            && rhs.dims()[0] == lhs.dims()[0]
                            && rhs.dims()[1] == 1
                            && rhs.dims()[2] == 1
                            && rhs.dims()[3] == lhs.dims()[3])
                }
            }
            _ => true,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::ops::{Activation, Padding};
    use mlexray_tensor::Shape;

    fn conv_graph() -> Graph {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", Shape::nhwc(1, 3, 3, 1));
        // Identity 1x1 kernel scaled by 2.
        let w = b.constant(
            "w",
            Tensor::from_f32(Shape::new(vec![1, 1, 1, 1]), vec![2.0]).unwrap(),
        );
        let y = b
            .conv2d("c", x, w, None, 1, Padding::Same, Activation::Relu)
            .unwrap();
        b.output(y);
        b.finish().unwrap()
    }

    #[test]
    fn conv_identity_scales() {
        let g = conv_graph();
        let mut interp = Interpreter::new(&g, InterpreterOptions::optimized()).unwrap();
        let input = Tensor::from_f32(
            Shape::nhwc(1, 3, 3, 1),
            vec![1.0, -1.0, 2.0, 0.5, 0.0, -3.0, 1.5, 2.5, -0.5],
        )
        .unwrap();
        let out = interp.invoke(&[input]).unwrap();
        let v = out[0].as_f32().unwrap();
        assert_eq!(v[0], 2.0);
        assert_eq!(v[1], 0.0, "ReLU clips negatives");
        assert_eq!(v[2], 4.0);
        assert!(interp.last_stats().unwrap().peak_activation_bytes > 0);
        assert!(interp.last_stats().unwrap().arena_bytes > 0);
    }

    #[test]
    fn invoke_stats_attribute_latency_per_frame() {
        let stats = InvokeStats {
            latency: Duration::from_millis(8),
            peak_activation_bytes: 0,
            arena_bytes: 0,
            allocations: 0,
            batch: 4,
            arena_frames: 4,
        };
        assert_eq!(stats.per_frame_latency(), Duration::from_millis(2));
        assert!((stats.frames_per_sec() - 500.0).abs() < 1e-6);
        // Degenerate batch of 0 must not divide by zero.
        let empty = InvokeStats { batch: 0, ..stats };
        assert_eq!(empty.per_frame_latency(), Duration::from_millis(8));
        let instant = InvokeStats {
            latency: Duration::ZERO,
            ..stats
        };
        assert_eq!(instant.frames_per_sec(), 0.0);
    }

    #[test]
    fn wrong_input_shape_rejected() {
        let g = conv_graph();
        let mut interp = Interpreter::new(&g, InterpreterOptions::optimized()).unwrap();
        let bad = Tensor::zeros(DType::F32, Shape::nhwc(1, 2, 2, 1));
        assert!(matches!(
            interp.invoke(&[bad]),
            Err(NnError::InvalidInput(_))
        ));
        assert!(matches!(interp.invoke(&[]), Err(NnError::InvalidInput(_))));
    }

    #[test]
    fn observer_sees_every_layer() {
        struct Count(Vec<String>);
        impl LayerObserver for Count {
            fn on_layer(&mut self, r: &LayerRecord<'_>) {
                self.0.push(format!("{}:{}:{}", r.index, r.name, r.batch));
            }
        }
        let g = conv_graph();
        let mut interp = Interpreter::new(&g, InterpreterOptions::optimized()).unwrap();
        let mut obs = Count(Vec::new());
        let x = Tensor::zeros(DType::F32, Shape::nhwc(1, 3, 3, 1));
        interp.invoke_observed(&[x], &mut obs).unwrap();
        assert_eq!(obs.0, vec!["0:c:0"]);
    }

    #[test]
    fn flavors_agree_on_small_float_conv() {
        let g = conv_graph();
        let x = Tensor::from_f32(
            Shape::nhwc(1, 3, 3, 1),
            vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9],
        )
        .unwrap();
        let mut opt = Interpreter::new(&g, InterpreterOptions::optimized()).unwrap();
        let mut reference = Interpreter::new(&g, InterpreterOptions::reference()).unwrap();
        let a = opt.invoke(std::slice::from_ref(&x)).unwrap();
        let b = reference.invoke(std::slice::from_ref(&x)).unwrap();
        for (u, v) in a[0].as_f32().unwrap().iter().zip(b[0].as_f32().unwrap()) {
            assert!((u - v).abs() < 1e-5);
        }
    }

    #[test]
    fn invoke_batch_matches_sequential_invokes() {
        let g = conv_graph();
        let mut interp = Interpreter::new(&g, InterpreterOptions::optimized()).unwrap();
        assert!(interp.is_batchable());
        let samples: Vec<Vec<Tensor>> = (0..4)
            .map(|i| {
                vec![Tensor::from_f32(
                    Shape::nhwc(1, 3, 3, 1),
                    (0..9).map(|j| (i * 9 + j) as f32 * 0.1 - 1.7).collect(),
                )
                .unwrap()]
            })
            .collect();
        let sequential: Vec<Vec<Tensor>> =
            samples.iter().map(|s| interp.invoke(s).unwrap()).collect();
        let refs: Vec<&[Tensor]> = samples.iter().map(Vec::as_slice).collect();
        let batched = interp.invoke_batch(&refs).unwrap();
        assert_eq!(batched, sequential);
        let stats = interp.last_stats().unwrap();
        assert_eq!(stats.batch, 4);
        assert_eq!(stats.allocations, 4);
    }

    #[test]
    fn batched_observer_reports_per_frame_records() {
        struct Frames(Vec<(usize, usize, f32)>);
        impl LayerObserver for Frames {
            fn on_layer(&mut self, r: &LayerRecord<'_>) {
                self.0
                    .push((r.index, r.batch, r.output.as_f32().unwrap()[0]));
            }
        }
        let g = conv_graph();
        let mut interp = Interpreter::new(&g, InterpreterOptions::optimized()).unwrap();
        let samples: Vec<Vec<Tensor>> = (0..3)
            .map(|i| vec![Tensor::filled_f32(Shape::nhwc(1, 3, 3, 1), i as f32)])
            .collect();
        let refs: Vec<&[Tensor]> = samples.iter().map(Vec::as_slice).collect();
        let mut obs = Frames(Vec::new());
        interp.invoke_batch_observed(&refs, &mut obs).unwrap();
        assert_eq!(obs.0.len(), 3, "one record per frame per node");
        for (b, record) in obs.0.iter().enumerate() {
            assert_eq!(record.1, b);
            assert_eq!(record.2, 2.0 * b as f32, "per-frame view holds frame data");
        }
    }

    #[test]
    fn allocations_are_independent_of_graph_depth() {
        let build = |depth: usize| {
            let mut b = GraphBuilder::new("chain");
            let mut x = b.input("x", Shape::nhwc(1, 4, 4, 2));
            for i in 0..depth {
                let w = b.constant(
                    format!("w{i}"),
                    Tensor::filled_f32(Shape::new(vec![2, 1, 1, 2]), 0.3),
                );
                x = b
                    .conv2d(
                        format!("c{i}"),
                        x,
                        w,
                        None,
                        1,
                        Padding::Same,
                        Activation::Relu,
                    )
                    .unwrap();
            }
            b.output(x);
            b.finish().unwrap()
        };
        let input = Tensor::filled_f32(Shape::nhwc(1, 4, 4, 2), 0.5);
        let mut counts = Vec::new();
        for depth in [2usize, 8, 32] {
            let g = build(depth);
            let mut interp = Interpreter::new(&g, InterpreterOptions::optimized()).unwrap();
            interp.invoke(std::slice::from_ref(&input)).unwrap();
            let first = interp.last_stats().unwrap().allocations;
            interp.invoke(std::slice::from_ref(&input)).unwrap();
            let second = interp.last_stats().unwrap().allocations;
            assert_eq!(first, second, "steady state from the first invoke");
            counts.push(first);
        }
        assert!(
            counts.windows(2).all(|w| w[0] == w[1]),
            "allocation count grew with depth: {counts:?}"
        );
    }

    #[test]
    fn arena_reuses_lifetime_disjoint_buffers() {
        let mut b = GraphBuilder::new("deep");
        let mut x = b.input("x", Shape::nhwc(1, 6, 6, 4));
        for i in 0..6 {
            let w = b.constant(
                format!("w{i}"),
                Tensor::filled_f32(Shape::new(vec![4, 1, 1, 4]), 0.2),
            );
            x = b
                .conv2d(
                    format!("c{i}"),
                    x,
                    w,
                    None,
                    1,
                    Padding::Same,
                    Activation::Relu,
                )
                .unwrap();
        }
        b.output(x);
        let g = b.finish().unwrap();
        let interp = Interpreter::new(&g, InterpreterOptions::optimized()).unwrap();
        let plan = interp.memory_plan();
        assert!(
            plan.arena_bytes() < plan.unshared_bytes(),
            "a 6-deep chain must not keep 6 live buffers"
        );
    }
}
