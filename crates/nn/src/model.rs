use std::fmt;
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::graph::Graph;
use crate::{NnError, Result};

/// Which stage of the deployment process a model artifact represents (§3.3):
/// the training checkpoint, the converted mobile FlatBuffer, or the
/// post-training fully-quantized model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelVariant {
    /// Training-pipeline checkpoint: unfused batch-norm, standalone
    /// activations, float weights.
    Checkpoint,
    /// Conversion output: batch-norm folded, activations fused, float
    /// weights — the "Mobile" bars of Fig. 5.
    MobileFloat,
    /// Post-training full-integer quantization — the "Mobile Quant" bars.
    Quantized,
}

impl ModelVariant {
    /// Label matching the paper's figure legends.
    pub fn label(self) -> &'static str {
        match self {
            ModelVariant::Checkpoint => "Reference",
            ModelVariant::MobileFloat => "Mobile",
            ModelVariant::Quantized => "Mobile Quant",
        }
    }
}

impl fmt::Display for ModelVariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A deployable model: a graph plus provenance metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Model {
    /// The executable dataflow graph.
    pub graph: Graph,
    /// Architecture family ("mobilenet_v2", "resnet50_v2", ...).
    pub family: String,
    /// Deployment stage of this artifact.
    pub variant: ModelVariant,
}

impl Model {
    /// Wraps a graph as a checkpoint-stage model.
    pub fn checkpoint(graph: Graph, family: impl Into<String>) -> Self {
        Model {
            graph,
            family: family.into(),
            variant: ModelVariant::Checkpoint,
        }
    }

    /// Display name, e.g. `mobilenet_v2 [Mobile Quant]`.
    pub fn display_name(&self) -> String {
        format!("{} [{}]", self.family, self.variant)
    }

    /// Serializes the model to JSON (weight caching for trained minis).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidGraph`] wrapping I/O or serialization
    /// failures.
    pub fn save_json(&self, path: &Path) -> Result<()> {
        let json = serde_json::to_string(self)
            .map_err(|e| NnError::InvalidGraph(format!("serialize: {e}")))?;
        std::fs::write(path, json).map_err(|e| NnError::InvalidGraph(format!("write: {e}")))
    }

    /// Loads a model serialized by [`Model::save_json`].
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidGraph`] wrapping I/O or deserialization
    /// failures, and re-validates the graph.
    pub fn load_json(path: &Path) -> Result<Self> {
        let data = std::fs::read_to_string(path)
            .map_err(|e| NnError::InvalidGraph(format!("read: {e}")))?;
        let model: Model = serde_json::from_str(&data)
            .map_err(|e| NnError::InvalidGraph(format!("deserialize: {e}")))?;
        model.graph.validate()?;
        Ok(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use mlexray_tensor::Shape;

    fn tiny() -> Model {
        let mut b = GraphBuilder::new("tiny");
        let x = b.input("x", Shape::matrix(1, 4));
        let y = b.softmax("s", x).unwrap();
        b.output(y);
        Model::checkpoint(b.finish().unwrap(), "tiny")
    }

    #[test]
    fn labels_match_figures() {
        assert_eq!(ModelVariant::Checkpoint.label(), "Reference");
        assert_eq!(ModelVariant::MobileFloat.label(), "Mobile");
        assert_eq!(ModelVariant::Quantized.label(), "Mobile Quant");
    }

    #[test]
    fn display_name_includes_variant() {
        assert_eq!(tiny().display_name(), "tiny [Reference]");
    }

    #[test]
    fn json_roundtrip() {
        let m = tiny();
        let dir = std::env::temp_dir().join("mlexray-model-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny.json");
        m.save_json(&path).unwrap();
        let back = Model::load_json(&path).unwrap();
        assert_eq!(m, back);
        std::fs::remove_file(&path).ok();
    }
}
