//! Post-training full-integer quantization (§2, Eqns. 1–2): calibration over
//! a representative dataset, symmetric i8 weights (per-channel or
//! per-tensor), asymmetric u8 activations, i32 biases.

use std::collections::HashMap;

use mlexray_tensor::{DType, MinMaxObserver, QuantParams, Shape, Tensor};

use crate::graph::{Graph, GraphBuilder, TensorId};
use crate::interpreter::{Interpreter, InterpreterOptions};
use crate::model::{Model, ModelVariant};
use crate::ops::OpKind;
use crate::{NnError, Result};

/// Per-tensor value ranges observed while replaying a representative dataset
/// through the float model.
#[derive(Debug, Clone, Default)]
pub struct Calibration {
    ranges: Vec<MinMaxObserver>,
    samples: usize,
}

impl Calibration {
    /// Number of calibration samples replayed.
    pub fn sample_count(&self) -> usize {
        self.samples
    }

    /// Observed range of a tensor slot.
    pub fn range(&self, id: TensorId) -> Option<(f32, f32)> {
        self.ranges.get(id.0).and_then(MinMaxObserver::range)
    }

    fn u8_params(&self, id: TensorId) -> Result<QuantParams> {
        let (min, max) = self.range(id).ok_or_else(|| {
            NnError::Quantization(format!("tensor {} was never calibrated", id.0))
        })?;
        Ok(QuantParams::from_min_max_u8(min, max))
    }
}

/// Replays `samples` through the float graph, recording the min/max of every
/// activation — the scale-calibration step whose dataset-quality pitfalls §2
/// describes (outliers inflate scales; tiny datasets clip real values).
///
/// # Errors
///
/// Propagates interpreter errors; requires at least one sample.
pub fn calibrate<'a>(
    graph: &Graph,
    samples: impl IntoIterator<Item = &'a [Tensor]>,
) -> Result<Calibration> {
    let mut interp = Interpreter::new(graph, InterpreterOptions::optimized())?;
    let mut ranges = vec![MinMaxObserver::new(); graph.tensors().len()];
    let mut count = 0usize;
    for sample in samples {
        for (&id, t) in graph.inputs().iter().zip(sample) {
            if t.dtype() == DType::F32 {
                ranges[id.0].observe(t.as_f32()?);
            }
        }
        interp.invoke(sample)?;
        for node in graph.nodes() {
            if let Some(v) = interp.tensor_value(node.output) {
                if v.dtype() == DType::F32 {
                    ranges[node.output.0].observe(v.as_f32()?);
                }
            }
        }
        count += 1;
    }
    if count == 0 {
        return Err(NnError::Quantization(
            "calibration requires at least one sample".into(),
        ));
    }
    Ok(Calibration {
        ranges,
        samples: count,
    })
}

/// Options controlling weight quantization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuantizationOptions {
    /// Per-channel symmetric weight scales (TFLite default for conv). §2:
    /// per-tensor scales can squash whole channels to zero after batch-norm
    /// folding; both modes are implemented so the ablation can show it.
    pub per_channel_weights: bool,
}

impl Default for QuantizationOptions {
    fn default() -> Self {
        QuantizationOptions {
            per_channel_weights: true,
        }
    }
}

/// Per-channel `(min, max)` ranges of a weight tensor along `axis`.
fn channel_ranges(t: &Tensor, axis: usize) -> Result<Vec<(f32, f32)>> {
    let data = t.as_f32()?;
    let dims = t.shape().dims();
    let stride: usize = dims[axis + 1..].iter().product::<usize>().max(1);
    let n = dims[axis];
    let mut ranges = vec![(f32::INFINITY, f32::NEG_INFINITY); n];
    for (i, &v) in data.iter().enumerate() {
        let c = (i / stride) % n;
        ranges[c].0 = ranges[c].0.min(v);
        ranges[c].1 = ranges[c].1.max(v);
    }
    Ok(ranges)
}

fn weight_axis(op: &OpKind) -> usize {
    match op {
        OpKind::DepthwiseConv2d { .. } => 3,
        _ => 0,
    }
}

/// Quantizes a weight constant symmetrically to i8.
fn quantize_weights(t: &Tensor, axis: usize, per_channel: bool) -> Result<Tensor> {
    let params = if per_channel {
        QuantParams::symmetric_i8_per_channel(&channel_ranges(t, axis)?, axis)?
    } else {
        let data = t.as_f32()?;
        let (mut lo, mut hi) = (0.0f32, 0.0f32);
        for &v in data {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        QuantParams::symmetric_i8(lo, hi)
    };
    Ok(t.quantize_to_i8(&params)?)
}

/// Quantizes a float bias vector to i32 with per-channel scale `s_in * s_w_c`.
fn quantize_bias(bias: &Tensor, s_in: f32, wq: &QuantParams) -> Result<Tensor> {
    let data = bias.as_f32()?;
    let q: Vec<i32> = data
        .iter()
        .enumerate()
        .map(|(c, &v)| {
            let s = s_in * wq.for_channel(c).0;
            (v / s).round() as i32
        })
        .collect();
    Ok(Tensor::from_i32(Shape::vector(q.len()), q, None)?)
}

fn scalar_params(q: &QuantParams) -> (f32, i32) {
    q.scalar()
}

/// Converts a calibrated float model into a fully-integer-quantized model:
/// `Quantize` boundary at each input, u8 activations with calibrated ranges,
/// symmetric i8 weights, i32 biases, and a `Dequantize` boundary before
/// softmax and at every quantized output.
///
/// # Errors
///
/// Returns [`NnError::Quantization`] for uncalibrated tensors or ops with no
/// quantized kernel (batch-norm must be folded by conversion first).
///
/// # Example
///
/// ```no_run
/// use mlexray_nn::{calibrate, quantize_model, Model, QuantizationOptions};
/// use mlexray_tensor::Tensor;
/// # fn get_mobile() -> Model { unimplemented!() }
/// # fn rep_dataset() -> Vec<Vec<Tensor>> { unimplemented!() }
/// let mobile = get_mobile();
/// let samples = rep_dataset();
/// let calib = calibrate(&mobile.graph, samples.iter().map(Vec::as_slice))?;
/// let quant = quantize_model(&mobile, &calib, QuantizationOptions::default())?;
/// # Ok::<(), mlexray_nn::NnError>(())
/// ```
pub fn quantize_model(
    model: &Model,
    calib: &Calibration,
    options: QuantizationOptions,
) -> Result<Model> {
    let graph = &model.graph;
    let mut b = GraphBuilder::new(format!("{}_int8", graph.name()));
    // Old tensor id -> new tensor id (activations and inputs).
    let mut map: HashMap<usize, TensorId> = HashMap::new();
    // Quant params assigned to mapped (u8) tensors.
    let mut qparams: HashMap<usize, QuantParams> = HashMap::new();

    for &in_id in graph.inputs() {
        let def = graph.tensor(in_id);
        if def.dtype() != DType::F32 {
            return Err(NnError::Quantization(format!(
                "input '{}' is not float; only float graphs can be quantized",
                def.name()
            )));
        }
        let f = b.input(def.name().to_string(), def.shape().clone());
        let params = calib.u8_params(in_id)?;
        let q = b.push_node(
            format!("{}_quantize", def.name()),
            OpKind::Quantize,
            vec![f],
            def.shape().clone(),
            DType::U8,
            Some(params.clone()),
        );
        map.insert(in_id.0, q);
        qparams.insert(q.0, params);
    }

    let mapped = |map: &HashMap<usize, TensorId>, id: TensorId| -> Result<TensorId> {
        map.get(&id.0).copied().ok_or_else(|| {
            NnError::Quantization(format!("tensor {} has no quantized mapping", id.0))
        })
    };

    for node in graph.nodes() {
        let out_def = graph.tensor(node.output);
        match &node.op {
            OpKind::Conv2d { .. }
            | OpKind::DepthwiseConv2d { .. }
            | OpKind::FullyConnected { .. } => {
                let x = mapped(&map, node.inputs[0])?;
                let w_const = graph
                    .tensor(node.inputs[1])
                    .as_constant()
                    .ok_or_else(|| NnError::Quantization("weights must be constant".into()))?;
                let axis = weight_axis(&node.op);
                let wq = quantize_weights(w_const, axis, options.per_channel_weights)?;
                let wq_params = wq.quant().cloned().expect("quantized weights carry params");
                let w = b.constant(format!("{}:wq", node.name), wq);
                let mut inputs = vec![x, w];
                if let Some(&b_id) = node.inputs.get(2) {
                    let bias_const = graph
                        .tensor(b_id)
                        .as_constant()
                        .ok_or_else(|| NnError::Quantization("bias must be constant".into()))?;
                    let (s_in, _) = scalar_params(
                        qparams
                            .get(&x.0)
                            .ok_or_else(|| NnError::Quantization("input params missing".into()))?,
                    );
                    let bq = quantize_bias(bias_const, s_in, &wq_params)?;
                    inputs.push(b.constant(format!("{}:bq", node.name), bq));
                }
                let params = calib.u8_params(node.output)?;
                let out = b.push_node(
                    node.name.clone(),
                    node.op.clone(),
                    inputs,
                    out_def.shape().clone(),
                    DType::U8,
                    Some(params.clone()),
                );
                map.insert(node.output.0, out);
                qparams.insert(out.0, params);
            }
            OpKind::Softmax => {
                let x = mapped(&map, node.inputs[0])?;
                let in_shape = out_def.shape().clone();
                let d = b.push_node(
                    format!("{}_dequantize", node.name),
                    OpKind::Dequantize,
                    vec![x],
                    in_shape.clone(),
                    DType::F32,
                    None,
                );
                let s = b.push_node(
                    node.name.clone(),
                    OpKind::Softmax,
                    vec![d],
                    in_shape,
                    DType::F32,
                    None,
                );
                map.insert(node.output.0, s);
            }
            OpKind::AveragePool2d { .. }
            | OpKind::MaxPool2d { .. }
            | OpKind::Mean
            | OpKind::Pad { .. }
            | OpKind::Reshape { .. }
            | OpKind::Act(_) => {
                let x = mapped(&map, node.inputs[0])?;
                let params = calib.u8_params(node.output)?;
                let out = b.push_node(
                    node.name.clone(),
                    node.op.clone(),
                    vec![x],
                    out_def.shape().clone(),
                    DType::U8,
                    Some(params.clone()),
                );
                map.insert(node.output.0, out);
                qparams.insert(out.0, params);
            }
            OpKind::Add { .. } | OpKind::Mul => {
                let x = mapped(&map, node.inputs[0])?;
                // The rhs may be an activation or a (rare) float constant
                // such as an attention scale; constants are quantized inline.
                let y = match map.get(&node.inputs[1].0) {
                    Some(&id) => id,
                    None => {
                        let c = graph
                            .tensor(node.inputs[1])
                            .as_constant()
                            .ok_or_else(|| NnError::Quantization("rhs missing mapping".into()))?;
                        let data = c.as_f32()?;
                        let (mut lo, mut hi) = (0.0f32, 0.0f32);
                        for &v in data {
                            lo = lo.min(v);
                            hi = hi.max(v);
                        }
                        let p = QuantParams::from_min_max_u8(lo, hi);
                        let qc = c.quantize_to_u8(&p)?;
                        b.constant(format!("{}:rhs_q", node.name), qc)
                    }
                };
                let params = calib.u8_params(node.output)?;
                let out = b.push_node(
                    node.name.clone(),
                    node.op.clone(),
                    vec![x, y],
                    out_def.shape().clone(),
                    DType::U8,
                    Some(params.clone()),
                );
                map.insert(node.output.0, out);
                qparams.insert(out.0, params);
            }
            OpKind::Concat { .. } => {
                let inputs = node
                    .inputs
                    .iter()
                    .map(|&id| mapped(&map, id))
                    .collect::<Result<Vec<_>>>()?;
                let params = calib.u8_params(node.output)?;
                let out = b.push_node(
                    node.name.clone(),
                    node.op.clone(),
                    inputs,
                    out_def.shape().clone(),
                    DType::U8,
                    Some(params.clone()),
                );
                map.insert(node.output.0, out);
                qparams.insert(out.0, params);
            }
            other => {
                return Err(NnError::Quantization(format!(
                    "op {} has no quantized kernel (convert the model first)",
                    other.type_label()
                )));
            }
        }
    }

    for &out_id in graph.outputs() {
        let new_id = mapped(&map, out_id)?;
        let final_id = if b.dtype_of(new_id) == DType::U8 {
            let shape = b.shape_of(new_id).clone();
            b.push_node(
                format!("{}_output_dequantize", graph.tensor(out_id).name()),
                OpKind::Dequantize,
                vec![new_id],
                shape,
                DType::F32,
                None,
            )
        } else {
            new_id
        };
        b.output(final_id);
    }

    let graph = b.finish()?;
    Ok(Model {
        graph,
        family: model.family.clone(),
        variant: ModelVariant::Quantized,
    })
}

/// Convenience accessor: the quantization parameters the quantizer assigned
/// to a node's output in a quantized graph, if any.
pub fn output_params(graph: &Graph, node_name: &str) -> Option<QuantParams> {
    graph
        .node_by_name(node_name)
        .and_then(|(_, n)| graph.tensor(n.output).quant().cloned())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::interpreter::{Interpreter, InterpreterOptions};
    use crate::ops::{Activation, Padding};
    use mlexray_tensor::Shape;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// A small conv -> mean -> fc -> softmax float model.
    fn float_model(seed: u64) -> Model {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut b = GraphBuilder::new("m");
        let x = b.input("x", Shape::nhwc(1, 6, 6, 3));
        let w1 = b.constant(
            "w1",
            mlexray_tensor::he_normal(Shape::new(vec![8, 3, 3, 3]), 27, &mut rng).unwrap(),
        );
        let c1 = b
            .conv2d("conv1", x, w1, None, 1, Padding::Same, Activation::Relu6)
            .unwrap();
        let m = b.mean("gap", c1).unwrap();
        let w2 = b.constant(
            "w2",
            mlexray_tensor::he_normal(Shape::matrix(4, 8), 8, &mut rng).unwrap(),
        );
        let bias = b.constant(
            "b2",
            Tensor::from_f32(Shape::vector(4), vec![0.1, -0.1, 0.2, 0.0]).unwrap(),
        );
        let fc = b
            .fully_connected("fc", m, w2, Some(bias), Activation::None)
            .unwrap();
        let sm = b.softmax("softmax", fc).unwrap();
        b.output(sm);
        Model {
            graph: b.finish().unwrap(),
            family: "test".into(),
            variant: ModelVariant::MobileFloat,
        }
    }

    fn samples(seed: u64, n: usize) -> Vec<Vec<Tensor>> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let data: Vec<f32> = (0..108).map(|_| rng.gen_range(-1.0..1.0)).collect();
                vec![Tensor::from_f32(Shape::nhwc(1, 6, 6, 3), data).unwrap()]
            })
            .collect()
    }

    #[test]
    fn calibration_covers_all_activations() {
        let m = float_model(1);
        let s = samples(2, 4);
        let calib = calibrate(&m.graph, s.iter().map(Vec::as_slice)).unwrap();
        assert_eq!(calib.sample_count(), 4);
        for node in m.graph.nodes() {
            assert!(calib.range(node.output).is_some(), "node {}", node.name);
        }
        assert!(calibrate(&m.graph, std::iter::empty()).is_err());
    }

    #[test]
    fn quantized_model_tracks_float_model() {
        let m = float_model(1);
        let s = samples(2, 16);
        let calib = calibrate(&m.graph, s.iter().map(Vec::as_slice)).unwrap();
        let q = quantize_model(&m, &calib, QuantizationOptions::default()).unwrap();
        assert_eq!(q.variant, ModelVariant::Quantized);

        let mut fi = Interpreter::new(&m.graph, InterpreterOptions::optimized()).unwrap();
        let mut qi = Interpreter::new(&q.graph, InterpreterOptions::optimized()).unwrap();
        let mut max_err = 0.0f32;
        for sample in samples(7, 8) {
            let a = fi.invoke(&sample).unwrap();
            let b = qi.invoke(&sample).unwrap();
            for (u, v) in a[0].as_f32().unwrap().iter().zip(b[0].as_f32().unwrap()) {
                max_err = max_err.max((u - v).abs());
            }
        }
        assert!(
            max_err < 0.12,
            "softmax outputs should track closely, err {max_err}"
        );
    }

    #[test]
    fn per_tensor_mode_also_runs() {
        let m = float_model(1);
        let s = samples(2, 8);
        let calib = calibrate(&m.graph, s.iter().map(Vec::as_slice)).unwrap();
        let q = quantize_model(
            &m,
            &calib,
            QuantizationOptions {
                per_channel_weights: false,
            },
        )
        .unwrap();
        let mut qi = Interpreter::new(&q.graph, InterpreterOptions::optimized()).unwrap();
        let out = qi.invoke(&samples(3, 1)[0]).unwrap();
        let p: f32 = out[0].as_f32().unwrap().iter().sum();
        assert!((p - 1.0).abs() < 1e-3);
    }

    #[test]
    fn checkpoint_with_bn_rejected() {
        // Graphs containing BatchNorm cannot be quantized directly.
        let mut rng = SmallRng::seed_from_u64(4);
        let mut b = GraphBuilder::new("bn");
        let x = b.input("x", Shape::nhwc(1, 4, 4, 2));
        let w = b.constant(
            "w",
            mlexray_tensor::he_normal(Shape::new(vec![2, 1, 1, 2]), 2, &mut rng).unwrap(),
        );
        let c = b
            .conv2d("c", x, w, None, 1, Padding::Same, Activation::None)
            .unwrap();
        let ones = Tensor::from_f32(Shape::vector(2), vec![1.0, 1.0]).unwrap();
        let g = b.constant("g", ones.clone());
        let be = b.constant("be", ones.clone());
        let me = b.constant("me", ones.clone());
        let va = b.constant("va", ones);
        let bn = b.batch_norm("bn", c, g, be, me, va, 1e-3).unwrap();
        b.output(bn);
        let model = Model {
            graph: b.finish().unwrap(),
            family: "bn".into(),
            variant: ModelVariant::MobileFloat,
        };
        let s = samples(2, 2);
        // Samples have the wrong shape for this graph; build matching ones.
        let mut rng = SmallRng::seed_from_u64(5);
        let s2: Vec<Vec<Tensor>> = (0..2)
            .map(|_| {
                let data: Vec<f32> = (0..32).map(|_| rng.gen_range(-1.0..1.0)).collect();
                vec![Tensor::from_f32(Shape::nhwc(1, 4, 4, 2), data).unwrap()]
            })
            .collect();
        let _ = s;
        let calib = calibrate(&model.graph, s2.iter().map(Vec::as_slice)).unwrap();
        let err = quantize_model(&model, &calib, QuantizationOptions::default());
        assert!(matches!(err, Err(NnError::Quantization(_))));
    }
}
