use serde::{Deserialize, Serialize};

use mlexray_tensor::{DType, QuantParams, Shape, Tensor};

use crate::ops::{conv_out_size, Activation, OpKind, Padding};
use crate::{NnError, Result};

/// Identifier of a tensor slot within a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TensorId(pub usize);

/// Identifier of a node within a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NodeId(pub usize);

/// A tensor slot: graph input, baked-in constant (weights) or runtime
/// activation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TensorDef {
    /// Fed by the caller at invoke time.
    Input {
        /// Display name.
        name: String,
        /// Expected shape.
        shape: Shape,
        /// Expected dtype.
        dtype: DType,
        /// Quantization parameters for quantized inputs.
        quant: Option<QuantParams>,
    },
    /// Weights/bias baked into the model.
    Constant {
        /// Display name.
        name: String,
        /// The constant value.
        tensor: Tensor,
    },
    /// Produced by a node at runtime.
    Activation {
        /// Display name.
        name: String,
        /// Inferred shape.
        shape: Shape,
        /// Runtime dtype.
        dtype: DType,
        /// Quantization parameters for quantized activations.
        quant: Option<QuantParams>,
    },
}

impl TensorDef {
    /// Display name of the slot.
    pub fn name(&self) -> &str {
        match self {
            TensorDef::Input { name, .. }
            | TensorDef::Constant { name, .. }
            | TensorDef::Activation { name, .. } => name,
        }
    }

    /// Shape of the slot.
    pub fn shape(&self) -> &Shape {
        match self {
            TensorDef::Input { shape, .. } | TensorDef::Activation { shape, .. } => shape,
            TensorDef::Constant { tensor, .. } => tensor.shape(),
        }
    }

    /// Dtype of the slot.
    pub fn dtype(&self) -> DType {
        match self {
            TensorDef::Input { dtype, .. } | TensorDef::Activation { dtype, .. } => *dtype,
            TensorDef::Constant { tensor, .. } => tensor.dtype(),
        }
    }

    /// Quantization parameters of the slot, if any.
    pub fn quant(&self) -> Option<&QuantParams> {
        match self {
            TensorDef::Input { quant, .. } | TensorDef::Activation { quant, .. } => quant.as_ref(),
            TensorDef::Constant { tensor, .. } => tensor.quant(),
        }
    }

    /// The constant tensor, when this slot is a constant.
    pub fn as_constant(&self) -> Option<&Tensor> {
        match self {
            TensorDef::Constant { tensor, .. } => Some(tensor),
            _ => None,
        }
    }
}

/// One operation in the dataflow graph. Nodes are stored in topological
/// (execution) order and produce exactly one output tensor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Display name ("conv1", "block3/se/pool", ...).
    pub name: String,
    /// The operation.
    pub op: OpKind,
    /// Input tensor slots (data inputs first, then weights/bias).
    pub inputs: Vec<TensorId>,
    /// Output tensor slot.
    pub output: TensorId,
}

/// An immutable dataflow graph: tensors, topologically ordered nodes, and
/// designated input/output slots.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Graph {
    name: String,
    tensors: Vec<TensorDef>,
    nodes: Vec<Node>,
    inputs: Vec<TensorId>,
    outputs: Vec<TensorId>,
}

impl Graph {
    /// Graph display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All tensor slots.
    pub fn tensors(&self) -> &[TensorDef] {
        &self.tensors
    }

    /// The slot behind `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range (ids are only minted by the builder).
    pub fn tensor(&self, id: TensorId) -> &TensorDef {
        &self.tensors[id.0]
    }

    /// Nodes in execution order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Graph input slots.
    pub fn inputs(&self) -> &[TensorId] {
        &self.inputs
    }

    /// Graph output slots.
    pub fn outputs(&self) -> &[TensorId] {
        &self.outputs
    }

    /// Number of nodes ("layers" in the paper's Tables 3/5 counting).
    pub fn layer_count(&self) -> usize {
        self.nodes.len()
    }

    /// Total number of weight elements across all constants.
    pub fn param_count(&self) -> usize {
        self.tensors
            .iter()
            .filter_map(TensorDef::as_constant)
            .map(Tensor::len)
            .sum()
    }

    /// Total byte size of all constants (the model file footprint).
    pub fn param_bytes(&self) -> usize {
        self.tensors
            .iter()
            .filter_map(TensorDef::as_constant)
            .map(Tensor::byte_size)
            .sum()
    }

    /// Multiply-accumulate estimate for a node, used by the device simulator's
    /// latency cost model.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node_macs(&self, id: NodeId) -> u64 {
        let node = &self.nodes[id.0];
        let out_elems = self.tensor(node.output).shape().num_elements() as u64;
        match &node.op {
            OpKind::Conv2d { .. } => {
                let w = self.tensor(node.inputs[1]).shape();
                out_elems * (w.dims()[1] * w.dims()[2] * w.dims()[3]) as u64
            }
            OpKind::DepthwiseConv2d { .. } => {
                let w = self.tensor(node.inputs[1]).shape();
                out_elems * (w.dims()[1] * w.dims()[2]) as u64
            }
            OpKind::FullyConnected { .. } => {
                let w = self.tensor(node.inputs[1]).shape();
                out_elems * w.dims()[1] as u64
            }
            OpKind::MatMul { .. } => {
                let a = self.tensor(node.inputs[0]).shape();
                out_elems * a.dims()[a.rank() - 1] as u64
            }
            OpKind::AveragePool2d { pool_h, pool_w, .. }
            | OpKind::MaxPool2d { pool_h, pool_w, .. } => out_elems * (pool_h * pool_w) as u64,
            OpKind::Mean => self.tensor(node.inputs[0]).shape().num_elements() as u64,
            _ => out_elems,
        }
    }

    /// Sum of [`Graph::node_macs`] over all nodes.
    pub fn total_macs(&self) -> u64 {
        (0..self.nodes.len())
            .map(|i| self.node_macs(NodeId(i)))
            .sum()
    }

    /// Finds a node by display name.
    pub fn node_by_name(&self, name: &str) -> Option<(NodeId, &Node)> {
        self.nodes
            .iter()
            .enumerate()
            .find(|(_, n)| n.name == name)
            .map(|(i, n)| (NodeId(i), n))
    }

    /// Mutable node access for in-crate rewrite passes (conversion).
    pub(crate) fn nodes_mut(&mut self) -> &mut Vec<Node> {
        &mut self.nodes
    }

    /// Replaces the value of a constant slot (weight updates during training,
    /// loading pre-trained weights). The new tensor must match the old
    /// tensor's shape and dtype.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidGraph`] if `id` is not a constant or the
    /// replacement is shape/dtype-incompatible.
    pub fn set_constant(&mut self, id: TensorId, tensor: Tensor) -> Result<()> {
        let def = self
            .tensors
            .get_mut(id.0)
            .ok_or_else(|| NnError::InvalidGraph(format!("no tensor slot {}", id.0)))?;
        match def {
            TensorDef::Constant { name, tensor: old } => {
                if old.shape() != tensor.shape() || old.dtype() != tensor.dtype() {
                    return Err(NnError::InvalidGraph(format!(
                        "constant '{name}' replacement must keep shape {} and dtype {:?}",
                        old.shape(),
                        old.dtype()
                    )));
                }
                *old = tensor;
                Ok(())
            }
            other => Err(NnError::InvalidGraph(format!(
                "tensor '{}' is not a constant",
                other.name()
            ))),
        }
    }

    /// Splits every fused activation into a standalone `Act` node, leaving
    /// the producing op linear. Training uses this view so pre-activation
    /// values materialize as node outputs (needed for exact gradients of
    /// non-monotonic activations like hard-swish). Constant slot ids are
    /// preserved, so weights trained on the split graph can be copied back
    /// to the original by id.
    pub fn split_fused_activations(&self) -> Graph {
        let mut g = self.clone();
        let mut new_nodes: Vec<Node> = Vec::with_capacity(g.nodes.len());
        let old_nodes = std::mem::take(&mut g.nodes);
        for mut node in old_nodes {
            let act = node.op.fused_activation().unwrap_or(Activation::None);
            if act == Activation::None {
                new_nodes.push(node);
                continue;
            }
            // Rewrite the op to be linear, writing to a fresh pre-act slot.
            match &mut node.op {
                OpKind::Conv2d { activation, .. }
                | OpKind::DepthwiseConv2d { activation, .. }
                | OpKind::FullyConnected { activation }
                | OpKind::Add { activation } => *activation = Activation::None,
                _ => {}
            }
            let final_out = node.output;
            let out_def = &g.tensors[final_out.0];
            let pre = TensorDef::Activation {
                name: format!("{}:pre_act", node.name),
                shape: out_def.shape().clone(),
                dtype: out_def.dtype(),
                quant: out_def.quant().cloned(),
            };
            g.tensors.push(pre);
            let pre_id = TensorId(g.tensors.len() - 1);
            node.output = pre_id;
            let act_node = Node {
                name: format!("{}:act", node.name),
                op: OpKind::Act(act),
                inputs: vec![pre_id],
                output: final_out,
            };
            new_nodes.push(node);
            new_nodes.push(act_node);
        }
        g.nodes = new_nodes;
        g
    }

    /// Mutable tensor-slot access for in-crate rewrite passes.
    pub(crate) fn tensors_mut(&mut self) -> &mut Vec<TensorDef> {
        &mut self.tensors
    }

    /// Renames the graph (used when conversion derives a new variant).
    pub(crate) fn set_name(&mut self, name: String) {
        self.name = name;
    }

    /// Checks structural invariants by delegating to the static analyzer's
    /// structure pass (`EX001`–`EX009`): non-empty interface, slot indices
    /// in range, topological order (every node input defined before use),
    /// single writer per activation, nodes writing only activation slots,
    /// every graph output produced by a node, and unique tensor/node names.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidGraph`] describing the first violation
    /// (the full list is available from [`crate::analysis::analyze`]).
    pub fn validate(&self) -> Result<()> {
        crate::analysis::structural_error(self)
    }

    /// Drops every tensor slot no node, graph input or graph output
    /// references, remapping ids. In-crate rewrite passes (conversion,
    /// fusion) orphan slots when they rewire producers; compacting keeps
    /// the hygiene lints meaningful on derived graphs.
    pub(crate) fn compact_tensors(&mut self) {
        let mut used = vec![false; self.tensors.len()];
        let mut mark = |id: &TensorId| {
            if id.0 < used.len() {
                used[id.0] = true;
            }
        };
        self.inputs.iter().for_each(&mut mark);
        self.outputs.iter().for_each(&mut mark);
        for node in &self.nodes {
            node.inputs.iter().for_each(&mut mark);
            mark(&node.output);
        }
        if used.iter().all(|&u| u) {
            return;
        }
        let mut remap = vec![usize::MAX; self.tensors.len()];
        let mut kept = Vec::with_capacity(self.tensors.len());
        for (i, def) in std::mem::take(&mut self.tensors).into_iter().enumerate() {
            if used[i] {
                remap[i] = kept.len();
                kept.push(def);
            }
        }
        self.tensors = kept;
        let apply = |id: &mut TensorId| id.0 = remap[id.0];
        self.inputs.iter_mut().for_each(apply);
        self.outputs.iter_mut().for_each(apply);
        for node in &mut self.nodes {
            node.inputs.iter_mut().for_each(apply);
            apply(&mut node.output);
        }
    }
}

/// Incremental [`Graph`] constructor with builder-side shape inference.
///
/// # Example
///
/// ```
/// use mlexray_nn::{GraphBuilder, Activation, Padding};
/// use mlexray_tensor::{Shape, Tensor};
///
/// let mut b = GraphBuilder::new("tiny");
/// let x = b.input("image", Shape::nhwc(1, 4, 4, 3));
/// let w = b.constant("w", Tensor::zeros(mlexray_tensor::DType::F32, Shape::new(vec![8, 3, 3, 3])));
/// let y = b.conv2d("conv", x, w, None, 1, Padding::Same, Activation::Relu6)?;
/// b.output(y);
/// let graph = b.finish()?;
/// assert_eq!(graph.layer_count(), 1);
/// # Ok::<(), mlexray_nn::NnError>(())
/// ```
#[derive(Debug)]
pub struct GraphBuilder {
    graph: Graph,
}

impl GraphBuilder {
    /// Starts building a graph with the given display name.
    pub fn new(name: impl Into<String>) -> Self {
        GraphBuilder {
            graph: Graph {
                name: name.into(),
                tensors: Vec::new(),
                nodes: Vec::new(),
                inputs: Vec::new(),
                outputs: Vec::new(),
            },
        }
    }

    fn push_tensor(&mut self, def: TensorDef) -> TensorId {
        self.graph.tensors.push(def);
        TensorId(self.graph.tensors.len() - 1)
    }

    /// Shape of an already-registered tensor.
    pub fn shape_of(&self, id: TensorId) -> &Shape {
        self.graph.tensor(id).shape()
    }

    /// Dtype of an already-registered tensor.
    pub fn dtype_of(&self, id: TensorId) -> DType {
        self.graph.tensor(id).dtype()
    }

    /// Registers a float graph input.
    pub fn input(&mut self, name: impl Into<String>, shape: Shape) -> TensorId {
        self.input_typed(name, shape, DType::F32, None)
    }

    /// Registers a graph input with explicit dtype and quantization.
    pub fn input_typed(
        &mut self,
        name: impl Into<String>,
        shape: Shape,
        dtype: DType,
        quant: Option<QuantParams>,
    ) -> TensorId {
        let id = self.push_tensor(TensorDef::Input {
            name: name.into(),
            shape,
            dtype,
            quant,
        });
        self.graph.inputs.push(id);
        id
    }

    /// Registers a constant (weights/bias) tensor.
    pub fn constant(&mut self, name: impl Into<String>, tensor: Tensor) -> TensorId {
        self.push_tensor(TensorDef::Constant {
            name: name.into(),
            tensor,
        })
    }

    /// Marks a tensor as a graph output.
    pub fn output(&mut self, id: TensorId) {
        self.graph.outputs.push(id);
    }

    /// Low-level node insertion with an explicit output definition; used by
    /// the conversion and quantization passes, which know the output dtype
    /// and quantization they want.
    pub fn push_node(
        &mut self,
        name: impl Into<String>,
        op: OpKind,
        inputs: Vec<TensorId>,
        out_shape: Shape,
        out_dtype: DType,
        out_quant: Option<QuantParams>,
    ) -> TensorId {
        let name = name.into();
        let out = self.push_tensor(TensorDef::Activation {
            name: format!("{name}:out"),
            shape: out_shape,
            dtype: out_dtype,
            quant: out_quant,
        });
        self.graph.nodes.push(Node {
            name,
            op,
            inputs,
            output: out,
        });
        out
    }

    fn err(&self, node: &str, reason: impl Into<String>) -> NnError {
        NnError::InvalidOp {
            node: node.into(),
            reason: reason.into(),
        }
    }

    fn expect_rank(&self, node: &str, id: TensorId, rank: usize) -> Result<()> {
        let actual = self.shape_of(id).rank();
        if actual != rank {
            return Err(self.err(node, format!("expected rank {rank}, got rank {actual}")));
        }
        Ok(())
    }

    /// Adds a 2-D convolution. `weights` must be `[out_c, kh, kw, in_c]`;
    /// `bias`, when present, `[out_c]`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidOp`] on rank/channel mismatches.
    #[allow(clippy::too_many_arguments)]
    pub fn conv2d(
        &mut self,
        name: impl Into<String>,
        input: TensorId,
        weights: TensorId,
        bias: Option<TensorId>,
        stride: usize,
        padding: Padding,
        activation: Activation,
    ) -> Result<TensorId> {
        let name = name.into();
        self.expect_rank(&name, input, 4)?;
        self.expect_rank(&name, weights, 4)?;
        let in_shape = self.shape_of(input).clone();
        let w = self.shape_of(weights).clone();
        let (out_c, kh, kw, w_in_c) = (w.dims()[0], w.dims()[1], w.dims()[2], w.dims()[3]);
        if w_in_c != in_shape.dims()[3] {
            return Err(self.err(
                &name,
                format!(
                    "weight in_c {} != input channels {}",
                    w_in_c,
                    in_shape.dims()[3]
                ),
            ));
        }
        if stride == 0 {
            return Err(self.err(&name, "stride must be positive"));
        }
        if let Some(b) = bias {
            if self.shape_of(b).num_elements() != out_c {
                return Err(self.err(&name, "bias length must equal out_c"));
            }
        }
        let oh = conv_out_size(in_shape.dims()[1], kh, stride, padding);
        let ow = conv_out_size(in_shape.dims()[2], kw, stride, padding);
        if oh == 0 || ow == 0 {
            return Err(self.err(&name, "kernel larger than input under Valid padding"));
        }
        let mut inputs = vec![input, weights];
        inputs.extend(bias);
        let out_shape = Shape::nhwc(in_shape.dims()[0], oh, ow, out_c);
        Ok(self.push_node(
            name,
            OpKind::Conv2d {
                stride,
                padding,
                activation,
            },
            inputs,
            out_shape,
            DType::F32,
            None,
        ))
    }

    /// Adds a depthwise 2-D convolution. `weights` must be `[1, kh, kw, c]`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidOp`] on rank/channel mismatches.
    #[allow(clippy::too_many_arguments)]
    pub fn depthwise_conv2d(
        &mut self,
        name: impl Into<String>,
        input: TensorId,
        weights: TensorId,
        bias: Option<TensorId>,
        stride: usize,
        padding: Padding,
        activation: Activation,
    ) -> Result<TensorId> {
        let name = name.into();
        self.expect_rank(&name, input, 4)?;
        self.expect_rank(&name, weights, 4)?;
        let in_shape = self.shape_of(input).clone();
        let w = self.shape_of(weights).clone();
        let (kh, kw, c) = (w.dims()[1], w.dims()[2], w.dims()[3]);
        if w.dims()[0] != 1 {
            return Err(self.err(&name, "depthwise weights must be [1, kh, kw, c]"));
        }
        if c != in_shape.dims()[3] {
            return Err(self.err(
                &name,
                format!(
                    "weight channels {} != input channels {}",
                    c,
                    in_shape.dims()[3]
                ),
            ));
        }
        if stride == 0 {
            return Err(self.err(&name, "stride must be positive"));
        }
        if let Some(b) = bias {
            if self.shape_of(b).num_elements() != c {
                return Err(self.err(&name, "bias length must equal channels"));
            }
        }
        let oh = conv_out_size(in_shape.dims()[1], kh, stride, padding);
        let ow = conv_out_size(in_shape.dims()[2], kw, stride, padding);
        if oh == 0 || ow == 0 {
            return Err(self.err(&name, "kernel larger than input under Valid padding"));
        }
        let mut inputs = vec![input, weights];
        inputs.extend(bias);
        let out_shape = Shape::nhwc(in_shape.dims()[0], oh, ow, c);
        Ok(self.push_node(
            name,
            OpKind::DepthwiseConv2d {
                stride,
                padding,
                activation,
            },
            inputs,
            out_shape,
            DType::F32,
            None,
        ))
    }

    /// Adds a fully connected layer. Input must be `[n, in]`; weights
    /// `[out, in]`; bias `[out]`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidOp`] on rank/size mismatches.
    pub fn fully_connected(
        &mut self,
        name: impl Into<String>,
        input: TensorId,
        weights: TensorId,
        bias: Option<TensorId>,
        activation: Activation,
    ) -> Result<TensorId> {
        let name = name.into();
        self.expect_rank(&name, input, 2)?;
        self.expect_rank(&name, weights, 2)?;
        let in_shape = self.shape_of(input).clone();
        let w = self.shape_of(weights).clone();
        if w.dims()[1] != in_shape.dims()[1] {
            return Err(self.err(
                &name,
                format!(
                    "weight in {} != input features {}",
                    w.dims()[1],
                    in_shape.dims()[1]
                ),
            ));
        }
        if let Some(b) = bias {
            if self.shape_of(b).num_elements() != w.dims()[0] {
                return Err(self.err(&name, "bias length must equal out features"));
            }
        }
        let mut inputs = vec![input, weights];
        inputs.extend(bias);
        let out_shape = Shape::matrix(in_shape.dims()[0], w.dims()[0]);
        Ok(self.push_node(
            name,
            OpKind::FullyConnected { activation },
            inputs,
            out_shape,
            DType::F32,
            None,
        ))
    }

    #[allow(clippy::too_many_arguments)]
    fn pool(
        &mut self,
        name: String,
        input: TensorId,
        pool_h: usize,
        pool_w: usize,
        stride: usize,
        padding: Padding,
        max: bool,
    ) -> Result<TensorId> {
        self.expect_rank(&name, input, 4)?;
        if pool_h == 0 || pool_w == 0 || stride == 0 {
            return Err(self.err(&name, "pool window and stride must be positive"));
        }
        let s = self.shape_of(input).clone();
        let oh = conv_out_size(s.dims()[1], pool_h, stride, padding);
        let ow = conv_out_size(s.dims()[2], pool_w, stride, padding);
        if oh == 0 || ow == 0 {
            return Err(self.err(&name, "pool window larger than input under Valid padding"));
        }
        let out_shape = Shape::nhwc(s.dims()[0], oh, ow, s.dims()[3]);
        let op = if max {
            OpKind::MaxPool2d {
                pool_h,
                pool_w,
                stride,
                padding,
            }
        } else {
            OpKind::AveragePool2d {
                pool_h,
                pool_w,
                stride,
                padding,
            }
        };
        Ok(self.push_node(name, op, vec![input], out_shape, DType::F32, None))
    }

    /// Adds an average-pooling layer.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidOp`] on invalid windows.
    pub fn avg_pool2d(
        &mut self,
        name: impl Into<String>,
        input: TensorId,
        pool_h: usize,
        pool_w: usize,
        stride: usize,
        padding: Padding,
    ) -> Result<TensorId> {
        self.pool(name.into(), input, pool_h, pool_w, stride, padding, false)
    }

    /// Adds a global average pool implemented as `AveragePool2d` spanning the
    /// whole feature map (MobileNet v3 squeeze-excite style), output
    /// `[n, 1, 1, c]`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidOp`] for non-4D inputs.
    pub fn avg_pool_global(
        &mut self,
        name: impl Into<String>,
        input: TensorId,
    ) -> Result<TensorId> {
        let s = self.shape_of(input).clone();
        let name = name.into();
        self.expect_rank(&name, input, 4)?;
        self.pool(
            name,
            input,
            s.dims()[1],
            s.dims()[2],
            1,
            Padding::Valid,
            false,
        )
    }

    /// Adds a max-pooling layer.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidOp`] on invalid windows.
    pub fn max_pool2d(
        &mut self,
        name: impl Into<String>,
        input: TensorId,
        pool_h: usize,
        pool_w: usize,
        stride: usize,
        padding: Padding,
    ) -> Result<TensorId> {
        self.pool(name.into(), input, pool_h, pool_w, stride, padding, true)
    }

    /// Adds a global reduce-mean (`Mean` op), `[n, ..., c] → [n, c]`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidOp`] for inputs of rank < 2.
    pub fn mean(&mut self, name: impl Into<String>, input: TensorId) -> Result<TensorId> {
        let name = name.into();
        let s = self.shape_of(input).clone();
        if s.rank() < 2 {
            return Err(self.err(&name, "Mean requires rank >= 2"));
        }
        let out_shape = Shape::matrix(s.dims()[0], s.dims()[s.rank() - 1]);
        Ok(self.push_node(name, OpKind::Mean, vec![input], out_shape, DType::F32, None))
    }

    /// Adds element-wise addition. `rhs` may have the same shape as `lhs` or
    /// broadcast from a trailing-suffix shape (e.g. `[l, d]` onto `[n, l, d]`).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidOp`] on incompatible shapes.
    pub fn add(
        &mut self,
        name: impl Into<String>,
        lhs: TensorId,
        rhs: TensorId,
        activation: Activation,
    ) -> Result<TensorId> {
        let name = name.into();
        let a = self.shape_of(lhs).clone();
        let b = self.shape_of(rhs).clone();
        let suffix_ok = b.rank() <= a.rank() && a.dims()[a.rank() - b.rank()..] == *b.dims();
        if !suffix_ok {
            return Err(self.err(&name, format!("cannot broadcast {b} onto {a}")));
        }
        Ok(self.push_node(
            name,
            OpKind::Add { activation },
            vec![lhs, rhs],
            a,
            DType::F32,
            None,
        ))
    }

    /// Adds element-wise multiplication. `rhs` may equal `lhs` in shape, be a
    /// scalar, or be an `[n, 1, 1, c]` gate against an `[n, h, w, c]` input.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidOp`] on incompatible shapes.
    pub fn mul(
        &mut self,
        name: impl Into<String>,
        lhs: TensorId,
        rhs: TensorId,
    ) -> Result<TensorId> {
        let name = name.into();
        let a = self.shape_of(lhs).clone();
        let b = self.shape_of(rhs).clone();
        let gate_ok = a.rank() == 4
            && b.rank() == 4
            && b.dims()[0] == a.dims()[0]
            && b.dims()[1] == 1
            && b.dims()[2] == 1
            && b.dims()[3] == a.dims()[3];
        if !(b == a || b.num_elements() == 1 || gate_ok) {
            return Err(self.err(&name, format!("cannot broadcast {b} onto {a}")));
        }
        Ok(self.push_node(name, OpKind::Mul, vec![lhs, rhs], a, DType::F32, None))
    }

    /// Adds concatenation along `axis`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidOp`] if shapes disagree off-axis.
    pub fn concat(
        &mut self,
        name: impl Into<String>,
        inputs: &[TensorId],
        axis: usize,
    ) -> Result<TensorId> {
        let name = name.into();
        if inputs.is_empty() {
            return Err(self.err(&name, "concat requires at least one input"));
        }
        let first = self.shape_of(inputs[0]).clone();
        if axis >= first.rank() {
            return Err(self.err(&name, "concat axis out of range"));
        }
        let mut axis_sum = 0usize;
        for &id in inputs {
            let s = self.shape_of(id);
            if s.rank() != first.rank() {
                return Err(self.err(&name, "concat rank mismatch"));
            }
            for (d, (&x, &y)) in s.dims().iter().zip(first.dims()).enumerate() {
                if d != axis && x != y {
                    return Err(self.err(&name, "concat off-axis dimension mismatch"));
                }
            }
            axis_sum += s.dims()[axis];
        }
        let mut dims = first.dims().to_vec();
        dims[axis] = axis_sum;
        Ok(self.push_node(
            name,
            OpKind::Concat { axis },
            inputs.to_vec(),
            Shape::new(dims),
            DType::F32,
            None,
        ))
    }

    /// Adds zero padding of the spatial axes of an NHWC tensor.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidOp`] for non-4D inputs.
    pub fn pad(
        &mut self,
        name: impl Into<String>,
        input: TensorId,
        top: usize,
        bottom: usize,
        left: usize,
        right: usize,
    ) -> Result<TensorId> {
        let name = name.into();
        self.expect_rank(&name, input, 4)?;
        let s = self.shape_of(input).clone();
        let out_shape = Shape::nhwc(
            s.dims()[0],
            s.dims()[1] + top + bottom,
            s.dims()[2] + left + right,
            s.dims()[3],
        );
        Ok(self.push_node(
            name,
            OpKind::Pad {
                top,
                bottom,
                left,
                right,
            },
            vec![input],
            out_shape,
            DType::F32,
            None,
        ))
    }

    /// Adds softmax over the last axis.
    ///
    /// # Errors
    ///
    /// Currently infallible but kept fallible for interface uniformity.
    pub fn softmax(&mut self, name: impl Into<String>, input: TensorId) -> Result<TensorId> {
        let s = self.shape_of(input).clone();
        Ok(self.push_node(name, OpKind::Softmax, vec![input], s, DType::F32, None))
    }

    /// Adds a standalone activation node (checkpoint-style graphs keep these
    /// unfused; conversion fuses them into the preceding op).
    ///
    /// # Errors
    ///
    /// Currently infallible but kept fallible for interface uniformity.
    pub fn activation(
        &mut self,
        name: impl Into<String>,
        input: TensorId,
        act: Activation,
    ) -> Result<TensorId> {
        let s = self.shape_of(input).clone();
        Ok(self.push_node(name, OpKind::Act(act), vec![input], s, DType::F32, None))
    }

    /// Adds inference-style batch normalization with constant
    /// `gamma, beta, mean, variance` vectors over the channel axis.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidOp`] if the vectors don't match the channel
    /// count.
    #[allow(clippy::too_many_arguments)]
    pub fn batch_norm(
        &mut self,
        name: impl Into<String>,
        input: TensorId,
        gamma: TensorId,
        beta: TensorId,
        mean: TensorId,
        variance: TensorId,
        epsilon: f32,
    ) -> Result<TensorId> {
        let name = name.into();
        let s = self.shape_of(input).clone();
        let c = s.dims()[s.rank() - 1];
        for &v in &[gamma, beta, mean, variance] {
            if self.shape_of(v).num_elements() != c {
                return Err(self.err(&name, "batch-norm vectors must match channels"));
            }
        }
        Ok(self.push_node(
            name,
            OpKind::BatchNorm { epsilon },
            vec![input, gamma, beta, mean, variance],
            s,
            DType::F32,
            None,
        ))
    }

    /// Adds layer normalization over the last axis with `gamma, beta`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidOp`] if the vectors don't match the last axis.
    pub fn layer_norm(
        &mut self,
        name: impl Into<String>,
        input: TensorId,
        gamma: TensorId,
        beta: TensorId,
        epsilon: f32,
    ) -> Result<TensorId> {
        let name = name.into();
        let s = self.shape_of(input).clone();
        let d = s.dims()[s.rank() - 1];
        if self.shape_of(gamma).num_elements() != d || self.shape_of(beta).num_elements() != d {
            return Err(self.err(&name, "layer-norm vectors must match last axis"));
        }
        Ok(self.push_node(
            name,
            OpKind::LayerNorm { epsilon },
            vec![input, gamma, beta],
            s,
            DType::F32,
            None,
        ))
    }

    /// Adds a 2-D matrix multiplication.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidOp`] on rank or inner-dimension mismatches.
    pub fn matmul(
        &mut self,
        name: impl Into<String>,
        a: TensorId,
        b: TensorId,
        transpose_b: bool,
    ) -> Result<TensorId> {
        let name = name.into();
        self.expect_rank(&name, a, 2)?;
        self.expect_rank(&name, b, 2)?;
        let sa = self.shape_of(a).clone();
        let sb = self.shape_of(b).clone();
        let (k_b, n) = if transpose_b {
            (sb.dims()[1], sb.dims()[0])
        } else {
            (sb.dims()[0], sb.dims()[1])
        };
        if sa.dims()[1] != k_b {
            return Err(self.err(&name, "inner dimensions must agree"));
        }
        let out_shape = Shape::matrix(sa.dims()[0], n);
        Ok(self.push_node(
            name,
            OpKind::MatMul { transpose_b },
            vec![a, b],
            out_shape,
            DType::F32,
            None,
        ))
    }

    /// Adds an embedding lookup: `i32` ids `[n, l]` + table `[v, d]`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidOp`] on rank or dtype mismatches.
    pub fn embedding(
        &mut self,
        name: impl Into<String>,
        ids: TensorId,
        table: TensorId,
    ) -> Result<TensorId> {
        let name = name.into();
        self.expect_rank(&name, ids, 2)?;
        self.expect_rank(&name, table, 2)?;
        if self.dtype_of(ids) != DType::I32 {
            return Err(self.err(&name, "embedding ids must be i32"));
        }
        let si = self.shape_of(ids).clone();
        let st = self.shape_of(table).clone();
        let out_shape = Shape::new(vec![si.dims()[0], si.dims()[1], st.dims()[1]]);
        Ok(self.push_node(
            name,
            OpKind::Embedding,
            vec![ids, table],
            out_shape,
            DType::F32,
            None,
        ))
    }

    /// Adds a reshape to explicit target dims.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidOp`] if element counts differ.
    pub fn reshape(
        &mut self,
        name: impl Into<String>,
        input: TensorId,
        dims: Vec<usize>,
    ) -> Result<TensorId> {
        let name = name.into();
        let s = self.shape_of(input).clone();
        let target = Shape::new(dims.clone());
        if target.num_elements() != s.num_elements() {
            return Err(self.err(&name, format!("cannot reshape {s} to {target}")));
        }
        let dtype = self.dtype_of(input);
        let quant = self.graph.tensor(input).quant().cloned();
        Ok(self.push_node(
            name,
            OpKind::Reshape { dims },
            vec![input],
            target,
            dtype,
            quant,
        ))
    }

    /// Finalizes and validates the graph.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidGraph`] if validation fails.
    pub fn finish(self) -> Result<Graph> {
        self.graph.validate()?;
        Ok(self.graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zeros(shape: Shape) -> Tensor {
        Tensor::zeros(DType::F32, shape)
    }

    #[test]
    fn builder_infers_conv_shapes() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", Shape::nhwc(1, 8, 8, 3));
        let w = b.constant("w", zeros(Shape::new(vec![16, 3, 3, 3])));
        let y = b
            .conv2d("c", x, w, None, 2, Padding::Same, Activation::Relu6)
            .unwrap();
        assert_eq!(b.shape_of(y).dims(), &[1, 4, 4, 16]);
    }

    #[test]
    fn conv_channel_mismatch_rejected() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", Shape::nhwc(1, 8, 8, 3));
        let w = b.constant("w", zeros(Shape::new(vec![16, 3, 3, 4])));
        assert!(b
            .conv2d("c", x, w, None, 1, Padding::Same, Activation::None)
            .is_err());
    }

    #[test]
    fn mean_reduces_to_batch_channels() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", Shape::nhwc(2, 8, 8, 5));
        let y = b.mean("m", x).unwrap();
        assert_eq!(b.shape_of(y).dims(), &[2, 5]);
    }

    #[test]
    fn concat_sums_axis() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", Shape::nhwc(1, 4, 4, 3));
        let y = b.input("y", Shape::nhwc(1, 4, 4, 5));
        let z = b.concat("cat", &[x, y], 3).unwrap();
        assert_eq!(b.shape_of(z).dims(), &[1, 4, 4, 8]);
        assert!(b.concat("bad", &[x, y], 1).is_err());
    }

    #[test]
    fn global_avg_pool_spans_input() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", Shape::nhwc(1, 7, 5, 8));
        let y = b.avg_pool_global("gap", x).unwrap();
        assert_eq!(b.shape_of(y).dims(), &[1, 1, 1, 8]);
    }

    #[test]
    fn finish_validates() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", Shape::nhwc(1, 4, 4, 3));
        let y = b.softmax("s", x).unwrap();
        b.output(y);
        let g = b.finish().unwrap();
        assert_eq!(g.layer_count(), 1);

        let b2 = GraphBuilder::new("empty");
        assert!(b2.finish().is_err());
    }

    #[test]
    fn param_and_mac_counting() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", Shape::nhwc(1, 8, 8, 3));
        let w = b.constant("w", zeros(Shape::new(vec![4, 3, 3, 3])));
        let bias = b.constant("b", zeros(Shape::vector(4)));
        let y = b
            .conv2d("c", x, w, Some(bias), 1, Padding::Same, Activation::None)
            .unwrap();
        b.output(y);
        let g = b.finish().unwrap();
        assert_eq!(g.param_count(), 4 * 3 * 3 * 3 + 4);
        // 8x8x4 outputs, 3*3*3 macs each.
        assert_eq!(g.node_macs(NodeId(0)), (8 * 8 * 4 * 27) as u64);
        assert_eq!(g.total_macs(), (8 * 8 * 4 * 27) as u64);
    }

    #[test]
    fn add_broadcast_rules() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", Shape::new(vec![1, 6, 8]));
        let pos = b.constant("pos", zeros(Shape::matrix(6, 8)));
        assert!(b.add("ok", x, pos, Activation::None).is_ok());
        let bad = b.constant("bad", zeros(Shape::matrix(5, 8)));
        assert!(b.add("bad", x, bad, Activation::None).is_err());
    }

    #[test]
    fn mul_gate_rules() {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", Shape::nhwc(1, 4, 4, 8));
        let gate = b.input("g", Shape::nhwc(1, 1, 1, 8));
        assert!(b.mul("se", x, gate).is_ok());
        let scalar = b.constant("s", Tensor::scalar_f32(0.5));
        assert!(b.mul("scale", x, scalar).is_ok());
        let bad = b.input("b", Shape::nhwc(1, 2, 2, 8));
        assert!(b.mul("bad", x, bad).is_err());
    }

    #[test]
    fn validate_catches_use_before_def() {
        // Hand-assemble a malformed graph: node consumes the activation it
        // produces.
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", Shape::vector(4));
        let y = b.softmax("s", x).unwrap();
        b.output(y);
        let mut g = b.finish().unwrap();
        g.nodes[0].inputs = vec![g.nodes[0].output];
        assert!(g.validate().is_err());
    }
}
