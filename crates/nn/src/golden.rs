//! Golden kernel regression fixtures.
//!
//! One [`GoldenCase`] per `(op, dtype)` dispatch arm of the kernel layer
//! (plus the injected-bug arms): a tiny deterministic graph, deterministic
//! inputs, and the flavors the recorded output is checked against. The
//! checked-in JSON goldens under `crates/nn/goldens/` hold outputs as exact
//! bit patterns; the `golden_kernels` integration test fails on **any
//! bitwise change** to reference kernels and any **tolerance-exceeding
//! change** to optimized ones. Regenerate after an intentional kernel change
//! with `cargo run -p mlexray-nn --bin golden_gen`.
//!
//! Inputs come from a seeded xorshift generator (no external RNG), so the
//! generator binary and the test rebuild identical cases.

use std::path::PathBuf;

use serde::{Deserialize, Serialize};

use mlexray_tensor::{DType, QuantParams, Shape, Tensor, TensorData};

use crate::graph::{Graph, GraphBuilder, TensorId};
use crate::interpreter::{Interpreter, InterpreterOptions};
use crate::ops::{Activation, OpKind, Padding};
use crate::resolver::{AccumOrder, EdgeNumerics, KernelBugs, KernelFlavor, RequantMode};
use crate::Result;

/// The directory the checked-in goldens live in.
pub fn goldens_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("goldens")
}

/// One kernel dispatch arm pinned by a golden: a deterministic graph +
/// inputs, and the `(flavor, tolerance)` pairs to verify. The golden file is
/// recorded from the **first** listed flavor; `0.0` tolerance means bitwise
/// (integer outputs always compare bitwise).
pub struct GoldenCase {
    /// File stem and display name (`conv2d_f32`, `dwconv_q_bug`, ...).
    pub name: String,
    /// Injected defects active for this case.
    pub bugs: KernelBugs,
    /// Edge-emulator numerics active for this case (`None` for the native
    /// dispatch arms).
    pub numerics: Option<EdgeNumerics>,
    /// Flavors to check against the recorded golden, with their allowed
    /// absolute deviation (scaled by `max(1, |golden|)` for f32).
    pub flavors: Vec<(KernelFlavor, f32)>,
    /// The one-node (or boundary) graph under test.
    pub graph: Graph,
    /// Deterministic invoke inputs.
    pub inputs: Vec<Tensor>,
}

impl GoldenCase {
    /// Path of this case's golden file.
    pub fn path(&self) -> PathBuf {
        goldens_dir().join(format!("{}.json", self.name))
    }

    /// Runs the case under `flavor` and returns the graph outputs.
    ///
    /// # Errors
    ///
    /// Propagates interpreter errors.
    pub fn run(&self, flavor: KernelFlavor) -> Result<Vec<Tensor>> {
        let mut interp = Interpreter::new(
            &self.graph,
            InterpreterOptions {
                flavor,
                bugs: self.bugs,
                numerics: self.numerics,
            },
        )?;
        interp.invoke(&self.inputs)
    }

    /// Records the golden for this case (first listed flavor).
    ///
    /// # Errors
    ///
    /// Propagates interpreter errors.
    pub fn record(&self) -> Result<GoldenRecord> {
        let outputs = self.run(self.flavors[0].0)?;
        Ok(GoldenRecord {
            name: self.name.clone(),
            outputs: outputs.iter().map(GoldenTensor::of).collect(),
        })
    }
}

/// Serialized golden: the recorded outputs of one case.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GoldenRecord {
    /// Case name (matches the file stem).
    pub name: String,
    /// Recorded graph outputs.
    pub outputs: Vec<GoldenTensor>,
}

/// One recorded tensor, stored as exact bit patterns so JSON round-trips
/// cannot lose float precision.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GoldenTensor {
    /// Element type: `"f32"`, `"u8"`, `"i8"` or `"i32"`.
    pub dtype: String,
    /// Tensor dimensions.
    pub shape: Vec<usize>,
    /// Elements: f32 as IEEE-754 bit patterns, integers widened bit-exactly.
    pub bits: Vec<u32>,
}

impl GoldenTensor {
    /// Encodes a tensor bit-exactly.
    pub fn of(t: &Tensor) -> Self {
        let (dtype, bits) = match t.data() {
            TensorData::F32(v) => ("f32", v.iter().map(|x| x.to_bits()).collect()),
            TensorData::U8(v) => ("u8", v.iter().map(|&x| x as u32).collect()),
            TensorData::I8(v) => ("i8", v.iter().map(|&x| x as u8 as u32).collect()),
            TensorData::I32(v) => ("i32", v.iter().map(|&x| x as u32).collect()),
        };
        GoldenTensor {
            dtype: dtype.to_string(),
            shape: t.shape().dims().to_vec(),
            bits,
        }
    }

    /// Compares a fresh output against this recording. `tolerance` applies
    /// to f32 elements only (0.0 = bitwise); integer elements must match
    /// exactly.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first mismatch.
    pub fn matches(&self, t: &Tensor, tolerance: f32) -> std::result::Result<(), String> {
        let fresh = GoldenTensor::of(t);
        if fresh.dtype != self.dtype {
            return Err(format!("dtype changed: {} -> {}", self.dtype, fresh.dtype));
        }
        if fresh.shape != self.shape {
            return Err(format!(
                "shape changed: {:?} -> {:?}",
                self.shape, fresh.shape
            ));
        }
        if fresh.bits.len() != self.bits.len() {
            return Err(format!(
                "length changed: {} -> {}",
                self.bits.len(),
                fresh.bits.len()
            ));
        }
        for (i, (&want, &got)) in self.bits.iter().zip(&fresh.bits).enumerate() {
            if want == got {
                continue;
            }
            if self.dtype == "f32" && tolerance > 0.0 {
                let w = f32::from_bits(want);
                let g = f32::from_bits(got);
                if (w - g).abs() <= tolerance * w.abs().max(1.0) {
                    continue;
                }
                return Err(format!(
                    "element {i}: {w} -> {g} exceeds tolerance {tolerance}"
                ));
            }
            return Err(format!(
                "element {i}: bit pattern {want:#010x} -> {got:#010x} ({})",
                if self.dtype == "f32" {
                    format!("{} -> {}", f32::from_bits(want), f32::from_bits(got))
                } else {
                    format!("{want} -> {got}")
                }
            ));
        }
        Ok(())
    }
}

/// Deterministic pseudo-random f32 values in `[lo, hi)` (xorshift64*; no
/// external RNG so the generator binary and tests agree byte-for-byte).
pub fn det_values(n: usize, seed: u64, lo: f32, hi: f32) -> Vec<f32> {
    let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..n)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            let u = (s >> 40) as f32 / (1u64 << 24) as f32;
            lo + u * (hi - lo)
        })
        .collect()
}

/// Deterministic pseudo-random bytes (same generator as [`det_values`]).
pub fn det_bytes(n: usize, seed: u64) -> Vec<u8> {
    det_values(n, seed, 0.0, 256.0)
        .into_iter()
        .map(|v| (v as i32).clamp(0, 255) as u8)
        .collect()
}

const BOTH_BITWISE: [(KernelFlavor, f32); 2] = [
    (KernelFlavor::Reference, 0.0),
    (KernelFlavor::Optimized, 0.0),
];

/// Reference bitwise + optimized within float tolerance (the summation-order
/// drift of blocked kernels).
const REF_BITWISE_OPT_TOL: [(KernelFlavor, f32); 2] = [
    (KernelFlavor::Reference, 0.0),
    (KernelFlavor::Optimized, 1e-4),
];

/// SIMD recorded **bitwise** — the dual-engine GEMM produces identical bits
/// whichever engine runtime dispatch picks (AVX2+FMA or the scalar mirror),
/// so these goldens are host-portable and the CI forced-scalar run
/// (`MLEXRAY_SIMD=scalar`) must reproduce them exactly — plus reference
/// within the tiled kernel's reassociation tolerance.
const SIMD_BITWISE_REF_TOL: [(KernelFlavor, f32); 2] =
    [(KernelFlavor::Simd, 0.0), (KernelFlavor::Reference, 1e-4)];

/// Arms whose SIMD arithmetic is exact (integer i8×i8→i32 GEMM) or
/// order-preserving (channel-vectorized depthwise): every flavor compares
/// bitwise against one recording.
const ALL_THREE_BITWISE: [(KernelFlavor, f32); 3] = [
    (KernelFlavor::Simd, 0.0),
    (KernelFlavor::Reference, 0.0),
    (KernelFlavor::Optimized, 0.0),
];

fn f32_input(shape: Shape, seed: u64, lo: f32, hi: f32) -> Tensor {
    let n = shape.num_elements();
    Tensor::from_f32(shape, det_values(n, seed, lo, hi)).expect("length matches")
}

fn u8_input(shape: Shape, seed: u64, scale: f32, zp: i32) -> Tensor {
    let n = shape.num_elements();
    Tensor::from_u8(
        shape,
        det_bytes(n, seed),
        QuantParams::PerTensor {
            scale,
            zero_point: zp,
        },
    )
    .expect("length matches")
}

fn pt(scale: f32, zero_point: i32) -> Option<QuantParams> {
    Some(QuantParams::PerTensor { scale, zero_point })
}

fn q_input(b: &mut GraphBuilder, name: &str, shape: Shape, scale: f32, zp: i32) -> TensorId {
    b.input_typed(name, shape, DType::U8, pt(scale, zp))
}

fn i8_weights(shape: Shape, seed: u64, amax: f32) -> Tensor {
    let f = f32_input(shape, seed, -amax, amax);
    f.quantize_to_i8(&QuantParams::symmetric_i8(-amax, amax))
        .expect("f32 weights quantize")
}

fn i8_weights_per_channel(shape: Shape, seed: u64, axis: usize) -> Tensor {
    let f = f32_input(shape.clone(), seed, -0.8, 0.8);
    let n = shape.dims()[axis];
    let ranges: Vec<(f32, f32)> = (0..n)
        .map(|c| {
            let a = 0.2 + 0.15 * c as f32;
            (-a, a)
        })
        .collect();
    f.quantize_to_i8(&QuantParams::symmetric_i8_per_channel(&ranges, axis).expect("ranges"))
        .expect("f32 weights quantize")
}

fn i32_bias(values: Vec<i32>) -> Tensor {
    let n = values.len();
    Tensor::from_i32(Shape::vector(n), values, None).expect("length matches")
}

fn case(
    name: &str,
    flavors: &[(KernelFlavor, f32)],
    bugs: KernelBugs,
    graph: Graph,
    inputs: Vec<Tensor>,
) -> GoldenCase {
    GoldenCase {
        name: name.to_string(),
        bugs,
        numerics: None,
        flavors: flavors.to_vec(),
        graph,
        inputs,
    }
}

/// A golden case running under the edge emulator's numerics (recorded and
/// checked bitwise — emulated arithmetic is deterministic per config).
fn emu_case(name: &str, numerics: EdgeNumerics, graph: Graph, inputs: Vec<Tensor>) -> GoldenCase {
    GoldenCase {
        name: name.to_string(),
        bugs: KernelBugs::none(),
        numerics: Some(numerics),
        flavors: vec![(KernelFlavor::Reference, 0.0)],
        graph,
        inputs,
    }
}

/// Builds the full golden suite: one case per kernel dispatch arm, including
/// the injected-defect arms.
///
/// # Panics
///
/// Panics if a fixture graph fails to build — the suite itself is a test
/// asset, so a broken fixture should fail loudly.
#[allow(clippy::too_many_lines)]
pub fn cases() -> Vec<GoldenCase> {
    let none = KernelBugs::none();
    let mut all = Vec::new();

    // --- float convolutions -------------------------------------------------
    {
        let mut b = GraphBuilder::new("conv2d_f32");
        let x = b.input("x", Shape::nhwc(1, 5, 5, 3));
        let w = b.constant("w", f32_input(Shape::new(vec![4, 3, 3, 3]), 11, -0.5, 0.5));
        let bias = b.constant("b", f32_input(Shape::vector(4), 12, -0.2, 0.2));
        let y = b
            .conv2d(
                "conv",
                x,
                w,
                Some(bias),
                1,
                Padding::Same,
                Activation::Relu6,
            )
            .unwrap();
        b.output(y);
        all.push(case(
            "conv2d_f32",
            &REF_BITWISE_OPT_TOL,
            none,
            b.finish().unwrap(),
            vec![f32_input(Shape::nhwc(1, 5, 5, 3), 13, -1.0, 1.0)],
        ));
    }
    {
        let mut b = GraphBuilder::new("conv2d_f32_strided");
        let x = b.input("x", Shape::nhwc(1, 6, 6, 2));
        let w = b.constant("w", f32_input(Shape::new(vec![3, 2, 2, 2]), 21, -0.6, 0.6));
        let y = b
            .conv2d("conv", x, w, None, 2, Padding::Valid, Activation::None)
            .unwrap();
        b.output(y);
        all.push(case(
            "conv2d_f32_strided",
            &REF_BITWISE_OPT_TOL,
            none,
            b.finish().unwrap(),
            vec![f32_input(Shape::nhwc(1, 6, 6, 2), 22, -1.0, 1.0)],
        ));
    }
    {
        let mut b = GraphBuilder::new("dwconv_f32");
        let x = b.input("x", Shape::nhwc(1, 5, 5, 4));
        let w = b.constant("w", f32_input(Shape::new(vec![1, 3, 3, 4]), 31, -0.5, 0.5));
        let bias = b.constant("b", f32_input(Shape::vector(4), 32, -0.1, 0.1));
        let y = b
            .depthwise_conv2d(
                "dw",
                x,
                w,
                Some(bias),
                1,
                Padding::Same,
                Activation::HardSwish,
            )
            .unwrap();
        b.output(y);
        // Depthwise float changes only loop order between flavors, so both
        // compare bitwise.
        all.push(case(
            "dwconv_f32",
            &BOTH_BITWISE,
            none,
            b.finish().unwrap(),
            vec![f32_input(Shape::nhwc(1, 5, 5, 4), 33, -1.0, 1.0)],
        ));
    }

    // --- float fully-connected / matmul ------------------------------------
    {
        let mut b = GraphBuilder::new("fc_f32");
        let x = b.input("x", Shape::matrix(2, 10));
        let w = b.constant("w", f32_input(Shape::matrix(6, 10), 41, -0.5, 0.5));
        let bias = b.constant("b", f32_input(Shape::vector(6), 42, -0.3, 0.3));
        let y = b
            .fully_connected("fc", x, w, Some(bias), Activation::Relu)
            .unwrap();
        b.output(y);
        all.push(case(
            "fc_f32",
            &REF_BITWISE_OPT_TOL,
            none,
            b.finish().unwrap(),
            vec![f32_input(Shape::matrix(2, 10), 43, -1.0, 1.0)],
        ));
    }
    {
        let mut b = GraphBuilder::new("matmul_f32");
        let x = b.input("x", Shape::matrix(3, 4));
        let w = b.constant("w", f32_input(Shape::matrix(4, 5), 51, -0.7, 0.7));
        let y = b.matmul("mm", x, w, false).unwrap();
        b.output(y);
        all.push(case(
            "matmul_f32",
            &BOTH_BITWISE,
            none,
            b.finish().unwrap(),
            vec![f32_input(Shape::matrix(3, 4), 52, -1.0, 1.0)],
        ));
    }
    {
        let mut b = GraphBuilder::new("matmul_f32_transposed");
        let x = b.input("x", Shape::matrix(3, 4));
        let w = b.constant("w", f32_input(Shape::matrix(5, 4), 53, -0.7, 0.7));
        let y = b.matmul("mmt", x, w, true).unwrap();
        b.output(y);
        all.push(case(
            "matmul_f32_transposed",
            &BOTH_BITWISE,
            none,
            b.finish().unwrap(),
            vec![f32_input(Shape::matrix(3, 4), 54, -1.0, 1.0)],
        ));
    }

    // --- float pooling / reductions -----------------------------------------
    {
        let mut b = GraphBuilder::new("avgpool_f32");
        let x = b.input("x", Shape::nhwc(1, 4, 4, 2));
        let y = b.avg_pool2d("ap", x, 2, 2, 2, Padding::Same).unwrap();
        b.output(y);
        all.push(case(
            "avgpool_f32",
            &BOTH_BITWISE,
            none,
            b.finish().unwrap(),
            vec![f32_input(Shape::nhwc(1, 4, 4, 2), 61, -1.0, 1.0)],
        ));
    }
    {
        let mut b = GraphBuilder::new("maxpool_f32");
        let x = b.input("x", Shape::nhwc(1, 4, 4, 2));
        let y = b.max_pool2d("mp", x, 2, 2, 2, Padding::Valid).unwrap();
        b.output(y);
        all.push(case(
            "maxpool_f32",
            &BOTH_BITWISE,
            none,
            b.finish().unwrap(),
            vec![f32_input(Shape::nhwc(1, 4, 4, 2), 62, -1.0, 1.0)],
        ));
    }
    {
        let mut b = GraphBuilder::new("mean_f32");
        let x = b.input("x", Shape::nhwc(1, 3, 3, 4));
        let y = b.mean("gap", x).unwrap();
        b.output(y);
        all.push(case(
            "mean_f32",
            &BOTH_BITWISE,
            none,
            b.finish().unwrap(),
            vec![f32_input(Shape::nhwc(1, 3, 3, 4), 63, -1.0, 1.0)],
        ));
    }

    // --- float elementwise / structure --------------------------------------
    {
        let mut b = GraphBuilder::new("add_f32");
        let x = b.input("x", Shape::nhwc(1, 3, 3, 2));
        let y2 = b.input("y", Shape::nhwc(1, 3, 3, 2));
        let z = b.add("add", x, y2, Activation::Relu).unwrap();
        b.output(z);
        all.push(case(
            "add_f32",
            &BOTH_BITWISE,
            none,
            b.finish().unwrap(),
            vec![
                f32_input(Shape::nhwc(1, 3, 3, 2), 71, -1.0, 1.0),
                f32_input(Shape::nhwc(1, 3, 3, 2), 72, -1.0, 1.0),
            ],
        ));
    }
    {
        let mut b = GraphBuilder::new("mul_f32");
        let x = b.input("x", Shape::nhwc(1, 3, 3, 4));
        let g = b.input("g", Shape::nhwc(1, 1, 1, 4));
        let z = b.mul("gate", x, g).unwrap();
        b.output(z);
        all.push(case(
            "mul_f32",
            &BOTH_BITWISE,
            none,
            b.finish().unwrap(),
            vec![
                f32_input(Shape::nhwc(1, 3, 3, 4), 73, -1.0, 1.0),
                f32_input(Shape::nhwc(1, 1, 1, 4), 74, 0.0, 1.0),
            ],
        ));
    }
    {
        let mut b = GraphBuilder::new("concat_f32");
        let x = b.input("x", Shape::nhwc(1, 2, 2, 2));
        let y2 = b.input("y", Shape::nhwc(1, 2, 2, 3));
        let z = b.concat("cat", &[x, y2], 3).unwrap();
        b.output(z);
        all.push(case(
            "concat_f32",
            &BOTH_BITWISE,
            none,
            b.finish().unwrap(),
            vec![
                f32_input(Shape::nhwc(1, 2, 2, 2), 81, -1.0, 1.0),
                f32_input(Shape::nhwc(1, 2, 2, 3), 82, -1.0, 1.0),
            ],
        ));
    }
    {
        let mut b = GraphBuilder::new("pad_f32");
        let x = b.input("x", Shape::nhwc(1, 2, 3, 2));
        let y = b.pad("pad", x, 1, 0, 2, 1).unwrap();
        b.output(y);
        all.push(case(
            "pad_f32",
            &BOTH_BITWISE,
            none,
            b.finish().unwrap(),
            vec![f32_input(Shape::nhwc(1, 2, 3, 2), 83, -1.0, 1.0)],
        ));
    }
    {
        let mut b = GraphBuilder::new("softmax_f32");
        let x = b.input("x", Shape::matrix(2, 5));
        let y = b.softmax("sm", x).unwrap();
        b.output(y);
        // exp() is platform-library math; pin loosely on both flavors.
        all.push(case(
            "softmax_f32",
            &[
                (KernelFlavor::Reference, 1e-6),
                (KernelFlavor::Optimized, 1e-6),
            ],
            none,
            b.finish().unwrap(),
            vec![f32_input(Shape::matrix(2, 5), 84, -4.0, 4.0)],
        ));
    }
    {
        let mut b = GraphBuilder::new("act_f32");
        let x = b.input("x", Shape::vector(16));
        let y = b.activation("hs", x, Activation::HardSwish).unwrap();
        b.output(y);
        all.push(case(
            "act_f32",
            &BOTH_BITWISE,
            none,
            b.finish().unwrap(),
            vec![f32_input(Shape::vector(16), 85, -5.0, 5.0)],
        ));
    }
    {
        let mut b = GraphBuilder::new("batch_norm_f32");
        let x = b.input("x", Shape::nhwc(1, 3, 3, 2));
        let gamma = b.constant("g", f32_input(Shape::vector(2), 91, 0.5, 1.5));
        let beta = b.constant("be", f32_input(Shape::vector(2), 92, -0.4, 0.4));
        let mean = b.constant("m", f32_input(Shape::vector(2), 93, -0.2, 0.2));
        let var = b.constant("v", f32_input(Shape::vector(2), 94, 0.5, 1.5));
        let y = b.batch_norm("bn", x, gamma, beta, mean, var, 1e-3).unwrap();
        b.output(y);
        all.push(case(
            "batch_norm_f32",
            &BOTH_BITWISE,
            none,
            b.finish().unwrap(),
            vec![f32_input(Shape::nhwc(1, 3, 3, 2), 95, -1.0, 1.0)],
        ));
    }
    {
        let mut b = GraphBuilder::new("layer_norm_f32");
        let x = b.input("x", Shape::matrix(3, 6));
        let gamma = b.constant("g", f32_input(Shape::vector(6), 96, 0.5, 1.5));
        let beta = b.constant("be", f32_input(Shape::vector(6), 97, -0.3, 0.3));
        let y = b.layer_norm("ln", x, gamma, beta, 1e-5).unwrap();
        b.output(y);
        all.push(case(
            "layer_norm_f32",
            &BOTH_BITWISE,
            none,
            b.finish().unwrap(),
            vec![f32_input(Shape::matrix(3, 6), 98, -2.0, 2.0)],
        ));
    }
    {
        let mut b = GraphBuilder::new("embedding_f32");
        let ids = b.input_typed("ids", Shape::matrix(1, 5), DType::I32, None);
        let table = b.constant("table", f32_input(Shape::matrix(7, 3), 101, -1.0, 1.0));
        let y = b.embedding("emb", ids, table).unwrap();
        b.output(y);
        all.push(case(
            "embedding_f32",
            &BOTH_BITWISE,
            none,
            b.finish().unwrap(),
            vec![Tensor::from_i32(Shape::matrix(1, 5), vec![0, 6, 3, 99, -2], None).unwrap()],
        ));
    }
    {
        let mut b = GraphBuilder::new("reshape_f32");
        let x = b.input("x", Shape::nhwc(1, 2, 2, 3));
        let y = b.reshape("rs", x, vec![1, 12]).unwrap();
        b.output(y);
        all.push(case(
            "reshape_f32",
            &BOTH_BITWISE,
            none,
            b.finish().unwrap(),
            vec![f32_input(Shape::nhwc(1, 2, 2, 3), 102, -1.0, 1.0)],
        ));
    }

    // --- quantization boundaries --------------------------------------------
    {
        let mut b = GraphBuilder::new("quantize");
        let x = b.input("x", Shape::vector(12));
        let q = b.push_node(
            "q",
            OpKind::Quantize,
            vec![x],
            Shape::vector(12),
            DType::U8,
            pt(0.05, 128),
        );
        b.output(q);
        all.push(case(
            "quantize",
            &BOTH_BITWISE,
            none,
            b.finish().unwrap(),
            vec![f32_input(Shape::vector(12), 111, -4.0, 4.0)],
        ));
    }
    {
        let mut b = GraphBuilder::new("dequantize");
        let x = q_input(&mut b, "x", Shape::vector(12), 0.04, 100);
        let y = b.push_node(
            "dq",
            OpKind::Dequantize,
            vec![x],
            Shape::vector(12),
            DType::F32,
            None,
        );
        b.output(y);
        all.push(case(
            "dequantize",
            &BOTH_BITWISE,
            none,
            b.finish().unwrap(),
            vec![u8_input(Shape::vector(12), 112, 0.04, 100)],
        ));
    }

    // --- quantized compute kernels ------------------------------------------
    {
        let mut b = GraphBuilder::new("conv2d_q");
        let x = q_input(&mut b, "x", Shape::nhwc(1, 5, 5, 3), 0.02, 128);
        let w = b.constant("w", i8_weights(Shape::new(vec![4, 3, 3, 3]), 121, 0.5));
        let bias = b.constant("b", i32_bias(vec![40, -25, 0, 12]));
        let y = b.push_node(
            "conv",
            OpKind::Conv2d {
                stride: 1,
                padding: Padding::Same,
                activation: Activation::Relu,
            },
            vec![x, w, bias],
            Shape::nhwc(1, 5, 5, 4),
            DType::U8,
            pt(0.06, 10),
        );
        b.output(y);
        all.push(case(
            "conv2d_q",
            &BOTH_BITWISE,
            none,
            b.finish().unwrap(),
            vec![u8_input(Shape::nhwc(1, 5, 5, 3), 122, 0.02, 128)],
        ));
    }
    {
        let mut b = GraphBuilder::new("conv2d_q_per_channel");
        let x = q_input(&mut b, "x", Shape::nhwc(1, 4, 4, 2), 0.03, 120);
        let w = b.constant(
            "w",
            i8_weights_per_channel(Shape::new(vec![3, 2, 2, 2]), 123, 0),
        );
        let y = b.push_node(
            "conv",
            OpKind::Conv2d {
                stride: 1,
                padding: Padding::Valid,
                activation: Activation::None,
            },
            vec![x, w],
            Shape::nhwc(1, 3, 3, 3),
            DType::U8,
            pt(0.05, 128),
        );
        b.output(y);
        all.push(case(
            "conv2d_q_per_channel",
            &BOTH_BITWISE,
            none,
            b.finish().unwrap(),
            vec![u8_input(Shape::nhwc(1, 4, 4, 2), 124, 0.03, 120)],
        ));
    }
    let dwconv_q_graph = || {
        let mut b = GraphBuilder::new("dwconv_q");
        let x = q_input(&mut b, "x", Shape::nhwc(1, 5, 5, 3), 0.05, 128);
        let w = b.constant(
            "w",
            i8_weights_per_channel(Shape::new(vec![1, 3, 3, 3]), 131, 3),
        );
        let bias = b.constant("b", i32_bias(vec![15, -10, 4]));
        let y = b.push_node(
            "dw",
            OpKind::DepthwiseConv2d {
                stride: 1,
                padding: Padding::Same,
                activation: Activation::None,
            },
            vec![x, w, bias],
            Shape::nhwc(1, 5, 5, 3),
            DType::U8,
            pt(0.1, 128),
        );
        b.output(y);
        b.finish().unwrap()
    };
    all.push(case(
        "dwconv_q",
        &BOTH_BITWISE,
        none,
        dwconv_q_graph(),
        vec![u8_input(Shape::nhwc(1, 5, 5, 3), 132, 0.05, 128)],
    ));
    // The injected optimized-dwconv i16 defect (§4.4): recorded from the
    // buggy optimized kernel; the reference kernel ignores the bug flag, so
    // only the optimized flavor is checked.
    all.push(case(
        "dwconv_q_bug",
        &[(KernelFlavor::Optimized, 0.0)],
        KernelBugs {
            optimized_dwconv_i16_accumulator: true,
            ..KernelBugs::none()
        },
        dwconv_q_graph(),
        vec![u8_input(Shape::nhwc(1, 5, 5, 3), 132, 0.05, 128)],
    ));
    {
        let mut b = GraphBuilder::new("fc_q");
        let x = q_input(&mut b, "x", Shape::matrix(2, 8), 0.03, 128);
        let w = b.constant("w", i8_weights(Shape::matrix(4, 8), 141, 0.6));
        let bias = b.constant("b", i32_bias(vec![50, -30, 10, 0]));
        let y = b.push_node(
            "fc",
            OpKind::FullyConnected {
                activation: Activation::Relu,
            },
            vec![x, w, bias],
            Shape::matrix(2, 4),
            DType::U8,
            pt(0.08, 20),
        );
        b.output(y);
        all.push(case(
            "fc_q",
            &BOTH_BITWISE,
            none,
            b.finish().unwrap(),
            vec![u8_input(Shape::matrix(2, 8), 142, 0.03, 128)],
        ));
    }
    let avgpool_q_graph = |pool: usize, name: &str| {
        let mut b = GraphBuilder::new(name);
        let x = q_input(&mut b, "x", Shape::nhwc(1, 4, 4, 2), 0.04, 128);
        let y = b.push_node(
            "ap",
            OpKind::AveragePool2d {
                pool_h: pool,
                pool_w: pool,
                stride: pool,
                padding: Padding::Valid,
            },
            vec![x],
            Shape::nhwc(1, 4 / pool, 4 / pool, 2),
            DType::U8,
            pt(0.04, 128),
        );
        b.output(y);
        b.finish().unwrap()
    };
    all.push(case(
        "avgpool_q",
        &BOTH_BITWISE,
        none,
        avgpool_q_graph(2, "avgpool_q"),
        vec![u8_input(Shape::nhwc(1, 4, 4, 2), 151, 0.04, 128)],
    ));
    // The op-spec double-division defect fires in both resolvers, on pool
    // areas >= 16 (here 4x4 = global pooling).
    all.push(case(
        "avgpool_q_bug",
        &BOTH_BITWISE,
        KernelBugs {
            avgpool_double_division: true,
            ..KernelBugs::none()
        },
        avgpool_q_graph(4, "avgpool_q_bug"),
        vec![u8_input(Shape::nhwc(1, 4, 4, 2), 151, 0.04, 128)],
    ));
    {
        let mut b = GraphBuilder::new("maxpool_q");
        let x = q_input(&mut b, "x", Shape::nhwc(1, 4, 4, 2), 0.05, 100);
        let y = b.push_node(
            "mp",
            OpKind::MaxPool2d {
                pool_h: 2,
                pool_w: 2,
                stride: 2,
                padding: Padding::Same,
            },
            vec![x],
            Shape::nhwc(1, 2, 2, 2),
            DType::U8,
            pt(0.06, 90),
        );
        b.output(y);
        all.push(case(
            "maxpool_q",
            &BOTH_BITWISE,
            none,
            b.finish().unwrap(),
            vec![u8_input(Shape::nhwc(1, 4, 4, 2), 152, 0.05, 100)],
        ));
    }
    {
        let mut b = GraphBuilder::new("mean_q");
        let x = q_input(&mut b, "x", Shape::nhwc(1, 3, 3, 2), 0.02, 128);
        let y = b.push_node(
            "mean",
            OpKind::Mean,
            vec![x],
            Shape::matrix(1, 2),
            DType::U8,
            pt(0.02, 128),
        );
        b.output(y);
        all.push(case(
            "mean_q",
            &BOTH_BITWISE,
            none,
            b.finish().unwrap(),
            vec![u8_input(Shape::nhwc(1, 3, 3, 2), 153, 0.02, 128)],
        ));
    }
    {
        let mut b = GraphBuilder::new("add_q");
        let x = q_input(&mut b, "x", Shape::nhwc(1, 3, 3, 2), 0.03, 128);
        let y2 = q_input(&mut b, "y", Shape::nhwc(1, 3, 3, 2), 0.05, 110);
        let z = b.push_node(
            "add",
            OpKind::Add {
                activation: Activation::Relu,
            },
            vec![x, y2],
            Shape::nhwc(1, 3, 3, 2),
            DType::U8,
            pt(0.07, 40),
        );
        b.output(z);
        all.push(case(
            "add_q",
            &BOTH_BITWISE,
            none,
            b.finish().unwrap(),
            vec![
                u8_input(Shape::nhwc(1, 3, 3, 2), 161, 0.03, 128),
                u8_input(Shape::nhwc(1, 3, 3, 2), 162, 0.05, 110),
            ],
        ));
    }
    {
        let mut b = GraphBuilder::new("mul_q");
        let x = q_input(&mut b, "x", Shape::nhwc(1, 3, 3, 4), 0.03, 128);
        let g = q_input(&mut b, "g", Shape::nhwc(1, 1, 1, 4), 0.004, 0);
        let z = b.push_node(
            "gate",
            OpKind::Mul,
            vec![x, g],
            Shape::nhwc(1, 3, 3, 4),
            DType::U8,
            pt(0.03, 128),
        );
        b.output(z);
        all.push(case(
            "mul_q",
            &BOTH_BITWISE,
            none,
            b.finish().unwrap(),
            vec![
                u8_input(Shape::nhwc(1, 3, 3, 4), 163, 0.03, 128),
                u8_input(Shape::nhwc(1, 1, 1, 4), 164, 0.004, 0),
            ],
        ));
    }
    {
        let mut b = GraphBuilder::new("concat_q");
        let x = q_input(&mut b, "x", Shape::nhwc(1, 2, 2, 2), 0.03, 128);
        let y2 = q_input(&mut b, "y", Shape::nhwc(1, 2, 2, 1), 0.06, 90);
        let z = b.push_node(
            "cat",
            OpKind::Concat { axis: 3 },
            vec![x, y2],
            Shape::nhwc(1, 2, 2, 3),
            DType::U8,
            pt(0.05, 115),
        );
        b.output(z);
        all.push(case(
            "concat_q",
            &BOTH_BITWISE,
            none,
            b.finish().unwrap(),
            vec![
                u8_input(Shape::nhwc(1, 2, 2, 2), 171, 0.03, 128),
                u8_input(Shape::nhwc(1, 2, 2, 1), 172, 0.06, 90),
            ],
        ));
    }
    {
        let mut b = GraphBuilder::new("pad_q");
        let x = q_input(&mut b, "x", Shape::nhwc(1, 2, 2, 2), 0.04, 77);
        let y = b.push_node(
            "pad",
            OpKind::Pad {
                top: 1,
                bottom: 1,
                left: 0,
                right: 1,
            },
            vec![x],
            Shape::nhwc(1, 4, 3, 2),
            DType::U8,
            pt(0.04, 77),
        );
        b.output(y);
        all.push(case(
            "pad_q",
            &BOTH_BITWISE,
            none,
            b.finish().unwrap(),
            vec![u8_input(Shape::nhwc(1, 2, 2, 2), 173, 0.04, 77)],
        ));
    }
    {
        let mut b = GraphBuilder::new("act_q");
        let x = q_input(&mut b, "x", Shape::vector(16), 0.05, 128);
        let y = b.push_node(
            "hs",
            OpKind::Act(Activation::HardSigmoid),
            vec![x],
            Shape::vector(16),
            DType::U8,
            pt(1.0 / 255.0, 0),
        );
        b.output(y);
        all.push(case(
            "act_q",
            &BOTH_BITWISE,
            none,
            b.finish().unwrap(),
            vec![u8_input(Shape::vector(16), 181, 0.05, 128)],
        ));
    }
    // --- SIMD GEMM dispatch arms --------------------------------------------
    // One case per arm of the SIMD backend's cache-blocked GEMM: the tiled
    // f32 im2col path (ragged K + row-tile + column-remainder coverage), the
    // 1x1 stride-1 copy-free path, the channel-vectorized depthwise path,
    // the fc path and the exact i8×i8→i32 quantized paths. SIMD goldens are
    // recorded from the SIMD flavor itself and compared bitwise: the
    // dual-engine kernels guarantee the same bits under AVX2+FMA and the
    // scalar mirror, so the `MLEXRAY_SIMD=scalar` CI rerun must reproduce
    // every one of these exactly.
    let simd_conv_graph = |name: &str| {
        // 5x5x3 input, 3x3 kernel: K = 27 (ragged lane tail), 25 output
        // rows (> the 16-row tile), 5 output channels (one 4-wide column
        // block + a remainder column).
        let mut b = GraphBuilder::new(name);
        let x = b.input("x", Shape::nhwc(1, 5, 5, 3));
        let w = b.constant("w", f32_input(Shape::new(vec![5, 3, 3, 3]), 311, -0.5, 0.5));
        let bias = b.constant("b", f32_input(Shape::vector(5), 312, -0.2, 0.2));
        let y = b
            .conv2d("conv", x, w, Some(bias), 1, Padding::Same, Activation::Relu)
            .unwrap();
        b.output(y);
        b.finish().unwrap()
    };
    let simd_conv_input = || vec![f32_input(Shape::nhwc(1, 5, 5, 3), 313, -1.0, 1.0)];
    all.push(case(
        "simd_conv2d_f32",
        &SIMD_BITWISE_REF_TOL,
        none,
        simd_conv_graph("simd_conv2d_f32"),
        simd_conv_input(),
    ));
    // The injected K-tail truncation (`simd_gemm_k_tail_skip`): recorded
    // from the bugged SIMD kernel so the defect's exact wrong bits are
    // pinned; the other flavors ignore the flag and are not checked.
    all.push(case(
        "simd_conv2d_f32_k_tail_bug",
        &[(KernelFlavor::Simd, 0.0)],
        KernelBugs {
            simd_gemm_k_tail_skip: true,
            ..KernelBugs::none()
        },
        simd_conv_graph("simd_conv2d_f32_k_tail_bug"),
        simd_conv_input(),
    ));
    {
        // 1x1 stride-1 conv: the copy-free direct arm (no im2col buffer).
        // c = 8 makes K exactly one lane wide, so the vector loop runs with
        // no scalar tail.
        let mut b = GraphBuilder::new("simd_conv2d_f32_1x1");
        let x = b.input("x", Shape::nhwc(1, 4, 4, 8));
        let w = b.constant("w", f32_input(Shape::new(vec![6, 1, 1, 8]), 321, -0.6, 0.6));
        let y = b
            .conv2d("conv", x, w, None, 1, Padding::Same, Activation::None)
            .unwrap();
        b.output(y);
        all.push(case(
            "simd_conv2d_f32_1x1",
            &SIMD_BITWISE_REF_TOL,
            none,
            b.finish().unwrap(),
            vec![f32_input(Shape::nhwc(1, 4, 4, 8), 322, -1.0, 1.0)],
        ));
    }
    {
        // Depthwise: the channel-vectorized arm walks taps in the same
        // (ky, kx) order as both scalar kernels, so all three flavors are
        // bitwise-identical. c = 10 covers one 8-lane chunk plus a 2-channel
        // scalar remainder.
        let mut b = GraphBuilder::new("simd_dwconv_f32");
        let x = b.input("x", Shape::nhwc(1, 5, 5, 10));
        let w = b.constant(
            "w",
            f32_input(Shape::new(vec![1, 3, 3, 10]), 331, -0.5, 0.5),
        );
        let bias = b.constant("b", f32_input(Shape::vector(10), 332, -0.2, 0.2));
        let y = b
            .depthwise_conv2d(
                "dw",
                x,
                w,
                Some(bias),
                1,
                Padding::Same,
                Activation::HardSwish,
            )
            .unwrap();
        b.output(y);
        all.push(case(
            "simd_dwconv_f32",
            &ALL_THREE_BITWISE,
            none,
            b.finish().unwrap(),
            vec![f32_input(Shape::nhwc(1, 5, 5, 10), 333, -1.0, 1.0)],
        ));
    }
    {
        // FC through the same tiled GEMM: ragged in-features (27), 6 output
        // features (4-wide block + remainder), 3 batch rows.
        let mut b = GraphBuilder::new("simd_fc_f32");
        let x = b.input("x", Shape::matrix(3, 27));
        let w = b.constant("w", f32_input(Shape::matrix(6, 27), 341, -0.4, 0.4));
        let bias = b.constant("b", f32_input(Shape::vector(6), 342, -0.2, 0.2));
        let y = b
            .fully_connected("fc", x, w, Some(bias), Activation::Relu)
            .unwrap();
        b.output(y);
        all.push(case(
            "simd_fc_f32",
            &SIMD_BITWISE_REF_TOL,
            none,
            b.finish().unwrap(),
            vec![f32_input(Shape::matrix(3, 27), 343, -1.0, 1.0)],
        ));
    }
    {
        // Quantized conv through the i8×i8→i32 SIMD GEMM: integer dot
        // products are order-free, so SIMD is bitwise-identical to both
        // scalar flavors. Per-channel weights + bias cover the full requant
        // path behind the GEMM.
        let mut b = GraphBuilder::new("simd_conv2d_q");
        let x = q_input(&mut b, "x", Shape::nhwc(1, 5, 5, 3), 0.02, 128);
        let w = b.constant(
            "w",
            i8_weights_per_channel(Shape::new(vec![5, 3, 3, 3]), 351, 0),
        );
        let bias = b.constant("b", i32_bias(vec![40, -25, 0, 12, -8]));
        let y = b.push_node(
            "conv",
            OpKind::Conv2d {
                stride: 1,
                padding: Padding::Same,
                activation: Activation::Relu,
            },
            vec![x, w, bias],
            Shape::nhwc(1, 5, 5, 5),
            DType::U8,
            pt(0.06, 10),
        );
        b.output(y);
        all.push(case(
            "simd_conv2d_q",
            &ALL_THREE_BITWISE,
            none,
            b.finish().unwrap(),
            vec![u8_input(Shape::nhwc(1, 5, 5, 3), 352, 0.02, 128)],
        ));
    }
    {
        // Quantized fc through the same integer GEMM, ragged in-features.
        let mut b = GraphBuilder::new("simd_fc_q");
        let x = q_input(&mut b, "x", Shape::matrix(2, 27), 0.03, 128);
        let w = b.constant("w", i8_weights(Shape::matrix(6, 27), 361, 0.6));
        let bias = b.constant("b", i32_bias(vec![50, -30, 10, 0, 22, -5]));
        let y = b.push_node(
            "fc",
            OpKind::FullyConnected {
                activation: Activation::Relu,
            },
            vec![x, w, bias],
            Shape::matrix(2, 6),
            DType::U8,
            pt(0.08, 20),
        );
        b.output(y);
        all.push(case(
            "simd_fc_q",
            &ALL_THREE_BITWISE,
            none,
            b.finish().unwrap(),
            vec![u8_input(Shape::matrix(2, 27), 362, 0.03, 128)],
        ));
    }
    // --- edge-emulator numerics knobs ---------------------------------------
    // One case per knob of `EdgeNumerics`, so emulator drift is pinned as
    // bit patterns exactly like the native dispatch arms. Recorded under the
    // emulated kernels (flavor is structural only there) and compared
    // bitwise — emulated arithmetic is deterministic per configuration.
    {
        let emu_conv_graph = |name: &str| {
            let mut b = GraphBuilder::new(name);
            let x = b.input("x", Shape::nhwc(1, 5, 5, 3));
            let w = b.constant("w", f32_input(Shape::new(vec![4, 3, 3, 3]), 211, -0.5, 0.5));
            let bias = b.constant("b", f32_input(Shape::vector(4), 212, -0.2, 0.2));
            let y = b
                .conv2d(
                    "conv",
                    x,
                    w,
                    Some(bias),
                    1,
                    Padding::Same,
                    Activation::Relu6,
                )
                .unwrap();
            b.output(y);
            b.finish().unwrap()
        };
        let emu_conv_input = || vec![f32_input(Shape::nhwc(1, 5, 5, 3), 213, -1.0, 1.0)];
        for (suffix, numerics) in [
            ("faithful", EdgeNumerics::faithful()),
            (
                "reversed",
                EdgeNumerics {
                    accumulation: AccumOrder::Reversed,
                    ..EdgeNumerics::faithful()
                },
            ),
            (
                "lanes8",
                EdgeNumerics {
                    accumulation: AccumOrder::Lanes8,
                    ..EdgeNumerics::faithful()
                },
            ),
            (
                "fma",
                EdgeNumerics {
                    fused_multiply_add: true,
                    ..EdgeNumerics::faithful()
                },
            ),
        ] {
            let name = format!("conv2d_f32_emu_{suffix}");
            all.push(emu_case(
                &name,
                numerics,
                emu_conv_graph(&name),
                emu_conv_input(),
            ));
        }
        // Flush-to-zero: subnormal-magnitude products (1e-20 activations
        // against 1e-25 weights) survive as denormals without FTZ and
        // collapse to signed zero with it.
        let mut b = GraphBuilder::new("conv2d_f32_emu_ftz");
        let x = b.input("x", Shape::nhwc(1, 4, 4, 2));
        let w = b.constant(
            "w",
            f32_input(Shape::new(vec![2, 3, 3, 2]), 221, -3e-25, 3e-25),
        );
        let y = b
            .conv2d("conv", x, w, None, 1, Padding::Same, Activation::None)
            .unwrap();
        b.output(y);
        all.push(emu_case(
            "conv2d_f32_emu_ftz",
            EdgeNumerics {
                flush_to_zero: true,
                ..EdgeNumerics::faithful()
            },
            b.finish().unwrap(),
            vec![f32_input(Shape::nhwc(1, 4, 4, 2), 222, 1e-21, 2e-20)],
        ));
    }
    {
        let emu_dw_graph = |name: &str| {
            let mut b = GraphBuilder::new(name);
            let x = b.input("x", Shape::nhwc(1, 5, 5, 4));
            let w = b.constant("w", f32_input(Shape::new(vec![1, 3, 3, 4]), 231, -0.5, 0.5));
            let bias = b.constant("b", f32_input(Shape::vector(4), 232, -0.1, 0.1));
            let y = b
                .depthwise_conv2d(
                    "dw",
                    x,
                    w,
                    Some(bias),
                    1,
                    Padding::Same,
                    Activation::HardSwish,
                )
                .unwrap();
            b.output(y);
            b.finish().unwrap()
        };
        let emu_dw_input = || vec![f32_input(Shape::nhwc(1, 5, 5, 4), 233, -1.0, 1.0)];
        for (suffix, numerics) in [
            (
                "reversed",
                EdgeNumerics {
                    accumulation: AccumOrder::Reversed,
                    ..EdgeNumerics::faithful()
                },
            ),
            (
                "fma",
                EdgeNumerics {
                    fused_multiply_add: true,
                    ..EdgeNumerics::faithful()
                },
            ),
        ] {
            let name = format!("dwconv_f32_emu_{suffix}");
            all.push(emu_case(
                &name,
                numerics,
                emu_dw_graph(&name),
                emu_dw_input(),
            ));
        }
    }
    {
        let emu_fc_graph = |name: &str| {
            let mut b = GraphBuilder::new(name);
            let x = b.input("x", Shape::matrix(2, 10));
            let w = b.constant("w", f32_input(Shape::matrix(6, 10), 241, -0.5, 0.5));
            let bias = b.constant("b", f32_input(Shape::vector(6), 242, -0.3, 0.3));
            let y = b
                .fully_connected("fc", x, w, Some(bias), Activation::Relu)
                .unwrap();
            b.output(y);
            b.finish().unwrap()
        };
        let emu_fc_input = || vec![f32_input(Shape::matrix(2, 10), 243, -1.0, 1.0)];
        for (suffix, numerics) in [
            (
                "lanes8",
                EdgeNumerics {
                    accumulation: AccumOrder::Lanes8,
                    ..EdgeNumerics::faithful()
                },
            ),
            (
                "fma",
                EdgeNumerics {
                    fused_multiply_add: true,
                    ..EdgeNumerics::faithful()
                },
            ),
        ] {
            let name = format!("fc_f32_emu_{suffix}");
            all.push(emu_case(
                &name,
                numerics,
                emu_fc_graph(&name),
                emu_fc_input(),
            ));
        }
    }
    {
        // Reduced-precision requantization across the quantized requantizing
        // kernels: the f32 multiplier rounds differently near ties.
        let single = EdgeNumerics {
            requant: RequantMode::Single,
            ..EdgeNumerics::faithful()
        };
        {
            let mut b = GraphBuilder::new("conv2d_q_emu_requant");
            let x = q_input(&mut b, "x", Shape::nhwc(1, 5, 5, 3), 0.02, 128);
            let w = b.constant("w", i8_weights(Shape::new(vec![4, 3, 3, 3]), 251, 0.5));
            let bias = b.constant("b", i32_bias(vec![40, -25, 0, 12]));
            let y = b.push_node(
                "conv",
                OpKind::Conv2d {
                    stride: 1,
                    padding: Padding::Same,
                    activation: Activation::Relu,
                },
                vec![x, w, bias],
                Shape::nhwc(1, 5, 5, 4),
                DType::U8,
                pt(0.06, 10),
            );
            b.output(y);
            all.push(emu_case(
                "conv2d_q_emu_requant",
                single,
                b.finish().unwrap(),
                vec![u8_input(Shape::nhwc(1, 5, 5, 3), 252, 0.02, 128)],
            ));
        }
        {
            let mut b = GraphBuilder::new("dwconv_q_emu_requant");
            let x = q_input(&mut b, "x", Shape::nhwc(1, 5, 5, 3), 0.05, 128);
            let w = b.constant(
                "w",
                i8_weights_per_channel(Shape::new(vec![1, 3, 3, 3]), 253, 3),
            );
            let bias = b.constant("b", i32_bias(vec![15, -10, 4]));
            let y = b.push_node(
                "dw",
                OpKind::DepthwiseConv2d {
                    stride: 1,
                    padding: Padding::Same,
                    activation: Activation::None,
                },
                vec![x, w, bias],
                Shape::nhwc(1, 5, 5, 3),
                DType::U8,
                pt(0.1, 128),
            );
            b.output(y);
            all.push(emu_case(
                "dwconv_q_emu_requant",
                single,
                b.finish().unwrap(),
                vec![u8_input(Shape::nhwc(1, 5, 5, 3), 254, 0.05, 128)],
            ));
        }
        {
            let mut b = GraphBuilder::new("fc_q_emu_requant");
            let x = q_input(&mut b, "x", Shape::matrix(2, 8), 0.03, 128);
            let w = b.constant("w", i8_weights(Shape::matrix(4, 8), 255, 0.6));
            let bias = b.constant("b", i32_bias(vec![50, -30, 10, 0]));
            let y = b.push_node(
                "fc",
                OpKind::FullyConnected {
                    activation: Activation::Relu,
                },
                vec![x, w, bias],
                Shape::matrix(2, 4),
                DType::U8,
                pt(0.08, 20),
            );
            b.output(y);
            all.push(emu_case(
                "fc_q_emu_requant",
                single,
                b.finish().unwrap(),
                vec![u8_input(Shape::matrix(2, 8), 256, 0.03, 128)],
            ));
        }
        {
            let mut b = GraphBuilder::new("avgpool_q_emu_requant");
            let x = q_input(&mut b, "x", Shape::nhwc(1, 4, 4, 2), 0.04, 128);
            let y = b.push_node(
                "ap",
                OpKind::AveragePool2d {
                    pool_h: 2,
                    pool_w: 2,
                    stride: 2,
                    padding: Padding::Valid,
                },
                vec![x],
                Shape::nhwc(1, 2, 2, 2),
                DType::U8,
                pt(0.045, 120),
            );
            b.output(y);
            all.push(emu_case(
                "avgpool_q_emu_requant",
                single,
                b.finish().unwrap(),
                vec![u8_input(Shape::nhwc(1, 4, 4, 2), 257, 0.04, 128)],
            ));
        }
    }

    {
        let mut b = GraphBuilder::new("reshape_q");
        let x = q_input(&mut b, "x", Shape::nhwc(1, 2, 2, 2), 0.03, 99);
        let y = b.push_node(
            "rs",
            OpKind::Reshape { dims: vec![1, 8] },
            vec![x],
            Shape::matrix(1, 8),
            DType::U8,
            pt(0.03, 99),
        );
        b.output(y);
        all.push(case(
            "reshape_q",
            &BOTH_BITWISE,
            none,
            b.finish().unwrap(),
            vec![u8_input(Shape::nhwc(1, 2, 2, 2), 182, 0.03, 99)],
        ));
    }

    all
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn det_values_are_deterministic_and_bounded() {
        let a = det_values(64, 7, -1.0, 1.0);
        let b = det_values(64, 7, -1.0, 1.0);
        assert_eq!(a, b);
        assert!(a.iter().all(|v| (-1.0..1.0).contains(v)));
        assert_ne!(a, det_values(64, 8, -1.0, 1.0), "seed must matter");
    }

    #[test]
    fn every_case_runs_under_all_declared_flavors() {
        for case in cases() {
            for &(flavor, _) in &case.flavors {
                let out = case
                    .run(flavor)
                    .unwrap_or_else(|e| panic!("case {} failed under {flavor:?}: {e}", case.name));
                assert!(!out.is_empty(), "case {} produced no outputs", case.name);
            }
        }
    }

    /// The faithful emulator configuration must be bitwise-identical to the
    /// reference kernels, and every non-faithful knob must actually move
    /// bits on its fixture — otherwise the emulator goldens pin nothing.
    #[test]
    fn emulator_knobs_are_faithful_or_observable() {
        let by_name = |name: &str| {
            cases()
                .into_iter()
                .find(|c| c.name == name)
                .unwrap_or_else(|| panic!("case {name} missing"))
        };
        let faithful = by_name("conv2d_f32_emu_faithful");
        let emulated = faithful.run(KernelFlavor::Reference).unwrap();
        let native = Interpreter::new(&faithful.graph, InterpreterOptions::reference())
            .unwrap()
            .invoke(&faithful.inputs)
            .unwrap();
        assert_eq!(
            emulated, native,
            "faithful emulation must match reference kernels bitwise"
        );

        let baseline = GoldenTensor::of(&emulated[0]);
        for knob in [
            "conv2d_f32_emu_reversed",
            "conv2d_f32_emu_lanes8",
            "conv2d_f32_emu_fma",
        ] {
            let out = by_name(knob).run(KernelFlavor::Reference).unwrap();
            assert!(
                baseline.matches(&out[0], 0.0).is_err(),
                "{knob} produced bits identical to faithful — knob is dead"
            );
            // ...while staying numerically benign (reassociation-level).
            assert!(
                baseline.matches(&out[0], 1e-4).is_ok(),
                "{knob} drifted beyond reassociation tolerance"
            );
        }

        // FTZ: the subnormal fixture must flush every output to zero while
        // the same graph without FTZ keeps denormals alive.
        let ftz = by_name("conv2d_f32_emu_ftz");
        let flushed = ftz.run(KernelFlavor::Reference).unwrap();
        assert!(flushed[0].as_f32().unwrap().iter().all(|v| *v == 0.0));
        let kept = Interpreter::new(&ftz.graph, InterpreterOptions::reference())
            .unwrap()
            .invoke(&ftz.inputs)
            .unwrap();
        assert!(
            kept[0].as_f32().unwrap().iter().any(|v| *v != 0.0),
            "fixture no longer produces subnormals — FTZ golden is vacuous"
        );
    }

    #[test]
    fn golden_tensor_roundtrip_is_bit_exact() {
        let t = Tensor::from_f32(Shape::vector(3), vec![0.1, -0.0, f32::MIN_POSITIVE]).unwrap();
        let g = GoldenTensor::of(&t);
        assert!(g.matches(&t, 0.0).is_ok());
        let other = Tensor::from_f32(Shape::vector(3), vec![0.1, 0.0, f32::MIN_POSITIVE]).unwrap();
        assert!(
            g.matches(&other, 0.0).is_err(),
            "-0.0 vs 0.0 must differ bitwise"
        );
        assert!(
            g.matches(&other, 1e-6).is_ok(),
            "but sits inside any tolerance"
        );
    }
}
