//! Regenerates the checked-in golden kernel fixtures under
//! `crates/nn/goldens/`. Run after an *intentional* kernel change:
//!
//! ```text
//! cargo run -p mlexray-nn --bin golden_gen
//! ```
//!
//! The `golden_kernels` integration test compares every kernel dispatch arm
//! against these files — bitwise for reference kernels, within tolerance for
//! optimized ones — so an unintentional numeric change fails CI.

use mlexray_nn::golden;

fn main() {
    let dir = golden::goldens_dir();
    std::fs::create_dir_all(&dir).expect("create goldens dir");
    let cases = golden::cases();
    for case in &cases {
        let record = case
            .record()
            .unwrap_or_else(|e| panic!("case {} failed: {e}", case.name));
        let json = serde_json::to_string(&record).expect("golden serializes");
        std::fs::write(case.path(), json).expect("write golden");
        println!("wrote {}", case.path().display());
    }
    println!(
        "{} goldens regenerated under {}",
        cases.len(),
        dir.display()
    );
}
