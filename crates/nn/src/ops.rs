use serde::{Deserialize, Serialize};

/// Spatial padding policy for convolution and pooling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Padding {
    /// Output spatial size = ceil(input / stride); zero-pads as needed.
    Same,
    /// No padding; output = floor((input - kernel) / stride) + 1.
    Valid,
}

/// Activation function, either fused into a compute op (the TFLite
/// "fused activation" the converter produces) or standalone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Activation {
    /// Identity.
    None,
    /// `max(0, x)`.
    Relu,
    /// `min(6, max(0, x))` (MobileNet family).
    Relu6,
    /// `x * relu6(x + 3) / 6` (MobileNet v3).
    HardSwish,
    /// `relu6(x + 3) / 6` (MobileNet v3 squeeze-excite gate).
    HardSigmoid,
    /// Logistic sigmoid.
    Sigmoid,
    /// Gaussian error linear unit, tanh approximation (BERT family).
    Gelu,
}

impl Activation {
    /// Applies the activation to one value.
    #[inline]
    pub fn apply(self, x: f32) -> f32 {
        match self {
            Activation::None => x,
            Activation::Relu => x.max(0.0),
            Activation::Relu6 => x.clamp(0.0, 6.0),
            Activation::HardSwish => x * ((x + 3.0).clamp(0.0, 6.0)) / 6.0,
            Activation::HardSigmoid => ((x + 3.0).clamp(0.0, 6.0)) / 6.0,
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Gelu => {
                let c = (2.0f32 / std::f32::consts::PI).sqrt();
                0.5 * x * (1.0 + (c * (x + 0.044715 * x * x * x)).tanh())
            }
        }
    }

    /// Real-valued output clamp implied by the activation, used to clamp
    /// quantized outputs (`None` means unbounded).
    pub fn clamp_bounds(self) -> Option<(f32, f32)> {
        match self {
            Activation::Relu => Some((0.0, f32::INFINITY)),
            Activation::Relu6 => Some((0.0, 6.0)),
            Activation::HardSigmoid | Activation::Sigmoid => Some((0.0, 1.0)),
            _ => None,
        }
    }
}

/// The operation performed by a graph node.
///
/// This is the TFLite-style op inventory needed by every model in the paper's
/// evaluation: the CNN families (MobileNet v1/v2/v3, ResNet50 v2, Inception
/// v3, DenseNet-121, SSD), the audio CNN, NNLM embedding averaging and a small
/// transformer encoder.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum OpKind {
    /// 2-D convolution, weights `[out_c, kh, kw, in_c]`, optional bias.
    Conv2d {
        /// Spatial stride (same for H and W).
        stride: usize,
        /// Padding policy.
        padding: Padding,
        /// Fused activation.
        activation: Activation,
    },
    /// Depthwise 2-D convolution, weights `[1, kh, kw, c]`.
    DepthwiseConv2d {
        /// Spatial stride.
        stride: usize,
        /// Padding policy.
        padding: Padding,
        /// Fused activation.
        activation: Activation,
    },
    /// Fully connected layer, input `[n, in]`, weights `[out, in]`.
    FullyConnected {
        /// Fused activation.
        activation: Activation,
    },
    /// Average pooling over a window. MobileNet v3's squeeze-excite blocks
    /// use this op (with a global window); this is the op whose quantized
    /// kernel the paper found broken (§4.4).
    AveragePool2d {
        /// Pool window height.
        pool_h: usize,
        /// Pool window width.
        pool_w: usize,
        /// Spatial stride.
        stride: usize,
        /// Padding policy.
        padding: Padding,
    },
    /// Max pooling over a window.
    MaxPool2d {
        /// Pool window height.
        pool_h: usize,
        /// Pool window width.
        pool_w: usize,
        /// Spatial stride.
        stride: usize,
        /// Padding policy.
        padding: Padding,
    },
    /// Global reduce-mean over all axes except batch and last (NHWC → `[n, c]`,
    /// `[n, t, d]` → `[n, d]`). This is TFLite's `Mean` — a *different op*
    /// from `AveragePool2d`, which is why MobileNet v2 (Mean) survives
    /// quantization while v3 (AveragePool2d) does not in Fig. 5.
    Mean,
    /// Element-wise addition; rhs may broadcast from `[..tail..]`.
    Add {
        /// Fused activation.
        activation: Activation,
    },
    /// Element-wise multiplication; rhs may be a scalar or `[n,1,1,c]` gate.
    Mul,
    /// Concatenation along an axis.
    Concat {
        /// The concatenation axis.
        axis: usize,
    },
    /// Zero padding of the two spatial axes of an NHWC tensor.
    Pad {
        /// Rows added at the top.
        top: usize,
        /// Rows added at the bottom.
        bottom: usize,
        /// Columns added at the left.
        left: usize,
        /// Columns added at the right.
        right: usize,
    },
    /// Softmax over the last axis.
    Softmax,
    /// Standalone activation node (pre-conversion graphs).
    Act(Activation),
    /// Inference-style batch normalization with constant
    /// `gamma, beta, mean, variance` inputs (folded away by conversion).
    BatchNorm {
        /// Numerical-stability epsilon.
        epsilon: f32,
    },
    /// Layer normalization over the last axis with `gamma, beta` inputs.
    LayerNorm {
        /// Numerical-stability epsilon.
        epsilon: f32,
    },
    /// 2-D matrix multiplication `[m, k] x [k, n]` (or `[n, k]` transposed).
    MatMul {
        /// Treat the second operand as `[n, k]` and multiply by its transpose.
        transpose_b: bool,
    },
    /// Embedding lookup: `i32` ids `[n, l]` + table `[v, d]` → `[n, l, d]`.
    Embedding,
    /// Reshape to an explicit target shape (element count preserved).
    Reshape {
        /// Target dimensions.
        dims: Vec<usize>,
    },
    /// `f32 → u8` quantization boundary (inserted by the quantizer).
    Quantize,
    /// `u8 → f32` dequantization boundary.
    Dequantize,
}

impl OpKind {
    /// The per-layer-type label used by Table 4 of the paper.
    pub fn type_label(&self) -> &'static str {
        match self {
            OpKind::Conv2d { .. } => "Conv",
            OpKind::DepthwiseConv2d { .. } => "D-Conv",
            OpKind::FullyConnected { .. } => "FC",
            OpKind::AveragePool2d { .. } => "AvgPool",
            OpKind::MaxPool2d { .. } => "MaxPool",
            OpKind::Mean => "Mean",
            OpKind::Add { .. } => "Add",
            OpKind::Mul => "Mul",
            OpKind::Concat { .. } => "Concat",
            OpKind::Pad { .. } => "Pad",
            OpKind::Softmax => "Softmax",
            OpKind::Act(_) => "Act",
            OpKind::BatchNorm { .. } => "BatchNorm",
            OpKind::LayerNorm { .. } => "LayerNorm",
            OpKind::MatMul { .. } => "MatMul",
            OpKind::Embedding => "Embedding",
            OpKind::Reshape { .. } => "Reshape",
            OpKind::Quantize => "Quantize",
            OpKind::Dequantize => "Dequantize",
        }
    }

    /// The fused activation carried by this op, if any.
    pub fn fused_activation(&self) -> Option<Activation> {
        match self {
            OpKind::Conv2d { activation, .. }
            | OpKind::DepthwiseConv2d { activation, .. }
            | OpKind::FullyConnected { activation }
            | OpKind::Add { activation } => Some(*activation),
            _ => None,
        }
    }
}

/// Computes the output spatial size of a windowed op.
pub(crate) fn conv_out_size(input: usize, kernel: usize, stride: usize, padding: Padding) -> usize {
    match padding {
        Padding::Same => input.div_ceil(stride),
        Padding::Valid => {
            if input < kernel {
                0
            } else {
                (input - kernel) / stride + 1
            }
        }
    }
}

/// Total leading zero-padding (top/left) for `Same` padding, TFLite style.
pub(crate) fn same_pad_before(input: usize, kernel: usize, stride: usize) -> usize {
    let out = input.div_ceil(stride);
    let total = ((out - 1) * stride + kernel).saturating_sub(input);
    total / 2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activation_values() {
        assert_eq!(Activation::Relu.apply(-1.0), 0.0);
        assert_eq!(Activation::Relu6.apply(9.0), 6.0);
        assert_eq!(Activation::HardSwish.apply(-3.0), 0.0);
        assert_eq!(Activation::HardSwish.apply(3.0), 3.0);
        assert_eq!(Activation::HardSigmoid.apply(3.0), 1.0);
        assert_eq!(Activation::HardSigmoid.apply(-3.0), 0.0);
        assert!((Activation::Sigmoid.apply(0.0) - 0.5).abs() < 1e-6);
        assert!(Activation::Gelu.apply(3.0) > 2.9);
        assert!(Activation::Gelu.apply(-3.0).abs() < 0.01);
    }

    #[test]
    fn conv_out_sizes() {
        assert_eq!(conv_out_size(8, 3, 1, Padding::Same), 8);
        assert_eq!(conv_out_size(8, 3, 2, Padding::Same), 4);
        assert_eq!(conv_out_size(8, 3, 1, Padding::Valid), 6);
        assert_eq!(conv_out_size(8, 3, 2, Padding::Valid), 3);
        assert_eq!(conv_out_size(2, 3, 1, Padding::Valid), 0);
    }

    #[test]
    fn same_padding_amount() {
        // 8 wide, kernel 3, stride 1 -> pad 1 before.
        assert_eq!(same_pad_before(8, 3, 1), 1);
        // stride 2: out 4, total pad = 3*2+... = (3*2+3-8)=1 -> 0 before.
        assert_eq!(same_pad_before(8, 3, 2), 0);
    }

    #[test]
    fn labels_match_table4() {
        assert_eq!(
            OpKind::DepthwiseConv2d {
                stride: 1,
                padding: Padding::Same,
                activation: Activation::None
            }
            .type_label(),
            "D-Conv"
        );
        assert_eq!(OpKind::Mean.type_label(), "Mean");
        assert_eq!(OpKind::Quantize.type_label(), "Quantize");
    }
}
