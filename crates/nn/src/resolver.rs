use serde::{Deserialize, Serialize};

/// Which kernel implementation family the interpreter uses.
///
/// Mirrors TFLite's two built-in op resolvers (§4.4): the production
/// `OpResolver` dispatches *optimized kernels* (im2col, blocked loops), the
/// debugging `RefOpResolver` dispatches *reference kernels* (naive, easy to
/// read, orders of magnitude slower — the paper measures >200x on mobile).
/// ML-EXray leverages the pair to separate optimization bugs from
/// quantization-spec bugs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum KernelFlavor {
    /// Production kernels.
    #[default]
    Optimized,
    /// Naive reference kernels.
    Reference,
}

impl KernelFlavor {
    /// Human-readable label matching the paper's figure legends.
    pub fn label(self) -> &'static str {
        match self {
            KernelFlavor::Optimized => "OpResolver",
            KernelFlavor::Reference => "RefOpResolver",
        }
    }
}

/// Injectable kernel defects reproducing the two real TFLite bugs the paper
/// discovered with per-layer drift analysis (§4.4, Figs. 5–6).
///
/// Both default to **off**; [`KernelBugs::paper_2021`] switches both on for
/// the reproduction experiments. The substitution is documented in DESIGN.md:
/// we cannot ship the 2021 TFLite binaries containing the original defects,
/// so we inject numerically equivalent ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct KernelBugs {
    /// The **optimized** quantized `DepthwiseConv2D` kernel accumulates into
    /// a wrapping 16-bit register instead of 32-bit, overflowing on realistic
    /// activations. Reference kernels are unaffected — exactly the
    /// `Mobile Quant` vs `Mobile Quant Ref` discrepancy of Fig. 5 and the
    /// layer-2 rMSE spike of Fig. 6 (left).
    pub optimized_dwconv_i16_accumulator: bool,
    /// The quantized `AveragePool2D` kernel (in **both** resolvers — it is an
    /// op-spec bug, not an optimization bug) divides the accumulator by the
    /// pool area twice for windows of area >= 16 (the large-window
    /// accumulation path), collapsing outputs toward the quantized zero and
    /// yielding the constant/invalid output that zeroes MobileNet v3 accuracy
    /// in Fig. 5 and the periodic rMSE peaks of Fig. 6 (right). Small branch
    /// pools (Inception's 3x3) are unaffected, as in the paper.
    pub avgpool_double_division: bool,
}

impl KernelBugs {
    /// No injected bugs (library default).
    pub fn none() -> Self {
        KernelBugs::default()
    }

    /// The two defects active in the paper's 2021 TFLite snapshot.
    pub fn paper_2021() -> Self {
        KernelBugs {
            optimized_dwconv_i16_accumulator: true,
            avgpool_double_division: true,
        }
    }

    /// True if any defect is enabled.
    pub fn any(self) -> bool {
        self.optimized_dwconv_i16_accumulator || self.avgpool_double_division
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_clean() {
        assert!(!KernelBugs::default().any());
        assert!(KernelBugs::paper_2021().any());
        assert_eq!(KernelFlavor::default(), KernelFlavor::Optimized);
    }

    #[test]
    fn labels() {
        assert_eq!(KernelFlavor::Optimized.label(), "OpResolver");
        assert_eq!(KernelFlavor::Reference.label(), "RefOpResolver");
    }
}
