use serde::{Deserialize, Serialize};

/// Which kernel implementation family the interpreter uses.
///
/// Mirrors TFLite's two built-in op resolvers (§4.4): the production
/// `OpResolver` dispatches *optimized kernels* (im2col, blocked loops), the
/// debugging `RefOpResolver` dispatches *reference kernels* (naive, easy to
/// read, orders of magnitude slower — the paper measures >200x on mobile).
/// ML-EXray leverages the pair to separate optimization bugs from
/// quantization-spec bugs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum KernelFlavor {
    /// Production kernels.
    #[default]
    Optimized,
    /// Naive reference kernels.
    Reference,
    /// SIMD-tiled kernels: GEMM-family ops run through the runtime-feature-
    /// dispatched micro-kernel in `kernels::gemm` (AVX2/FMA on x86_64, a
    /// bitwise-identical scalar mirror elsewhere); every other op shares the
    /// optimized implementations.
    Simd,
}

impl KernelFlavor {
    /// Human-readable label matching the paper's figure legends.
    pub fn label(self) -> &'static str {
        match self {
            KernelFlavor::Optimized => "OpResolver",
            KernelFlavor::Reference => "RefOpResolver",
            KernelFlavor::Simd => "SimdOpResolver",
        }
    }
}

/// Injectable kernel defects reproducing the two real TFLite bugs the paper
/// discovered with per-layer drift analysis (§4.4, Figs. 5–6).
///
/// Both default to **off**; [`KernelBugs::paper_2021`] switches both on for
/// the reproduction experiments. The substitution is documented in DESIGN.md:
/// we cannot ship the 2021 TFLite binaries containing the original defects,
/// so we inject numerically equivalent ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct KernelBugs {
    /// The **optimized** quantized `DepthwiseConv2D` kernel accumulates into
    /// a wrapping 16-bit register instead of 32-bit, overflowing on realistic
    /// activations. Reference kernels are unaffected — exactly the
    /// `Mobile Quant` vs `Mobile Quant Ref` discrepancy of Fig. 5 and the
    /// layer-2 rMSE spike of Fig. 6 (left).
    pub optimized_dwconv_i16_accumulator: bool,
    /// The quantized `AveragePool2D` kernel (in **both** resolvers — it is an
    /// op-spec bug, not an optimization bug) divides the accumulator by the
    /// pool area twice for windows of area >= 16 (the large-window
    /// accumulation path), collapsing outputs toward the quantized zero and
    /// yielding the constant/invalid output that zeroes MobileNet v3 accuracy
    /// in Fig. 5 and the periodic rMSE peaks of Fig. 6 (right). Small branch
    /// pools (Inception's 3x3) are unaffected, as in the paper.
    pub avgpool_double_division: bool,
    /// The **SIMD** float GEMM micro-kernel drops the last element of the
    /// K-loop remainder whenever K is not a multiple of the 8-wide vector
    /// width — the classic tile-boundary off-by-one a hand-unrolled kernel
    /// ships with. Only the [`KernelFlavor::Simd`] f32 GEMM paths (conv /
    /// fully-connected) are affected; it is a test-only knob pinning the
    /// differential debugger against tile-boundary defects.
    pub simd_gemm_k_tail_skip: bool,
}

impl KernelBugs {
    /// No injected bugs (library default).
    pub fn none() -> Self {
        KernelBugs::default()
    }

    /// The two defects active in the paper's 2021 TFLite snapshot. The SIMD
    /// tile-boundary knob stays off — it models this repo's own kernel
    /// campaign, not the paper's snapshot.
    pub fn paper_2021() -> Self {
        KernelBugs {
            optimized_dwconv_i16_accumulator: true,
            avgpool_double_division: true,
            simd_gemm_k_tail_skip: false,
        }
    }

    /// True if any defect is enabled.
    pub fn any(self) -> bool {
        self.optimized_dwconv_i16_accumulator
            || self.avgpool_double_division
            || self.simd_gemm_k_tail_skip
    }
}

/// Summation order of a float GEMM-family reduction (conv im2col rows,
/// depthwise kernel windows, fully-connected rows) under the edge emulator.
///
/// Real edge runtimes reassociate float sums freely — NEON lane reductions,
/// reversed unrolled tails, accumulator trees — and every reassociation is a
/// (benign) bit-level divergence the differential debugger must be able to
/// reproduce and pin down.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum AccumOrder {
    /// One accumulator, terms added in canonical (reference-kernel) order.
    #[default]
    Sequential,
    /// One accumulator, terms added in reverse order (unrolled-tail-first
    /// codegen).
    Reversed,
    /// Eight partial accumulators striped over the term index (SIMD lane
    /// reduction), combined pairwise at the end.
    Lanes8,
}

/// Precision of the requantization multiplier applied to quantized
/// accumulators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum RequantMode {
    /// Double-precision multiplier (this crate's native kernels; TFLite's
    /// off-device reference arithmetic).
    #[default]
    Double,
    /// Single-precision multiplier — the reduced-precision fixed-point
    /// approximation many edge runtimes use, which rounds differently near
    /// ties.
    Single,
}

/// The numerics knobs of the edge-emulator backend: how an emulated edge
/// runtime's arithmetic deviates from this crate's native kernels.
///
/// The default configuration is *faithful*: sequential accumulation, split
/// multiply-add, denormals preserved, double-precision requantization —
/// bitwise-identical to the reference kernels. Each knob then introduces one
/// realistic class of cross-runtime numeric divergence; device profiles in
/// `mlexray-edgesim` bundle them per target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct EdgeNumerics {
    /// Summation order of float GEMM reductions.
    pub accumulation: AccumOrder,
    /// Contract multiply-add pairs into fused `mul_add` (FMA) instructions,
    /// which skip the intermediate rounding step.
    pub fused_multiply_add: bool,
    /// Flush subnormal float outputs to (signed) zero after every node, as
    /// ARM NEON does by default.
    pub flush_to_zero: bool,
    /// Requantization multiplier precision for quantized kernels.
    pub requant: RequantMode,
}

impl EdgeNumerics {
    /// The faithful configuration: every knob neutral. An emulator running
    /// this config is bitwise-identical to the reference kernels.
    pub fn faithful() -> Self {
        EdgeNumerics::default()
    }

    /// True when every knob is at its faithful (native-arithmetic) setting.
    pub fn is_faithful(self) -> bool {
        self == EdgeNumerics::faithful()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_clean() {
        assert!(!KernelBugs::default().any());
        assert!(KernelBugs::paper_2021().any());
        assert_eq!(KernelFlavor::default(), KernelFlavor::Optimized);
    }

    #[test]
    fn labels() {
        assert_eq!(KernelFlavor::Optimized.label(), "OpResolver");
        assert_eq!(KernelFlavor::Reference.label(), "RefOpResolver");
        assert_eq!(KernelFlavor::Simd.label(), "SimdOpResolver");
    }
}
