//! Pass 6: graph hygiene (`EX501`–`EX504`).
//!
//! Nothing here makes a graph wrong to run — dead slots and unreachable
//! nodes execute fine — but they are the residue of a conversion or
//! quantization pass that forgot to clean up, they inflate the memory plan
//! (dead activations still get arena slots and stay live to the horizon),
//! and in a hand-edited artifact they usually mean the author wired up the
//! wrong tensor.

use std::collections::HashSet;

use crate::graph::{Graph, TensorDef, TensorId};

use super::{Diagnostic, LintCode};

pub(super) fn check(graph: &Graph) -> Vec<Diagnostic> {
    let mut diags = Vec::new();

    let mut consumed: HashSet<TensorId> = HashSet::new();
    for node in graph.nodes() {
        consumed.extend(node.inputs.iter().copied());
    }
    let outputs: HashSet<TensorId> = graph.outputs().iter().copied().collect();

    for (i, def) in graph.tensors().iter().enumerate() {
        let id = TensorId(i);
        if consumed.contains(&id) || outputs.contains(&id) {
            continue;
        }
        match def {
            TensorDef::Activation { .. } => diags.push(
                Diagnostic::new(
                    LintCode::DeadActivation,
                    "activation is never consumed and is not a graph output (it still gets an \
                     arena slot)",
                )
                .with_tensor(def.name()),
            ),
            TensorDef::Constant { .. } => diags.push(
                Diagnostic::new(
                    LintCode::UnusedConstant,
                    "constant is referenced by no node",
                )
                .with_tensor(def.name()),
            ),
            TensorDef::Input { .. } => diags.push(
                Diagnostic::new(LintCode::UnusedInput, "graph input is never consumed")
                    .with_tensor(def.name()),
            ),
        }
    }

    // Nodes no graph output transitively depends on. Walk producers
    // backwards from the outputs; anything left over is unreachable.
    let mut needed: Vec<TensorId> = graph.outputs().to_vec();
    let mut live_tensors: HashSet<TensorId> = needed.iter().copied().collect();
    let mut live_nodes: HashSet<usize> = HashSet::new();
    while let Some(id) = needed.pop() {
        for (j, node) in graph.nodes().iter().enumerate() {
            if node.output == id && live_nodes.insert(j) {
                for &input in &node.inputs {
                    if live_tensors.insert(input) {
                        needed.push(input);
                    }
                }
            }
        }
    }
    for (j, node) in graph.nodes().iter().enumerate() {
        if !live_nodes.contains(&j) {
            diags.push(
                Diagnostic::new(
                    LintCode::UnreachableNode,
                    "no graph output depends on this node (it still executes every invoke)",
                )
                .with_node(&node.name),
            );
        }
    }

    diags
}
