//! Pass 5: batchability certification (`EX401`–`EX402`).
//!
//! The interpreter's `is_batchable` flag decides whether the serving layer
//! may stack frames along the leading dimension. This pass re-derives that
//! verdict node by node from first principles — which operands scale with
//! the batch, which broadcasts stay frame-periodic under stacking — and
//! records *why* a graph is not batchable. A disagreement with the
//! interpreter's own claim is a regression tripwire ([`super::LintCode::BatchabilityDisagreement`]):
//! either the certifier or the dispatcher learned a rule the other didn't.

use crate::graph::{Graph, TensorId};
use crate::interpreter::batch_safe;
use crate::ops::OpKind;

use super::{Diagnostic, LintCode};

/// Statically certifies whether stacking invocations along the leading
/// dimension preserves per-frame semantics, with one human-readable reason
/// per obstruction. `(true, vec![])` means certified batchable.
pub fn certify_batchable(graph: &Graph) -> (bool, Vec<String>) {
    let mut reasons = Vec::new();
    let is_const = |id: TensorId| graph.tensor(id).as_constant().is_some();
    let shape = |id: TensorId| graph.tensor(id).shape();
    let name = |id: TensorId| graph.tensor(id).name();

    for def in graph.tensors() {
        if def.as_constant().is_none() && def.shape().rank() < 2 {
            reasons.push(format!(
                "runtime tensor '{}' has rank {} (< 2): its leading dimension is a feature \
                 dimension, so scaling it changes kernel geometry",
                def.name(),
                def.shape().rank()
            ));
        }
    }

    for node in graph.nodes() {
        match node.inputs.first() {
            None => {
                reasons.push(format!("node '{}' has no data operand to stack", node.name));
                continue;
            }
            Some(&data) if is_const(data) => {
                reasons.push(format!(
                    "node '{}' reads constant data operand '{}', which cannot scale with the \
                     batch",
                    node.name,
                    name(data)
                ));
                continue;
            }
            Some(_) => {}
        }
        match &node.op {
            OpKind::Conv2d { .. }
            | OpKind::DepthwiseConv2d { .. }
            | OpKind::FullyConnected { .. }
            | OpKind::MatMul { .. }
            | OpKind::Embedding
            | OpKind::BatchNorm { .. }
            | OpKind::LayerNorm { .. } => {
                for &id in &node.inputs[1..] {
                    if !is_const(id) {
                        reasons.push(format!(
                            "node '{}' parameter operand '{}' is runtime-computed; the kernel \
                             applies it unstacked",
                            node.name,
                            name(id)
                        ));
                    }
                }
            }
            OpKind::Concat { axis } => {
                if *axis == 0 {
                    reasons.push(format!(
                        "node '{}' concatenates along axis 0, which interleaves with the \
                         stacked batch dimension",
                        node.name
                    ));
                }
                for &id in &node.inputs {
                    if is_const(id) {
                        reasons.push(format!(
                            "node '{}' concatenates constant '{}', which cannot scale with \
                             the batch",
                            node.name,
                            name(id)
                        ));
                    }
                }
            }
            OpKind::Add { .. } if node.inputs.len() >= 2 => {
                // A constant rhs broadcasts by trailing suffix, which repeats
                // per frame under stacking; a runtime rhs must stack in
                // lockstep with the lhs, so partial shapes are out.
                let rhs = node.inputs[1];
                if !is_const(rhs) && shape(rhs) != shape(node.inputs[0]) {
                    reasons.push(format!(
                        "node '{}' adds runtime tensor '{}' of shape {} to shape {}; \
                         broadcast is not frame-periodic under stacking",
                        node.name,
                        name(rhs),
                        shape(rhs),
                        shape(node.inputs[0])
                    ));
                }
            }
            OpKind::Mul if node.inputs.len() >= 2 => {
                let (lhs, rhs) = (node.inputs[0], node.inputs[1]);
                let ok = if is_const(rhs) {
                    // Multi-element constants index by flat position, which
                    // shifts once frames are stacked; scalars are immune.
                    shape(rhs).num_elements() == 1
                } else {
                    let (ls, rs) = (shape(lhs), shape(rhs));
                    rs == ls
                        || (ls.rank() == 4
                            && rs.rank() == 4
                            && rs.dims()[0] == ls.dims()[0]
                            && rs.dims()[1] == 1
                            && rs.dims()[2] == 1
                            && rs.dims()[3] == ls.dims()[3])
                };
                if !ok {
                    reasons.push(format!(
                        "node '{}' multiplies by '{}' of shape {}, which does not stay \
                         aligned when frames are stacked",
                        node.name,
                        name(rhs),
                        shape(rhs)
                    ));
                }
            }
            _ => {}
        }
    }

    (reasons.is_empty(), reasons)
}

pub(super) fn check(graph: &Graph) -> Vec<Diagnostic> {
    let (certified, reasons) = certify_batchable(graph);
    let claimed = batch_safe(graph);
    diagnose(certified, &reasons, claimed)
}

/// Turns a certification verdict and the interpreter's claim into
/// diagnostics. Split out so tests can feed a fake claim and exercise the
/// disagreement path, which `check` can never reach unless the certifier
/// and dispatcher drift apart.
fn diagnose(certified: bool, reasons: &[String], claimed: bool) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    if certified != claimed {
        diags.push(Diagnostic::new(
            LintCode::BatchabilityDisagreement,
            format!(
                "static certification says batchable={certified}, interpreter dispatch says \
                 batchable={claimed}; one of them learned a rule the other didn't"
            ),
        ));
    }
    if !certified {
        for reason in reasons {
            diags.push(Diagnostic::new(LintCode::NotBatchable, reason.clone()));
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::diagnose;
    use crate::analysis::LintCode;

    #[test]
    fn disagreement_is_flagged() {
        let d = diagnose(true, &[], false);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, LintCode::BatchabilityDisagreement);

        let reasons = vec!["node 'x' reads constant data".to_string()];
        let d = diagnose(false, &reasons, true);
        assert_eq!(d.len(), 2);
        assert!(d
            .iter()
            .any(|d| d.code == LintCode::BatchabilityDisagreement));
        assert!(d.iter().any(|d| d.code == LintCode::NotBatchable));
    }

    #[test]
    fn agreement_reports_reasons_only() {
        let reasons = vec!["rank-1 runtime tensor".to_string()];
        let d = diagnose(false, &reasons, false);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].code, LintCode::NotBatchable);
        assert!(diagnose(true, &[], true).is_empty());
    }
}
