//! Pass 3: quantization consistency (`EX201`–`EX208`).
//!
//! The paper's classic edge-deployment bug class: quantization parameters
//! that are individually plausible but jointly wrong. Checks every tensor's
//! params against the TFLite full-integer scheme the kernels implement
//! (asymmetric per-tensor `u8` activations, symmetric `i8` weights with
//! per-tensor or per-channel scales, bare `i32` biases), then walks every
//! node to prove its operands agree across the float/quant boundary — a
//! `u8` conv fed `f32` weights fails at kernel dispatch today, but only
//! once traffic arrives.

use mlexray_tensor::{DType, QuantParams};

use crate::graph::{Graph, TensorDef};
use crate::ops::OpKind;

use super::{Diagnostic, LintCode};

pub(super) fn check(graph: &Graph) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for def in graph.tensors() {
        check_tensor(def, &mut diags);
    }
    for node in graph.nodes() {
        check_node(graph, node, &mut diags);
    }
    diags
}

/// Per-tensor parameter sanity, independent of how the tensor is consumed.
fn check_tensor(def: &TensorDef, diags: &mut Vec<Diagnostic>) {
    let at = |code: LintCode, msg: String| Diagnostic::new(code, msg).with_tensor(def.name());
    let Some(q) = def.quant() else {
        // Quantized element types are meaningless without parameters: the
        // kernels cannot map `u8`/`i8` payloads back to reals. `i32` biases
        // are the exception — their scale is derived from input x weights.
        if matches!(def.dtype(), DType::U8 | DType::I8) {
            diags.push(at(
                LintCode::MissingQuantParams,
                format!("{:?} tensor has no quantization parameters", def.dtype()),
            ));
        }
        return;
    };

    if def.dtype() == DType::F32 {
        diags.push(at(
            LintCode::FloatWithQuantParams,
            "f32 tensor carries quantization parameters (they are ignored)".into(),
        ));
    }

    let (scales, zero_points): (Vec<f32>, Vec<i32>) = match q {
        QuantParams::PerTensor { scale, zero_point } => (vec![*scale], vec![*zero_point]),
        QuantParams::PerChannel {
            scales,
            zero_points,
            axis,
        } => {
            if scales.is_empty() || scales.len() != zero_points.len() {
                diags.push(at(
                    LintCode::PerChannelInvalid,
                    format!(
                        "per-channel params have {} scales but {} zero points",
                        scales.len(),
                        zero_points.len()
                    ),
                ));
                return;
            }
            if *axis >= def.shape().rank() || def.shape().dims()[*axis] != scales.len() {
                diags.push(at(
                    LintCode::PerChannelInvalid,
                    format!(
                        "per-channel axis {axis} with {} scales does not fit shape {}",
                        scales.len(),
                        def.shape()
                    ),
                ));
                return;
            }
            if !matches!(def, TensorDef::Constant { .. }) {
                // Runtime tensors are asymmetric per-tensor by construction;
                // every kernel reads their params through `.scalar()`, which
                // would silently use channel 0's scale for all channels.
                diags.push(at(
                    LintCode::PerChannelOnActivation,
                    "per-channel parameters on a runtime tensor (kernels read per-tensor params)"
                        .into(),
                ));
            }
            (scales.clone(), zero_points.clone())
        }
    };

    for (c, &s) in scales.iter().enumerate() {
        if !s.is_finite() || s <= 0.0 {
            diags.push(at(
                LintCode::InvalidScale,
                format!("channel {c} scale {s} is not finite and positive"),
            ));
        }
    }
    for (c, &zp) in zero_points.iter().enumerate() {
        match def.dtype() {
            DType::U8 => {
                if !(0..=255).contains(&zp) {
                    diags.push(at(
                        LintCode::InvalidZeroPoint,
                        format!("channel {c} zero point {zp} outside u8 range [0, 255]"),
                    ));
                }
            }
            DType::I8 => {
                if !(-128..=127).contains(&zp) {
                    diags.push(at(
                        LintCode::InvalidZeroPoint,
                        format!("channel {c} zero point {zp} outside i8 range [-128, 127]"),
                    ));
                } else if zp != 0 {
                    diags.push(at(
                        LintCode::AsymmetricWeights,
                        format!(
                            "channel {c} zero point {zp} != 0; i8 weights are symmetric in \
                             this scheme"
                        ),
                    ));
                }
            }
            DType::I32 => {
                if zp != 0 {
                    diags.push(at(
                        LintCode::InvalidZeroPoint,
                        format!("channel {c} zero point {zp} != 0 on an i32 bias"),
                    ));
                }
            }
            DType::F32 => {}
        }
    }
}

/// Cross-operand agreement at each node: the requant chain must not mix
/// float and quantized payloads without an explicit boundary op.
fn check_node(graph: &Graph, node: &crate::graph::Node, diags: &mut Vec<Diagnostic>) {
    let dtype = |i: usize| graph.tensor(node.inputs[i]).dtype();
    let tname = |i: usize| graph.tensor(node.inputs[i]).name();
    let boundary = |msg: String, tensor: &str| {
        Diagnostic::new(LintCode::QuantBoundary, msg)
            .with_node(&node.name)
            .with_tensor(tensor)
    };
    // Arity violations are reported by the shape pass; don't double up here.
    match &node.op {
        OpKind::Conv2d { .. } | OpKind::DepthwiseConv2d { .. } | OpKind::FullyConnected { .. } => {
            if node.inputs.len() < 2 {
                return;
            }
            let data = dtype(0);
            let want_w = match data {
                DType::U8 => DType::I8,
                _ => DType::F32,
            };
            if dtype(1) != want_w {
                diags.push(boundary(
                    format!(
                        "{:?} data with {:?} weights (expected {:?})",
                        data,
                        dtype(1),
                        want_w
                    ),
                    tname(1),
                ));
            }
            if node.inputs.len() > 2 {
                let want_b = match data {
                    DType::U8 => DType::I32,
                    _ => DType::F32,
                };
                if dtype(2) != want_b {
                    diags.push(boundary(
                        format!(
                            "{:?} data with {:?} bias (expected {:?})",
                            data,
                            dtype(2),
                            want_b
                        ),
                        tname(2),
                    ));
                }
            }
            // Per-channel weight scales must run along the axis the kernels
            // iterate: output channels for conv/fc, channel-last for
            // depthwise. A folded-then-requantized model with the wrong axis
            // is §2's silent accuracy bug.
            if let Some(QuantParams::PerChannel { axis, .. }) = graph.tensor(node.inputs[1]).quant()
            {
                let want_axis = match node.op {
                    OpKind::DepthwiseConv2d { .. } => 3,
                    _ => 0,
                };
                if *axis != want_axis {
                    diags.push(
                        Diagnostic::new(
                            LintCode::PerChannelInvalid,
                            format!(
                                "weight per-channel axis {axis}, but {} scales run along \
                                 axis {want_axis}",
                                node.op.type_label()
                            ),
                        )
                        .with_node(&node.name)
                        .with_tensor(tname(1)),
                    );
                }
            }
        }
        OpKind::Add { .. } | OpKind::Mul | OpKind::Concat { .. } => {
            if node.inputs.is_empty() {
                return;
            }
            let data = dtype(0);
            for i in 1..node.inputs.len() {
                if dtype(i) != data {
                    diags.push(boundary(
                        format!(
                            "mixes {:?} and {:?} operands without a quantize/dequantize \
                             boundary",
                            data,
                            dtype(i)
                        ),
                        tname(i),
                    ));
                }
            }
        }
        _ => {}
    }
}
