//! Pass 4: memory-plan alias verification (`EX301`–`EX302`).
//!
//! [`MemoryPlan`] assigns first-fit arena offsets so lifetime-disjoint
//! activations share bytes. The planner's own tests exercise it, but a
//! checker that shares the planner's code would share its bugs; this pass
//! re-derives every runtime tensor's byte size and live range straight from
//! the graph and then proves, pairwise, that no two placements overlap both
//! in lifetime and in byte range. The same verifier runs (debug builds
//! only) inside the interpreter's arena setup, so a future planner
//! regression fails loudly in tests instead of silently corrupting
//! activations in release.

use crate::graph::{Graph, TensorDef, TensorId};
use crate::plan::{batched_shape, MemoryPlan};

use super::{Diagnostic, LintCode};

pub(super) fn check(graph: &Graph) -> Vec<Diagnostic> {
    match MemoryPlan::for_graph(graph, 1) {
        Ok(plan) => verify_plan(graph, &plan),
        Err(e) => vec![Diagnostic::new(
            LintCode::PlanSlotInvalid,
            format!("graph cannot be planned: {e}"),
        )],
    }
}

/// Independently verifies `plan` against `graph`: every runtime tensor gets
/// exactly one slot of the right size and lifetime, no placement extends
/// past the arena, and no two lifetime-overlapping placements share bytes.
///
/// Returns one [`Diagnostic`] per violation; an empty vector is a proof
/// (over the re-derived lifetimes) that the arena layout is safe.
pub fn verify_plan(graph: &Graph, plan: &MemoryPlan) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let horizon = graph.nodes().len();
    let name = |id: TensorId| graph.tensor(id).name();

    // Re-derive (bytes, first_use, last_use) for every runtime tensor.
    let mut expected = Vec::new();
    for (i, def) in graph.tensors().iter().enumerate() {
        let id = TensorId(i);
        let first_use = match def {
            TensorDef::Constant { .. } => {
                if plan.slot(id).is_some() {
                    diags.push(
                        Diagnostic::new(
                            LintCode::PlanSlotInvalid,
                            "constant tensor has an arena slot (constants are baked into the \
                             model)",
                        )
                        .with_tensor(name(id)),
                    );
                }
                continue;
            }
            TensorDef::Input { .. } => 0,
            TensorDef::Activation { .. } => graph
                .nodes()
                .iter()
                .position(|n| n.output == id)
                .unwrap_or(horizon),
        };
        let bytes = match batched_shape(def.shape(), plan.batch()) {
            Ok(s) => s.num_elements() * def.dtype().byte_size(),
            Err(e) => {
                diags.push(
                    Diagnostic::new(
                        LintCode::PlanSlotInvalid,
                        format!("cannot size slot at batch {}: {e}", plan.batch()),
                    )
                    .with_tensor(name(id)),
                );
                continue;
            }
        };
        let mut last_use = graph
            .nodes()
            .iter()
            .enumerate()
            .filter(|(_, n)| n.inputs.contains(&id))
            .map(|(j, _)| j)
            .max()
            .unwrap_or(first_use);
        if graph.outputs().contains(&id) {
            last_use = horizon;
        }
        expected.push((id, bytes, first_use, last_use));
    }

    // Each runtime tensor must have a slot agreeing with the re-derivation.
    let mut verified = Vec::new();
    for (id, bytes, first_use, last_use) in expected {
        let Some(slot) = plan.slot(id) else {
            diags.push(
                Diagnostic::new(
                    LintCode::PlanSlotInvalid,
                    "runtime tensor has no arena slot",
                )
                .with_tensor(name(id)),
            );
            continue;
        };
        if slot.bytes != bytes {
            diags.push(
                Diagnostic::new(
                    LintCode::PlanSlotInvalid,
                    format!("slot holds {} bytes, tensor needs {bytes}", slot.bytes),
                )
                .with_tensor(name(id)),
            );
        }
        if (slot.first_use, slot.last_use) != (first_use, last_use) {
            diags.push(
                Diagnostic::new(
                    LintCode::PlanSlotInvalid,
                    format!(
                        "slot lifetime [{}, {}] != derived lifetime [{first_use}, {last_use}]",
                        slot.first_use, slot.last_use
                    ),
                )
                .with_tensor(name(id)),
            );
        }
        if slot.offset + slot.bytes > plan.arena_bytes() {
            diags.push(
                Diagnostic::new(
                    LintCode::PlanSlotInvalid,
                    format!(
                        "slot [{}, {}) extends past the {}-byte arena",
                        slot.offset,
                        slot.offset + slot.bytes,
                        plan.arena_bytes()
                    ),
                )
                .with_tensor(name(id)),
            );
        }
        // Alias-check against the *derived* lifetime, not the slot's own
        // claim — a planner that shrank a lifetime must not be able to
        // vouch for its own placements.
        verified.push((id, *slot, first_use, last_use));
    }

    for (i, &(a_id, a, a_first, a_last)) in verified.iter().enumerate() {
        for &(b_id, b, b_first, b_last) in verified.iter().skip(i + 1) {
            let live_together = a_first <= b_last && b_first <= a_last;
            let bytes_disjoint = a.offset + a.bytes <= b.offset || b.offset + b.bytes <= a.offset;
            if live_together && !bytes_disjoint {
                diags.push(
                    Diagnostic::new(
                        LintCode::PlanAliasOverlap,
                        format!(
                            "live tensors '{}' [{}, {}) and '{}' [{}, {}) share arena bytes",
                            name(a_id),
                            a.offset,
                            a.offset + a.bytes,
                            name(b_id),
                            b.offset,
                            b.offset + b.bytes
                        ),
                    )
                    .with_tensor(name(a_id)),
                );
            }
        }
    }
    diags
}
