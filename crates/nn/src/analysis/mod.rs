//! exray-lint: a multi-pass static analyzer over the [`Graph`] IR.
//!
//! Everything else in this workspace debugs a model by *running* it —
//! golden suites, per-layer differential replay, online drift validation.
//! This module is the pre-deploy complement: it proves shape, dtype,
//! quantization, memory-plan and batchability safety from the graph alone,
//! before a single frame is invoked. The serving registry runs it at
//! registration time and rejects models carrying [`Severity::Deny`]
//! diagnostics, and the `exray-lint` binary (in `mlexray-models`) lints any
//! zoo model or serialized graph from the command line.
//!
//! # Passes
//!
//! [`analyze`] runs six passes in order:
//!
//! 1. **Structure** (`EX001`–`EX009`): the topological invariants
//!    [`Graph::validate`] enforces — which now *delegates to this pass* —
//!    plus the gaps the analyzer closed: graph outputs must be produced by
//!    a node, and tensor/node display names must be unique (differential
//!    debugging aligns layers by name). A structural Deny stops the run:
//!    later passes index tensors by id and need the graph well-formed.
//! 2. **Shape & dtype inference** (`EX101`–`EX104`): re-derives every node
//!    output's shape and dtype from op semantics and diffs them against the
//!    declarations, catching graphs assembled through the unchecked
//!    low-level constructors.
//! 3. **Quantization consistency** (`EX201`–`EX208`): scale/zero-point
//!    range sanity, per-channel axis agreement, float↔quant boundary
//!    mismatches and requant-chain dtype agreement — the paper's classic
//!    edge-deployment bug class.
//! 4. **Memory-plan alias verification** (`EX301`–`EX302`):
//!    [`verify_plan`] independently recomputes every runtime tensor's
//!    lifetime and proves the first-fit arena offsets never overlap two
//!    live tensors, so the zero-allocation arena is proven safe rather
//!    than trusted (the interpreter re-checks this under
//!    `debug_assertions` at arena-setup time).
//! 5. **Batchability certification** (`EX401`–`EX402`):
//!    [`certify_batchable`] statically derives whether stacking frames
//!    preserves per-frame semantics and cross-checks the interpreter's own
//!    `is_batchable` claim.
//! 6. **Graph hygiene** (`EX501`–`EX504`): dead activations, unused
//!    constants, unreachable nodes, unused inputs.
//!
//! # Example
//!
//! ```
//! use mlexray_nn::analysis::{analyze, Severity};
//! use mlexray_nn::{Activation, GraphBuilder, Padding};
//! use mlexray_tensor::{Shape, Tensor};
//!
//! let mut b = GraphBuilder::new("tiny");
//! let x = b.input("x", Shape::nhwc(1, 4, 4, 2));
//! let w = b.constant("w", Tensor::filled_f32(Shape::new(vec![2, 1, 1, 2]), 0.5));
//! let y = b.conv2d("conv", x, w, None, 1, Padding::Same, Activation::Relu)?;
//! b.output(y);
//! let report = analyze(&b.finish()?);
//! assert!(report.is_clean());
//! assert_eq!(report.count(Severity::Deny), 0);
//! # Ok::<(), mlexray_nn::NnError>(())
//! ```

use std::fmt;
use std::str::FromStr;

use serde::value::{DeError, Value};
use serde::{Deserialize, Serialize};

use crate::graph::Graph;

mod batching;
mod hygiene;
pub mod mutate;
mod plan_check;
mod quantcheck;
mod shapes;
mod structure;

pub use batching::certify_batchable;
pub use plan_check::verify_plan;

/// How severe a [`Diagnostic`] is.
///
/// Ordered `Info < Warn < Deny`, so the worst severity of a report is its
/// maximum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Severity {
    /// Informational finding; never blocks anything.
    Info,
    /// Suspicious but executable; surfaced, not blocking.
    Warn,
    /// The graph is broken or unsafe to run; registration rejects it.
    Deny,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        })
    }
}

macro_rules! lint_codes {
    ($($variant:ident = $code:literal, $sev:ident, $desc:literal;)+) => {
        /// Every lint the analyzer can emit, identified by a stable
        /// `EXnnn` code (serialized as that string).
        ///
        /// The hundreds digit groups codes by pass: `EX0xx` structure,
        /// `EX1xx` shape/dtype inference, `EX2xx` quantization, `EX3xx`
        /// memory plan, `EX4xx` batchability, `EX5xx` hygiene.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        pub enum LintCode {
            $(#[doc = $desc] $variant,)+
        }

        impl LintCode {
            /// Every code, in numeric order.
            pub const ALL: &'static [LintCode] = &[$(LintCode::$variant,)+];

            /// The stable `EXnnn` identifier.
            pub fn as_str(self) -> &'static str {
                match self { $(LintCode::$variant => $code,)+ }
            }

            /// The severity this code always carries.
            pub fn severity(self) -> Severity {
                match self { $(LintCode::$variant => Severity::$sev,)+ }
            }

            /// One-line description (what the lint proves).
            pub fn description(self) -> &'static str {
                match self { $(LintCode::$variant => $desc,)+ }
            }
        }

        impl FromStr for LintCode {
            type Err = String;
            fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
                match s {
                    $($code => Ok(LintCode::$variant),)+
                    other => Err(format!("unknown lint code '{other}'")),
                }
            }
        }
    };
}

lint_codes! {
    NoInputs = "EX001", Deny, "graph declares no inputs";
    NoOutputs = "EX002", Deny, "graph declares no outputs";
    MissingTensor = "EX003", Deny, "a node or interface references a tensor slot that does not exist";
    UseBeforeDef = "EX004", Deny, "a node reads an activation before any node produces it";
    WrittenTwice = "EX005", Deny, "two nodes write the same activation slot";
    NonActivationOutput = "EX006", Deny, "a node writes into an input or constant slot";
    OutputUnproduced = "EX007", Deny, "a graph output is not produced by any node";
    DuplicateTensorName = "EX008", Deny, "two tensor slots share a display name";
    DuplicateNodeName = "EX009", Deny, "two nodes share a display name";
    ShapeMismatch = "EX101", Deny, "a declared tensor shape disagrees with the shape inferred from op semantics";
    DTypeMismatch = "EX102", Deny, "a declared tensor dtype disagrees with the dtype inferred from op semantics";
    OperandInvalid = "EX103", Deny, "an operand's rank, arity or geometry violates the op's contract";
    UnsupportedDType = "EX104", Deny, "no kernel exists for this op at this input dtype";
    InvalidScale = "EX201", Deny, "a quantization scale is non-positive or non-finite";
    InvalidZeroPoint = "EX202", Deny, "a quantization zero point is outside its dtype's representable range";
    MissingQuantParams = "EX203", Deny, "an integer runtime tensor carries no quantization parameters";
    QuantBoundary = "EX204", Deny, "operand dtypes straddle the float/quantized boundary inconsistently";
    FloatWithQuantParams = "EX205", Warn, "a float tensor carries quantization parameters";
    PerChannelInvalid = "EX206", Deny, "per-channel parameter vectors disagree with the axis dimension";
    PerChannelOnActivation = "EX207", Deny, "a runtime tensor carries per-channel parameters (kernels require per-tensor)";
    AsymmetricWeights = "EX208", Warn, "signed weights carry a nonzero zero point (kernels assume symmetric)";
    PlanAliasOverlap = "EX301", Deny, "two lifetime-overlapping planned tensors share arena bytes";
    PlanSlotInvalid = "EX302", Deny, "a planned slot is missing or disagrees with independently recomputed size/lifetime";
    BatchabilityDisagreement = "EX401", Warn, "static batchability derivation disagrees with the interpreter's claim";
    NotBatchable = "EX402", Info, "the graph is certified non-batchable (frames cannot be stacked)";
    DeadActivation = "EX501", Warn, "an activation slot is never consumed and is not a graph output";
    UnusedConstant = "EX502", Warn, "a constant is referenced by no node";
    UnreachableNode = "EX503", Warn, "no graph output depends on this node";
    UnusedInput = "EX504", Warn, "a graph input is never consumed";
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl Serialize for LintCode {
    fn to_value(&self) -> Value {
        Value::String(self.as_str().to_owned())
    }
}

impl Deserialize for LintCode {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) => s.parse().map_err(DeError::msg),
            other => Err(DeError::unexpected("lint code string", other)),
        }
    }
}

/// One finding: a [`LintCode`], its severity, the node/tensor it anchors to
/// (when known) and a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// The lint that fired.
    pub code: LintCode,
    /// Severity (always `code.severity()`).
    pub severity: Severity,
    /// Display name of the node the finding anchors to, when any.
    pub node: Option<String>,
    /// Display name of the tensor the finding anchors to, when any.
    pub tensor: Option<String>,
    /// What exactly is wrong.
    pub message: String,
}

impl Diagnostic {
    /// A diagnostic with no provenance.
    pub fn new(code: LintCode, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: code.severity(),
            node: None,
            tensor: None,
            message: message.into(),
        }
    }

    /// Attaches the node the finding anchors to.
    pub fn with_node(mut self, node: impl Into<String>) -> Self {
        self.node = Some(node.into());
        self
    }

    /// Attaches the tensor the finding anchors to.
    pub fn with_tensor(mut self, tensor: impl Into<String>) -> Self {
        self.tensor = Some(tensor.into());
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.code, self.severity)?;
        if let Some(node) = &self.node {
            write!(f, " node '{node}'")?;
        }
        if let Some(tensor) = &self.tensor {
            write!(f, " tensor '{tensor}'")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// Everything one [`analyze`] run found over one graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LintReport {
    /// Display name of the analyzed graph.
    pub graph: String,
    /// Findings in pass order (structure first).
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// Number of findings at exactly `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// True when the report carries no [`Severity::Deny`] finding — the
    /// registration gate's criterion.
    pub fn is_clean(&self) -> bool {
        self.count(Severity::Deny) == 0
    }

    /// True when some finding carries `code`.
    pub fn has_code(&self, code: LintCode) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// The distinct codes present, in first-seen order.
    pub fn codes(&self) -> Vec<LintCode> {
        let mut seen = Vec::new();
        for d in &self.diagnostics {
            if !seen.contains(&d.code) {
                seen.push(d.code);
            }
        }
        seen
    }

    /// The report as JSON.
    ///
    /// # Panics
    ///
    /// Never: the report contains no map with non-string keys.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("LintReport serializes infallibly")
    }
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "graph '{}': {} deny, {} warn, {} info",
            self.graph,
            self.count(Severity::Deny),
            self.count(Severity::Warn),
            self.count(Severity::Info)
        )?;
        for d in &self.diagnostics {
            write!(f, "\n  {d}")?;
        }
        Ok(())
    }
}

/// Runs every pass over `graph` and collects the findings.
///
/// A structural [`Severity::Deny`] (pass 1) short-circuits the deeper
/// passes: they index tensors by id and require the graph well-formed. In
/// that case the report carries the structural findings only.
pub fn analyze(graph: &Graph) -> LintReport {
    let mut diagnostics = structure::check(graph);
    if diagnostics.iter().all(|d| d.severity != Severity::Deny) {
        diagnostics.extend(shapes::check(graph));
        diagnostics.extend(quantcheck::check(graph));
        diagnostics.extend(plan_check::check(graph));
        diagnostics.extend(batching::check(graph));
        diagnostics.extend(hygiene::check(graph));
    }
    LintReport {
        graph: graph.name().to_string(),
        diagnostics,
    }
}

/// The structural Deny subset as a `Result`, for [`Graph::validate`]'s
/// delegation: the first structural Deny becomes the error message.
pub(crate) fn structural_error(graph: &Graph) -> crate::Result<()> {
    match structure::check(graph)
        .into_iter()
        .find(|d| d.severity == Severity::Deny)
    {
        Some(d) => Err(crate::NnError::InvalidGraph(d.to_string())),
        None => Ok(()),
    }
}
