//! Pass 2: shape & dtype inference (`EX101`–`EX104`).
//!
//! Re-derives every node output's shape and dtype from op semantics — the
//! same rules [`crate::GraphBuilder`] applies on the way in — and diffs
//! them against the declared [`TensorDef`]s. The builder's checked methods
//! cannot produce a mismatch, but the low-level escape hatches
//! (`push_node`, serde deserialization of a hand-edited artifact, in-crate
//! rewrite passes) can, and the interpreter would otherwise discover it as
//! a corrupt read mid-invoke.
//!
//! Inference is per-node over *declared* input shapes, so one bad
//! declaration produces one localized finding instead of an error cascade.

use mlexray_tensor::{DType, Shape};

use crate::graph::{Graph, Node};
use crate::ops::{conv_out_size, OpKind};

use super::{Diagnostic, LintCode};

pub(super) fn check(graph: &Graph) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for node in graph.nodes() {
        match infer(graph, node) {
            Err(d) => diags.push(d),
            Ok((shape, dtype)) => {
                let declared = graph.tensor(node.output);
                if *declared.shape() != shape {
                    diags.push(
                        Diagnostic::new(
                            LintCode::ShapeMismatch,
                            format!(
                                "declared output shape {} but op semantics infer {}",
                                declared.shape(),
                                shape
                            ),
                        )
                        .with_node(&node.name)
                        .with_tensor(declared.name()),
                    );
                }
                if declared.dtype() != dtype {
                    diags.push(
                        Diagnostic::new(
                            LintCode::DTypeMismatch,
                            format!(
                                "declared output dtype {:?} but op semantics infer {:?}",
                                declared.dtype(),
                                dtype
                            ),
                        )
                        .with_node(&node.name)
                        .with_tensor(declared.name()),
                    );
                }
            }
        }
    }
    diags
}

/// Infers `(shape, dtype)` of `node`'s output from its declared inputs, or
/// explains why the operands violate the op's contract.
fn infer(graph: &Graph, node: &Node) -> Result<(Shape, DType), Diagnostic> {
    let err = |code: LintCode, msg: String| {
        Err(Diagnostic::new(code, msg)
            .with_node(&node.name)
            .with_tensor(graph.tensor(node.output).name()))
    };
    let arity = |lo: usize, hi: usize| -> Result<(), Diagnostic> {
        let n = node.inputs.len();
        if n < lo || n > hi {
            return Err(Diagnostic::new(
                LintCode::OperandInvalid,
                format!("expected {lo}..={hi} inputs, got {n}"),
            )
            .with_node(&node.name));
        }
        Ok(())
    };
    let def = |i: usize| graph.tensor(node.inputs[i]);
    let shape = |i: usize| def(i).shape();
    let dtype = |i: usize| def(i).dtype();
    let want_rank = |i: usize, rank: usize| -> Result<(), Diagnostic> {
        if shape(i).rank() != rank {
            return Err(Diagnostic::new(
                LintCode::OperandInvalid,
                format!(
                    "operand '{}' must have rank {rank}, has rank {}",
                    def(i).name(),
                    shape(i).rank()
                ),
            )
            .with_node(&node.name)
            .with_tensor(def(i).name()));
        }
        Ok(())
    };
    // The data operand's dtype selects the kernel family, mirroring the
    // dispatch rule: `u8` data → quantized kernel, `f32` data → float.
    let data_dtype = |allowed: &[DType]| -> Result<DType, Diagnostic> {
        let dt = dtype(0);
        if !allowed.contains(&dt) {
            return Err(Diagnostic::new(
                LintCode::UnsupportedDType,
                format!(
                    "no {} kernel accepts {:?} data (supported: {allowed:?})",
                    node.op.type_label(),
                    dt
                ),
            )
            .with_node(&node.name)
            .with_tensor(def(0).name()));
        }
        Ok(dt)
    };
    const FQ: [DType; 2] = [DType::F32, DType::U8];

    match &node.op {
        OpKind::Conv2d {
            stride, padding, ..
        } => {
            arity(2, 3)?;
            want_rank(0, 4)?;
            want_rank(1, 4)?;
            let dt = data_dtype(&FQ)?;
            let (is_, ws) = (shape(0).dims().to_vec(), shape(1).dims().to_vec());
            let (out_c, kh, kw, w_in_c) = (ws[0], ws[1], ws[2], ws[3]);
            if w_in_c != is_[3] {
                return err(
                    LintCode::OperandInvalid,
                    format!("weight in_c {} != input channels {}", w_in_c, is_[3]),
                );
            }
            if *stride == 0 {
                return err(LintCode::OperandInvalid, "stride must be positive".into());
            }
            if let Some(&b) = node.inputs.get(2) {
                if graph.tensor(b).shape().num_elements() != out_c {
                    return err(
                        LintCode::OperandInvalid,
                        format!("bias length must equal out_c {out_c}"),
                    );
                }
            }
            let oh = conv_out_size(is_[1], kh, *stride, *padding);
            let ow = conv_out_size(is_[2], kw, *stride, *padding);
            if oh == 0 || ow == 0 {
                return err(
                    LintCode::OperandInvalid,
                    "kernel larger than input under Valid padding".into(),
                );
            }
            Ok((Shape::nhwc(is_[0], oh, ow, out_c), dt))
        }
        OpKind::DepthwiseConv2d {
            stride, padding, ..
        } => {
            arity(2, 3)?;
            want_rank(0, 4)?;
            want_rank(1, 4)?;
            let dt = data_dtype(&FQ)?;
            let (is_, ws) = (shape(0).dims().to_vec(), shape(1).dims().to_vec());
            let (kh, kw, c) = (ws[1], ws[2], ws[3]);
            if ws[0] != 1 {
                return err(
                    LintCode::OperandInvalid,
                    "depthwise weights must be [1, kh, kw, c]".into(),
                );
            }
            if c != is_[3] {
                return err(
                    LintCode::OperandInvalid,
                    format!("weight channels {} != input channels {}", c, is_[3]),
                );
            }
            if *stride == 0 {
                return err(LintCode::OperandInvalid, "stride must be positive".into());
            }
            if let Some(&b) = node.inputs.get(2) {
                if graph.tensor(b).shape().num_elements() != c {
                    return err(
                        LintCode::OperandInvalid,
                        format!("bias length must equal channels {c}"),
                    );
                }
            }
            let oh = conv_out_size(is_[1], kh, *stride, *padding);
            let ow = conv_out_size(is_[2], kw, *stride, *padding);
            if oh == 0 || ow == 0 {
                return err(
                    LintCode::OperandInvalid,
                    "kernel larger than input under Valid padding".into(),
                );
            }
            Ok((Shape::nhwc(is_[0], oh, ow, c), dt))
        }
        OpKind::FullyConnected { .. } => {
            arity(2, 3)?;
            want_rank(0, 2)?;
            want_rank(1, 2)?;
            let dt = data_dtype(&FQ)?;
            let (is_, ws) = (shape(0).dims().to_vec(), shape(1).dims().to_vec());
            if ws[1] != is_[1] {
                return err(
                    LintCode::OperandInvalid,
                    format!("weight in {} != input features {}", ws[1], is_[1]),
                );
            }
            if let Some(&b) = node.inputs.get(2) {
                if graph.tensor(b).shape().num_elements() != ws[0] {
                    return err(
                        LintCode::OperandInvalid,
                        format!("bias length must equal out features {}", ws[0]),
                    );
                }
            }
            Ok((Shape::matrix(is_[0], ws[0]), dt))
        }
        OpKind::AveragePool2d {
            pool_h,
            pool_w,
            stride,
            padding,
        }
        | OpKind::MaxPool2d {
            pool_h,
            pool_w,
            stride,
            padding,
        } => {
            arity(1, 1)?;
            want_rank(0, 4)?;
            let dt = data_dtype(&FQ)?;
            if *pool_h == 0 || *pool_w == 0 || *stride == 0 {
                return err(
                    LintCode::OperandInvalid,
                    "pool window and stride must be positive".into(),
                );
            }
            let is_ = shape(0).dims().to_vec();
            let oh = conv_out_size(is_[1], *pool_h, *stride, *padding);
            let ow = conv_out_size(is_[2], *pool_w, *stride, *padding);
            if oh == 0 || ow == 0 {
                return err(
                    LintCode::OperandInvalid,
                    "pool window larger than input under Valid padding".into(),
                );
            }
            Ok((Shape::nhwc(is_[0], oh, ow, is_[3]), dt))
        }
        OpKind::Mean => {
            arity(1, 1)?;
            let dt = data_dtype(&FQ)?;
            let s = shape(0);
            if s.rank() < 2 {
                return err(LintCode::OperandInvalid, "Mean requires rank >= 2".into());
            }
            Ok((Shape::matrix(s.dims()[0], s.dims()[s.rank() - 1]), dt))
        }
        OpKind::Add { .. } => {
            arity(2, 2)?;
            let dt = data_dtype(&FQ)?;
            let (a, b) = (shape(0), shape(1));
            let suffix_ok = b.rank() <= a.rank() && a.dims()[a.rank() - b.rank()..] == *b.dims();
            if !suffix_ok {
                return err(
                    LintCode::OperandInvalid,
                    format!("cannot broadcast {b} onto {a}"),
                );
            }
            Ok((a.clone(), dt))
        }
        OpKind::Mul => {
            arity(2, 2)?;
            let dt = data_dtype(&FQ)?;
            let (a, b) = (shape(0), shape(1));
            let gate_ok = a.rank() == 4
                && b.rank() == 4
                && b.dims()[0] == a.dims()[0]
                && b.dims()[1] == 1
                && b.dims()[2] == 1
                && b.dims()[3] == a.dims()[3];
            if !(b == a || b.num_elements() == 1 || gate_ok) {
                return err(
                    LintCode::OperandInvalid,
                    format!("cannot broadcast {b} onto {a}"),
                );
            }
            Ok((a.clone(), dt))
        }
        OpKind::Concat { axis } => {
            arity(1, usize::MAX)?;
            let dt = data_dtype(&FQ)?;
            let first = shape(0);
            if *axis >= first.rank() {
                return err(LintCode::OperandInvalid, "concat axis out of range".into());
            }
            let mut axis_sum = 0usize;
            for &id in &node.inputs {
                let s = graph.tensor(id).shape();
                if s.rank() != first.rank() {
                    return err(LintCode::OperandInvalid, "concat rank mismatch".into());
                }
                for (d, (&x, &y)) in s.dims().iter().zip(first.dims()).enumerate() {
                    if d != *axis && x != y {
                        return err(
                            LintCode::OperandInvalid,
                            "concat off-axis dimension mismatch".into(),
                        );
                    }
                }
                axis_sum += s.dims()[*axis];
            }
            let mut dims = first.dims().to_vec();
            dims[*axis] = axis_sum;
            Ok((Shape::new(dims), dt))
        }
        OpKind::Pad {
            top,
            bottom,
            left,
            right,
        } => {
            arity(1, 1)?;
            want_rank(0, 4)?;
            let dt = data_dtype(&FQ)?;
            let s = shape(0).dims().to_vec();
            Ok((
                Shape::nhwc(s[0], s[1] + top + bottom, s[2] + left + right, s[3]),
                dt,
            ))
        }
        OpKind::Softmax => {
            arity(1, 1)?;
            data_dtype(&[DType::F32])?;
            Ok((shape(0).clone(), DType::F32))
        }
        OpKind::Act(_) => {
            arity(1, 1)?;
            let dt = data_dtype(&FQ)?;
            Ok((shape(0).clone(), dt))
        }
        OpKind::BatchNorm { .. } => {
            arity(5, 5)?;
            data_dtype(&[DType::F32])?;
            let s = shape(0);
            let c = s.dims()[s.rank() - 1];
            for i in 1..5 {
                if graph.tensor(node.inputs[i]).shape().num_elements() != c {
                    return err(
                        LintCode::OperandInvalid,
                        "batch-norm vectors must match channels".into(),
                    );
                }
            }
            Ok((s.clone(), DType::F32))
        }
        OpKind::LayerNorm { .. } => {
            arity(3, 3)?;
            data_dtype(&[DType::F32])?;
            let s = shape(0);
            let d = s.dims()[s.rank() - 1];
            for i in 1..3 {
                if graph.tensor(node.inputs[i]).shape().num_elements() != d {
                    return err(
                        LintCode::OperandInvalid,
                        "layer-norm vectors must match last axis".into(),
                    );
                }
            }
            Ok((s.clone(), DType::F32))
        }
        OpKind::MatMul { transpose_b } => {
            arity(2, 2)?;
            want_rank(0, 2)?;
            want_rank(1, 2)?;
            data_dtype(&[DType::F32])?;
            if dtype(1) != DType::F32 {
                return err(
                    LintCode::UnsupportedDType,
                    format!("matmul rhs must be f32, is {:?}", dtype(1)),
                );
            }
            let (sa, sb) = (shape(0).dims().to_vec(), shape(1).dims().to_vec());
            let (k_b, n) = if *transpose_b {
                (sb[1], sb[0])
            } else {
                (sb[0], sb[1])
            };
            if sa[1] != k_b {
                return err(
                    LintCode::OperandInvalid,
                    "inner dimensions must agree".into(),
                );
            }
            Ok((Shape::matrix(sa[0], n), DType::F32))
        }
        OpKind::Embedding => {
            arity(2, 2)?;
            want_rank(0, 2)?;
            want_rank(1, 2)?;
            data_dtype(&[DType::I32])?;
            if dtype(1) != DType::F32 {
                return err(
                    LintCode::UnsupportedDType,
                    format!("embedding table must be f32, is {:?}", dtype(1)),
                );
            }
            let (si, st) = (shape(0).dims().to_vec(), shape(1).dims().to_vec());
            Ok((Shape::new(vec![si[0], si[1], st[1]]), DType::F32))
        }
        OpKind::Reshape { dims } => {
            arity(1, 1)?;
            let target = Shape::new(dims.clone());
            if target.num_elements() != shape(0).num_elements() {
                return err(
                    LintCode::OperandInvalid,
                    format!("cannot reshape {} to {target}", shape(0)),
                );
            }
            Ok((target, dtype(0)))
        }
        OpKind::Quantize => {
            arity(1, 1)?;
            data_dtype(&[DType::F32])?;
            Ok((shape(0).clone(), DType::U8))
        }
        OpKind::Dequantize => {
            arity(1, 1)?;
            data_dtype(&[DType::U8])?;
            Ok((shape(0).clone(), DType::F32))
        }
    }
}
