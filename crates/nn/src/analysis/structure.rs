//! Pass 1: structural invariants (`EX001`–`EX009`).
//!
//! The checks [`crate::Graph::validate`] historically performed — non-empty
//! interface, slot ids in range, def-before-use topological order, single
//! writer per activation — plus the gaps folded in when validation moved
//! here: nodes must write activation slots (not inputs/constants), graph
//! outputs must actually be produced, and tensor/node display names must be
//! unique (per-layer differential debugging aligns layers by name, so a
//! duplicate silently corrupts every downstream report).

use std::collections::HashMap;

use crate::graph::{Graph, TensorDef};

use super::{Diagnostic, LintCode};

pub(super) fn check(graph: &Graph) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    if graph.inputs().is_empty() {
        diags.push(Diagnostic::new(LintCode::NoInputs, "graph has no inputs"));
    }
    if graph.outputs().is_empty() {
        diags.push(Diagnostic::new(LintCode::NoOutputs, "graph has no outputs"));
    }

    let n_tensors = graph.tensors().len();
    for &id in graph.inputs() {
        if id.0 >= n_tensors {
            diags.push(Diagnostic::new(
                LintCode::MissingTensor,
                format!("graph input references missing tensor slot {}", id.0),
            ));
        }
    }

    // Def-before-use walk in execution order; inputs and constants are
    // defined from the start.
    let mut defined = vec![false; n_tensors];
    for (i, t) in graph.tensors().iter().enumerate() {
        if !matches!(t, TensorDef::Activation { .. }) {
            defined[i] = true;
        }
    }
    for node in graph.nodes() {
        for &input in &node.inputs {
            if input.0 >= n_tensors {
                diags.push(
                    Diagnostic::new(
                        LintCode::MissingTensor,
                        format!("references missing tensor slot {}", input.0),
                    )
                    .with_node(&node.name),
                );
                continue;
            }
            if !defined[input.0] {
                diags.push(
                    Diagnostic::new(
                        LintCode::UseBeforeDef,
                        format!(
                            "reads tensor '{}' before any node produces it",
                            graph.tensors()[input.0].name()
                        ),
                    )
                    .with_node(&node.name)
                    .with_tensor(graph.tensors()[input.0].name()),
                );
            }
        }
        if node.output.0 >= n_tensors {
            diags.push(
                Diagnostic::new(
                    LintCode::MissingTensor,
                    format!("writes missing tensor slot {}", node.output.0),
                )
                .with_node(&node.name),
            );
            continue;
        }
        let out_def = &graph.tensors()[node.output.0];
        if !matches!(out_def, TensorDef::Activation { .. }) {
            diags.push(
                Diagnostic::new(
                    LintCode::NonActivationOutput,
                    format!(
                        "writes into non-activation slot '{}' (inputs and constants are not producible)",
                        out_def.name()
                    ),
                )
                .with_node(&node.name)
                .with_tensor(out_def.name()),
            );
        } else if defined[node.output.0] {
            diags.push(
                Diagnostic::new(
                    LintCode::WrittenTwice,
                    format!("tensor '{}' written twice", out_def.name()),
                )
                .with_node(&node.name)
                .with_tensor(out_def.name()),
            );
        }
        defined[node.output.0] = true;
    }

    // Outputs must exist and be produced by a node or fed as a graph input.
    // A constant output is dead weight pretending to be a result; an
    // activation output nothing wrote is garbage memory.
    for &out in graph.outputs() {
        if out.0 >= n_tensors {
            diags.push(Diagnostic::new(
                LintCode::MissingTensor,
                format!("graph output references missing tensor slot {}", out.0),
            ));
            continue;
        }
        let def = &graph.tensors()[out.0];
        let produced = match def {
            TensorDef::Constant { .. } => false,
            TensorDef::Input { .. } => false,
            TensorDef::Activation { .. } => graph.nodes().iter().any(|n| n.output == out),
        };
        if !produced {
            diags.push(
                Diagnostic::new(
                    LintCode::OutputUnproduced,
                    format!("graph output '{}' is not produced by any node", def.name()),
                )
                .with_tensor(def.name()),
            );
        }
    }

    // Display names must be unique: the differential debugger, the trainer's
    // weight copy-back and `node_by_name` all key on them.
    let mut tensor_names: HashMap<&str, usize> = HashMap::new();
    for t in graph.tensors() {
        *tensor_names.entry(t.name()).or_insert(0) += 1;
    }
    let mut dup_tensors: Vec<&str> = tensor_names
        .iter()
        .filter(|(_, &n)| n > 1)
        .map(|(&name, _)| name)
        .collect();
    dup_tensors.sort_unstable();
    for name in dup_tensors {
        diags.push(
            Diagnostic::new(
                LintCode::DuplicateTensorName,
                format!("{} tensor slots are named '{name}'", tensor_names[name]),
            )
            .with_tensor(name),
        );
    }

    let mut node_names: HashMap<&str, usize> = HashMap::new();
    for n in graph.nodes() {
        *node_names.entry(n.name.as_str()).or_insert(0) += 1;
    }
    let mut dup_nodes: Vec<&str> = node_names
        .iter()
        .filter(|(_, &n)| n > 1)
        .map(|(&name, _)| name)
        .collect();
    dup_nodes.sort_unstable();
    for name in dup_nodes {
        diags.push(
            Diagnostic::new(
                LintCode::DuplicateNodeName,
                format!("{} nodes are named '{name}'", node_names[name]),
            )
            .with_node(name),
        );
    }

    diags
}
