//! Graph-level bug injection for proving lint coverage.
//!
//! Each [`GraphMutation`] plants exactly one bug class into a clean graph —
//! the static-analysis counterpart of the `KernelBug` machinery the golden
//! and differential suites use at runtime. The lint suite applies every
//! mutation to every zoo model it fits and asserts the analyzer reports the
//! mutation's [`GraphMutation::expected_code`]; a lint that stops firing on
//! its own bug class fails the suite, not a user.
//!
//! Mutations are deliberately *minimal*: they corrupt one declaration and
//! leave the rest of the graph intact, so a finding anywhere else is a
//! false positive the suite would also catch.

use mlexray_tensor::{QuantParams, Shape, Tensor};

use crate::graph::{Graph, Node, TensorDef, TensorId};
use crate::ops::{Activation, OpKind};

use super::LintCode;

/// One injectable bug class, mapped to the lint code that must catch it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphMutation {
    /// Set a quantized tensor's scale to a non-positive value.
    CorruptQuantScale,
    /// Move a `u8` tensor's zero point outside `[0, 255]`.
    CorruptZeroPoint,
    /// Strip a quantized tensor's parameters entirely.
    DropQuantParams,
    /// Declare an output shape the op semantics cannot produce.
    ShapeMismatch,
    /// Declare an output dtype the op semantics cannot produce.
    DTypeMismatch,
    /// Add an activation slot nothing ever consumes.
    DeadActivation,
    /// Add a constant no node references.
    UnusedConstant,
    /// Append a node no graph output depends on.
    UnreachableNode,
    /// Give two tensor slots the same display name.
    DuplicateTensorName,
}

impl GraphMutation {
    /// Every mutation class, in declaration order.
    pub const ALL: &'static [GraphMutation] = &[
        GraphMutation::CorruptQuantScale,
        GraphMutation::CorruptZeroPoint,
        GraphMutation::DropQuantParams,
        GraphMutation::ShapeMismatch,
        GraphMutation::DTypeMismatch,
        GraphMutation::DeadActivation,
        GraphMutation::UnusedConstant,
        GraphMutation::UnreachableNode,
        GraphMutation::DuplicateTensorName,
    ];

    /// The lint code that must flag this mutation.
    pub fn expected_code(self) -> LintCode {
        match self {
            GraphMutation::CorruptQuantScale => LintCode::InvalidScale,
            GraphMutation::CorruptZeroPoint => LintCode::InvalidZeroPoint,
            GraphMutation::DropQuantParams => LintCode::MissingQuantParams,
            GraphMutation::ShapeMismatch => LintCode::ShapeMismatch,
            GraphMutation::DTypeMismatch => LintCode::DTypeMismatch,
            GraphMutation::DeadActivation => LintCode::DeadActivation,
            GraphMutation::UnusedConstant => LintCode::UnusedConstant,
            GraphMutation::UnreachableNode => LintCode::UnreachableNode,
            GraphMutation::DuplicateTensorName => LintCode::DuplicateTensorName,
        }
    }

    /// Applies the mutation to a copy of `graph`, or `None` when the graph
    /// offers no site for it (e.g. quantization mutations on a float graph).
    pub fn apply(self, graph: &Graph) -> Option<Graph> {
        let mut g = graph.clone();
        match self {
            GraphMutation::CorruptQuantScale => {
                let def = first_runtime_quant(&mut g)?;
                match runtime_quant_mut(def).expect("selected a tensor with params") {
                    QuantParams::PerTensor { scale, .. } => *scale = -1.0,
                    QuantParams::PerChannel { scales, .. } => scales[0] = f32::NAN,
                }
            }
            GraphMutation::CorruptZeroPoint => {
                let def = first_runtime_quant(&mut g)?;
                match runtime_quant_mut(def).expect("selected a tensor with params") {
                    QuantParams::PerTensor { zero_point, .. } => *zero_point = 999,
                    QuantParams::PerChannel { zero_points, .. } => zero_points[0] = 999,
                }
            }
            GraphMutation::DropQuantParams => {
                let def = first_runtime_quant(&mut g)?;
                match def {
                    TensorDef::Input { quant, .. } | TensorDef::Activation { quant, .. } => {
                        *quant = None
                    }
                    TensorDef::Constant { .. } => unreachable!("runtime tensors only"),
                }
            }
            GraphMutation::ShapeMismatch => {
                let out = g.nodes().last()?.output;
                match &mut g.tensors_mut()[out.0] {
                    TensorDef::Activation { shape, .. } => {
                        let mut dims = shape.dims().to_vec();
                        *dims.last_mut()? += 1;
                        *shape = Shape::new(dims);
                    }
                    _ => return None,
                }
            }
            GraphMutation::DTypeMismatch => {
                let out = g.nodes().last()?.output;
                match &mut g.tensors_mut()[out.0] {
                    TensorDef::Activation { dtype, quant, .. } => {
                        use mlexray_tensor::DType;
                        *dtype = if *dtype == DType::I32 {
                            DType::F32
                        } else {
                            DType::I32
                        };
                        // Keep the bug to one declaration: no stray params
                        // on the flipped dtype.
                        *quant = None;
                    }
                    _ => return None,
                }
            }
            GraphMutation::DeadActivation => {
                let template = g.tensor(*g.inputs().first()?).shape().clone();
                g.tensors_mut().push(TensorDef::Activation {
                    name: "lint:dead".into(),
                    shape: template,
                    dtype: mlexray_tensor::DType::F32,
                    quant: None,
                });
            }
            GraphMutation::UnusedConstant => {
                g.tensors_mut().push(TensorDef::Constant {
                    name: "lint:unused".into(),
                    tensor: Tensor::filled_f32(Shape::vector(4), 0.0),
                });
            }
            GraphMutation::UnreachableNode => {
                let input = *g.inputs().first()?;
                let def = g.tensor(input);
                let (shape, dtype, quant) =
                    (def.shape().clone(), def.dtype(), def.quant().cloned());
                let out = TensorId(g.tensors().len());
                g.tensors_mut().push(TensorDef::Activation {
                    name: "lint:unreachable_out".into(),
                    shape,
                    dtype,
                    quant,
                });
                g.nodes_mut().push(Node {
                    name: "lint:unreachable".into(),
                    op: OpKind::Act(Activation::Relu),
                    inputs: vec![input],
                    output: out,
                });
            }
            GraphMutation::DuplicateTensorName => {
                if g.tensors().len() < 2 {
                    return None;
                }
                let stolen = g.tensors()[0].name().to_string();
                match &mut g.tensors_mut()[1] {
                    TensorDef::Input { name, .. }
                    | TensorDef::Constant { name, .. }
                    | TensorDef::Activation { name, .. } => *name = stolen,
                }
            }
        }
        Some(g)
    }
}

/// The first input/activation slot carrying quantization parameters.
/// Constants are skipped: their params live inside the [`Tensor`], which
/// exposes no mutable access, and runtime tensors are where the calibration
/// bugs the paper describes actually land.
fn first_runtime_quant(g: &mut Graph) -> Option<&mut TensorDef> {
    g.tensors_mut().iter_mut().find(|def| {
        matches!(
            def,
            TensorDef::Input { quant: Some(_), .. } | TensorDef::Activation { quant: Some(_), .. }
        )
    })
}

fn runtime_quant_mut(def: &mut TensorDef) -> Option<&mut QuantParams> {
    match def {
        TensorDef::Input { quant, .. } | TensorDef::Activation { quant, .. } => quant.as_mut(),
        TensorDef::Constant { .. } => None,
    }
}
