//! Pluggable execution backends: the multi-runtime surface of §4.4.
//!
//! ML-EXray's central debugging technique replays the same frames through a
//! known-correct runtime and a suspect runtime, then compares per-layer
//! outputs. That only works if "runtime" is a first-class, swappable
//! abstraction — this module provides it. [`ExecutionBackend`] is the
//! execution surface (single and batched invokes with per-layer
//! observation); the [`Interpreter`] is the shared engine behind all four
//! implementations:
//!
//! * [`ReferenceBackend`] — the debugging-grade reference kernels
//!   (TFLite's `RefOpResolver`): naive loops, canonical summation order.
//! * [`OptimizedBackend`] — the production kernels (`OpResolver`): blocked
//!   accumulation, whole-batch im2col GEMM, and the surface the injected
//!   [`KernelBugs`] live in.
//! * [`SimdBackend`] — the raw-speed kernels (`SimdOpResolver`): the
//!   runtime-feature-dispatched virtual-SIMD GEMM of `kernels::gemm`
//!   (AVX2/FMA on x86_64, a bitwise-identical scalar mirror elsewhere)
//!   behind the im2col conv, depthwise and fully-connected paths, with a
//!   true i8×i8→i32 quantized batched GEMM.
//! * [`EdgeEmulatorBackend`] — reproduces a *different* edge runtime's
//!   numerics ([`EdgeNumerics`]): configurable GEMM accumulation order,
//!   fused multiply-add contraction, flush-to-zero denormals, and
//!   reduced-precision requantization. Device profiles in `mlexray-edgesim`
//!   map real targets to these knobs.
//!
//! [`BackendSpec`] is the serializable, copyable description of a backend —
//! what crosses thread boundaries in the sharded differential debugger,
//! where every worker builds its own backend instance from the spec.

use serde::{Deserialize, Serialize};

use mlexray_tensor::Tensor;

use crate::graph::Graph;
use crate::interpreter::{
    Interpreter, InterpreterOptions, InvokeStats, LayerObserver, NullObserver,
};
use crate::resolver::{EdgeNumerics, KernelBugs, KernelFlavor};
use crate::Result;

/// A pluggable model-execution runtime: everything the replay and
/// differential-debugging layers need from "something that runs the graph".
///
/// All implementations guarantee per-frame results independent of batching
/// (the `batch_equivalence` property suite pins this for the underlying
/// engine), so callers may freely micro-batch.
pub trait ExecutionBackend: Send {
    /// Short display name ("reference", "optimized", "edge-emulator").
    fn label(&self) -> &'static str;

    /// The interpreter options this backend executes under.
    fn options(&self) -> InterpreterOptions;

    /// The graph being executed.
    fn graph(&self) -> &Graph;

    /// Runs one frame, reporting every executed node to `observer`.
    ///
    /// # Errors
    ///
    /// Propagates interpreter errors.
    fn invoke_observed(
        &mut self,
        inputs: &[Tensor],
        observer: &mut dyn LayerObserver,
    ) -> Result<Vec<Tensor>>;

    /// Runs a batch of frames (stacked where the graph allows), reporting
    /// per-frame layer records to `observer`.
    ///
    /// # Errors
    ///
    /// Propagates interpreter errors.
    fn invoke_batch_observed(
        &mut self,
        batch: &[&[Tensor]],
        observer: &mut dyn LayerObserver,
    ) -> Result<Vec<Vec<Tensor>>>;

    /// Statistics of the most recent invoke, if any.
    fn last_stats(&self) -> Option<InvokeStats>;

    /// Runs one frame without observation.
    ///
    /// # Errors
    ///
    /// Propagates interpreter errors.
    fn invoke(&mut self, inputs: &[Tensor]) -> Result<Vec<Tensor>> {
        self.invoke_observed(inputs, &mut NullObserver)
    }

    /// Runs a batch without observation.
    ///
    /// # Errors
    ///
    /// Propagates interpreter errors.
    fn invoke_batch(&mut self, batch: &[&[Tensor]]) -> Result<Vec<Vec<Tensor>>> {
        self.invoke_batch_observed(batch, &mut NullObserver)
    }
}

/// A boxed backend bound to a graph's lifetime — what [`BackendSpec::build`]
/// hands out and what per-worker replay state stores.
pub type BoxedBackend<'g> = Box<dyn ExecutionBackend + 'g>;

macro_rules! delegate_backend {
    ($ty:ident, $label:expr) => {
        impl ExecutionBackend for $ty<'_> {
            fn label(&self) -> &'static str {
                $label
            }

            fn options(&self) -> InterpreterOptions {
                self.interp.options()
            }

            fn graph(&self) -> &Graph {
                self.interp.graph()
            }

            fn invoke_observed(
                &mut self,
                inputs: &[Tensor],
                observer: &mut dyn LayerObserver,
            ) -> Result<Vec<Tensor>> {
                self.interp.invoke_observed(inputs, observer)
            }

            fn invoke_batch_observed(
                &mut self,
                batch: &[&[Tensor]],
                observer: &mut dyn LayerObserver,
            ) -> Result<Vec<Vec<Tensor>>> {
                self.interp.invoke_batch_observed(batch, observer)
            }

            fn last_stats(&self) -> Option<InvokeStats> {
                self.interp.last_stats()
            }
        }
    };
}

/// The known-correct baseline: reference kernels, canonical arithmetic.
#[derive(Debug)]
pub struct ReferenceBackend<'g> {
    interp: Interpreter<'g>,
}

impl<'g> ReferenceBackend<'g> {
    /// Prepares a reference backend for `graph`.
    ///
    /// # Errors
    ///
    /// Propagates graph-validation errors.
    pub fn new(graph: &'g Graph) -> Result<Self> {
        Self::with_bugs(graph, KernelBugs::none())
    }

    /// A reference backend with injected defects (op-spec bugs like the
    /// quantized average-pool defect fire in *both* resolvers).
    ///
    /// # Errors
    ///
    /// Propagates graph-validation errors.
    pub fn with_bugs(graph: &'g Graph, bugs: KernelBugs) -> Result<Self> {
        Ok(ReferenceBackend {
            interp: Interpreter::new(
                graph,
                InterpreterOptions {
                    flavor: KernelFlavor::Reference,
                    bugs,
                    numerics: None,
                },
            )?,
        })
    }
}

delegate_backend!(ReferenceBackend, "reference");

/// The production runtime: optimized kernels (blocked loops, batched GEMM).
#[derive(Debug)]
pub struct OptimizedBackend<'g> {
    interp: Interpreter<'g>,
}

impl<'g> OptimizedBackend<'g> {
    /// Prepares an optimized backend for `graph`.
    ///
    /// # Errors
    ///
    /// Propagates graph-validation errors.
    pub fn new(graph: &'g Graph) -> Result<Self> {
        Self::with_bugs(graph, KernelBugs::none())
    }

    /// An optimized backend with injected defects active.
    ///
    /// # Errors
    ///
    /// Propagates graph-validation errors.
    pub fn with_bugs(graph: &'g Graph, bugs: KernelBugs) -> Result<Self> {
        Ok(OptimizedBackend {
            interp: Interpreter::new(
                graph,
                InterpreterOptions {
                    flavor: KernelFlavor::Optimized,
                    bugs,
                    numerics: None,
                },
            )?,
        })
    }
}

delegate_backend!(OptimizedBackend, "optimized");

/// The raw-speed runtime: SIMD-tiled GEMM kernels with one-time runtime
/// feature dispatch (`kernels::gemm`). Float GEMM outputs differ from the
/// scalar flavors only by benign accumulation-order drift; quantized
/// outputs are bitwise-identical to the reference kernels.
#[derive(Debug)]
pub struct SimdBackend<'g> {
    interp: Interpreter<'g>,
}

impl<'g> SimdBackend<'g> {
    /// Prepares a SIMD backend for `graph`.
    ///
    /// # Errors
    ///
    /// Propagates graph-validation errors.
    pub fn new(graph: &'g Graph) -> Result<Self> {
        Self::with_bugs(graph, KernelBugs::none())
    }

    /// A SIMD backend with injected defects active (this is where the
    /// test-only K-tail tile-boundary defect lives).
    ///
    /// # Errors
    ///
    /// Propagates graph-validation errors.
    pub fn with_bugs(graph: &'g Graph, bugs: KernelBugs) -> Result<Self> {
        Ok(SimdBackend {
            interp: Interpreter::new(
                graph,
                InterpreterOptions {
                    flavor: KernelFlavor::Simd,
                    bugs,
                    numerics: None,
                },
            )?,
        })
    }
}

delegate_backend!(SimdBackend, "simd");

/// An emulated foreign edge runtime: the interpreter's kernels with the
/// numeric deviations of [`EdgeNumerics`] applied — the "suspect pipeline"
/// side of a cross-runtime differential run when no real second runtime is
/// available.
#[derive(Debug)]
pub struct EdgeEmulatorBackend<'g> {
    interp: Interpreter<'g>,
}

impl<'g> EdgeEmulatorBackend<'g> {
    /// Prepares an emulator backend with the given numerics.
    ///
    /// # Errors
    ///
    /// Propagates graph-validation errors.
    pub fn new(graph: &'g Graph, numerics: EdgeNumerics) -> Result<Self> {
        Self::with_bugs(graph, numerics, KernelBugs::none())
    }

    /// An emulator backend with injected defects active on top of the
    /// emulated numerics.
    ///
    /// # Errors
    ///
    /// Propagates graph-validation errors.
    pub fn with_bugs(graph: &'g Graph, numerics: EdgeNumerics, bugs: KernelBugs) -> Result<Self> {
        Self::with_flavor(graph, numerics, bugs, KernelFlavor::Reference)
    }

    /// An emulator backend with an explicit structural kernel flavor.
    ///
    /// Emulated numerics fully specify the GEMM-family float arithmetic,
    /// but the flavor still selects the kernel family for the arms
    /// emulation does not replace — in particular it gates the optimized
    /// quantized-depthwise defect of [`KernelBugs`]. Pipeline-derived specs
    /// preserve it so bisection re-executes the op under the *same* engine
    /// the replay ran.
    ///
    /// # Errors
    ///
    /// Propagates graph-validation errors.
    pub fn with_flavor(
        graph: &'g Graph,
        numerics: EdgeNumerics,
        bugs: KernelBugs,
        flavor: KernelFlavor,
    ) -> Result<Self> {
        Ok(EdgeEmulatorBackend {
            interp: Interpreter::new(
                graph,
                InterpreterOptions {
                    flavor,
                    bugs,
                    numerics: Some(numerics),
                },
            )?,
        })
    }

    /// The emulated numerics configuration.
    pub fn numerics(&self) -> EdgeNumerics {
        self.interp
            .options()
            .numerics
            .expect("emulator backends always carry numerics")
    }
}

delegate_backend!(EdgeEmulatorBackend, "edge-emulator");

/// A copyable, serializable description of a backend: which runtime to
/// build, with which injected defects and (for the emulator) which numerics.
/// The sharded differential debugger sends specs across worker threads and
/// builds one backend instance per worker.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BackendSpec {
    /// [`ReferenceBackend`].
    Reference {
        /// Injected defects (op-spec bugs fire here too).
        bugs: KernelBugs,
    },
    /// [`OptimizedBackend`].
    Optimized {
        /// Injected defects.
        bugs: KernelBugs,
    },
    /// [`SimdBackend`].
    Simd {
        /// Injected defects.
        bugs: KernelBugs,
    },
    /// [`EdgeEmulatorBackend`].
    EdgeEmulator {
        /// Emulated numerics.
        numerics: EdgeNumerics,
        /// Injected defects.
        bugs: KernelBugs,
        /// Structural kernel flavor for the arms emulation does not replace
        /// (gates the optimized-only quantized-depthwise defect).
        flavor: KernelFlavor,
    },
}

impl BackendSpec {
    /// The clean reference baseline.
    pub fn reference() -> Self {
        BackendSpec::Reference {
            bugs: KernelBugs::none(),
        }
    }

    /// The clean production runtime.
    pub fn optimized() -> Self {
        BackendSpec::Optimized {
            bugs: KernelBugs::none(),
        }
    }

    /// The clean SIMD runtime.
    pub fn simd() -> Self {
        BackendSpec::Simd {
            bugs: KernelBugs::none(),
        }
    }

    /// A clean emulator with the given numerics (reference kernel
    /// structure).
    pub fn emulator(numerics: EdgeNumerics) -> Self {
        BackendSpec::EdgeEmulator {
            numerics,
            bugs: KernelBugs::none(),
            flavor: KernelFlavor::Reference,
        }
    }

    /// The spec equivalent of raw interpreter options (how pipeline-level
    /// callers, which carry [`InterpreterOptions`], enter the backend
    /// world). Lossless: `spec.options()` round-trips.
    pub fn of_options(options: InterpreterOptions) -> Self {
        match (options.numerics, options.flavor) {
            (Some(numerics), flavor) => BackendSpec::EdgeEmulator {
                numerics,
                bugs: options.bugs,
                flavor,
            },
            (None, KernelFlavor::Reference) => BackendSpec::Reference { bugs: options.bugs },
            (None, KernelFlavor::Optimized) => BackendSpec::Optimized { bugs: options.bugs },
            (None, KernelFlavor::Simd) => BackendSpec::Simd { bugs: options.bugs },
        }
    }

    /// The interpreter options this spec resolves to.
    pub fn options(&self) -> InterpreterOptions {
        match *self {
            BackendSpec::Reference { bugs } => InterpreterOptions {
                flavor: KernelFlavor::Reference,
                bugs,
                numerics: None,
            },
            BackendSpec::Optimized { bugs } => InterpreterOptions {
                flavor: KernelFlavor::Optimized,
                bugs,
                numerics: None,
            },
            BackendSpec::Simd { bugs } => InterpreterOptions {
                flavor: KernelFlavor::Simd,
                bugs,
                numerics: None,
            },
            BackendSpec::EdgeEmulator {
                numerics,
                bugs,
                flavor,
            } => InterpreterOptions {
                flavor,
                bugs,
                numerics: Some(numerics),
            },
        }
    }

    /// Display name of the backend this spec builds.
    pub fn label(&self) -> &'static str {
        match self {
            BackendSpec::Reference { .. } => "reference",
            BackendSpec::Optimized { .. } => "optimized",
            BackendSpec::Simd { .. } => "simd",
            BackendSpec::EdgeEmulator { .. } => "edge-emulator",
        }
    }

    /// Builds the backend for `graph`.
    ///
    /// # Errors
    ///
    /// Propagates graph-validation errors.
    pub fn build<'g>(&self, graph: &'g Graph) -> Result<BoxedBackend<'g>> {
        Ok(match *self {
            BackendSpec::Reference { bugs } => Box::new(ReferenceBackend::with_bugs(graph, bugs)?),
            BackendSpec::Optimized { bugs } => Box::new(OptimizedBackend::with_bugs(graph, bugs)?),
            BackendSpec::Simd { bugs } => Box::new(SimdBackend::with_bugs(graph, bugs)?),
            BackendSpec::EdgeEmulator {
                numerics,
                bugs,
                flavor,
            } => Box::new(EdgeEmulatorBackend::with_flavor(
                graph, numerics, bugs, flavor,
            )?),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::ops::{Activation, Padding};
    use crate::resolver::AccumOrder;
    use mlexray_tensor::Shape;

    fn graph() -> Graph {
        let mut b = GraphBuilder::new("t");
        let x = b.input("x", Shape::nhwc(1, 4, 4, 2));
        let w = b.constant(
            "w",
            Tensor::from_f32(
                Shape::new(vec![2, 3, 3, 2]),
                (0..36).map(|i| (i as f32 * 0.37).sin() * 0.4).collect(),
            )
            .unwrap(),
        );
        let y = b
            .conv2d("conv", x, w, None, 1, Padding::Same, Activation::Relu)
            .unwrap();
        b.output(y);
        b.finish().unwrap()
    }

    fn input() -> Tensor {
        Tensor::from_f32(
            Shape::nhwc(1, 4, 4, 2),
            (0..32).map(|i| (i as f32 * 0.61).cos()).collect(),
        )
        .unwrap()
    }

    #[test]
    fn specs_build_their_backends() {
        let g = graph();
        for (spec, label) in [
            (BackendSpec::reference(), "reference"),
            (BackendSpec::optimized(), "optimized"),
            (BackendSpec::simd(), "simd"),
            (
                BackendSpec::emulator(EdgeNumerics::faithful()),
                "edge-emulator",
            ),
        ] {
            let mut backend = spec.build(&g).unwrap();
            assert_eq!(backend.label(), label);
            assert_eq!(spec.label(), label);
            let out = backend.invoke(&[input()]).unwrap();
            assert_eq!(out.len(), 1);
            assert!(backend.last_stats().is_some());
            assert_eq!(BackendSpec::of_options(spec.options()), spec);
        }
    }

    /// Pipeline-derived specs must not lose the kernel flavor under
    /// emulation: the optimized-only quantized-depthwise defect is gated on
    /// it, so dropping it would make bisection re-execute a bugged op in a
    /// defect-free engine and misclassify it as propagated.
    #[test]
    fn of_options_preserves_emulator_flavor() {
        let options = InterpreterOptions {
            flavor: KernelFlavor::Optimized,
            bugs: KernelBugs::paper_2021(),
            numerics: Some(EdgeNumerics::faithful()),
        };
        let spec = BackendSpec::of_options(options);
        assert_eq!(spec.options(), options, "of_options must round-trip");
        assert_eq!(spec.label(), "edge-emulator");
    }

    #[test]
    fn faithful_emulator_matches_reference_bitwise() {
        let g = graph();
        let x = input();
        let a = BackendSpec::reference()
            .build(&g)
            .unwrap()
            .invoke(std::slice::from_ref(&x))
            .unwrap();
        let b = BackendSpec::emulator(EdgeNumerics::faithful())
            .build(&g)
            .unwrap()
            .invoke(std::slice::from_ref(&x))
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn emulated_batch_matches_sequential() {
        let g = graph();
        let numerics = EdgeNumerics {
            accumulation: AccumOrder::Lanes8,
            fused_multiply_add: true,
            ..EdgeNumerics::faithful()
        };
        let mut backend = BackendSpec::emulator(numerics).build(&g).unwrap();
        let samples: Vec<Vec<Tensor>> = (0..3)
            .map(|i| {
                vec![Tensor::from_f32(
                    Shape::nhwc(1, 4, 4, 2),
                    (0..32)
                        .map(|j| ((i * 32 + j) as f32 * 0.23).sin())
                        .collect(),
                )
                .unwrap()]
            })
            .collect();
        let sequential: Vec<Vec<Tensor>> =
            samples.iter().map(|s| backend.invoke(s).unwrap()).collect();
        let refs: Vec<&[Tensor]> = samples.iter().map(Vec::as_slice).collect();
        let batched = backend.invoke_batch(&refs).unwrap();
        assert_eq!(batched, sequential);
    }
}
