//! The Figure-2 deployment-validation flow: accuracy match → per-layer
//! scrutiny → root-cause assertions, producing a single report.
//!
//! Reports come in two granularities: [`DeploymentValidator::validate`]
//! produces one [`ValidationReport`] over a full pair of log sets, while
//! the sharded replay engine ([`crate::replay`]) validates each frame shard
//! independently ([`DeploymentValidator::validate_shard`]) and merges the
//! per-shard results deterministically
//! ([`DeploymentValidator::merge_shards`]): the merged report depends only
//! on the shard partition, never on worker count or thread interleaving.

use std::collections::HashMap;
use std::fmt;

use crate::log::LogSet;
use crate::validate::assertions::{
    Assertion, AssertionOutcome, AssertionStatus, ChannelArrangementAssertion,
    ConstantOutputAssertion, NormalizationRangeAssertion, OrientationAssertion,
    QuantizationDriftAssertion, ResizeFunctionAssertion, ValidationContext,
};
use crate::validate::drift::{first_drift_jump, layers_above, per_layer_drift, LayerDrift};

/// Side-by-side accuracy of the two pipelines.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccuracyComparison {
    /// Edge top-1 accuracy (None when no labelled decisions were logged).
    pub edge: Option<f32>,
    /// Reference top-1 accuracy.
    pub reference: Option<f32>,
}

impl AccuracyComparison {
    /// Accuracy drop `reference - edge`, when both sides are known.
    pub fn drop(&self) -> Option<f32> {
        Some(self.reference? - self.edge?)
    }
}

/// Final verdict of a validation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// No significant deviation found.
    Healthy,
    /// Deployment issues detected; see the report body.
    Degraded,
}

/// Everything the validator found.
#[derive(Debug, Clone)]
pub struct ValidationReport {
    /// Accuracy comparison (step 1 of Fig. 2).
    pub accuracy: AccuracyComparison,
    /// Per-layer drift, in execution order (step 2).
    pub drift: Vec<LayerDrift>,
    /// Names of layers flagged as error-prone.
    pub suspect_layers: Vec<String>,
    /// Assertion outcomes (step 3).
    pub outcomes: Vec<AssertionOutcome>,
    /// Overall verdict.
    pub verdict: Verdict,
}

impl ValidationReport {
    /// Outcomes of failed (bug-detected) assertions.
    pub fn failures(&self) -> Vec<&AssertionOutcome> {
        self.outcomes
            .iter()
            .filter(|o| o.status == AssertionStatus::Fail)
            .collect()
    }

    /// Convenience: root-cause strings of all failed assertions.
    pub fn root_causes(&self) -> Vec<String> {
        self.failures()
            .iter()
            .map(|o| format!("{}: {}", o.name, o.detail))
            .collect()
    }
}

impl fmt::Display for ValidationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "=== ML-EXray deployment validation report ===")?;
        match (self.accuracy.edge, self.accuracy.reference) {
            (Some(e), Some(r)) => writeln!(
                f,
                "accuracy: edge {:.1}% vs reference {:.1}% (drop {:+.1} pp)",
                e * 100.0,
                r * 100.0,
                (r - e) * 100.0
            )?,
            _ => writeln!(f, "accuracy: not available (no labelled decisions logged)")?,
        }
        if !self.suspect_layers.is_empty() {
            writeln!(f, "error-prone layers: {}", self.suspect_layers.join(", "))?;
        }
        for o in &self.outcomes {
            let tag = match o.status {
                AssertionStatus::Pass => "PASS",
                AssertionStatus::Fail => "FAIL",
                AssertionStatus::Skipped => "SKIP",
            };
            writeln!(f, "  [{tag}] {}: {}", o.name, o.detail)?;
        }
        write!(f, "verdict: {:?}", self.verdict)
    }
}

/// Verdict of a cross-backend differential run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DifferentialVerdict {
    /// No layer exceeded the divergence threshold on any frame.
    Equivalent,
    /// At least one layer diverged; see
    /// [`DifferentialReport::first_divergent`].
    Diverged,
}

/// The first layer (in execution order) whose output diverged between the
/// two backends.
#[derive(Debug, Clone, PartialEq)]
pub struct DivergentLayer {
    /// Execution-order index among the compared layers.
    pub index: usize,
    /// Node display name.
    pub layer: String,
    /// Mean normalized rMSE over frames.
    pub mean_nrmse: f32,
    /// Worst-frame normalized rMSE.
    pub max_nrmse: f32,
    /// The frame with the worst divergence (ties resolve to the lowest
    /// frame, keeping the report deterministic).
    pub worst_frame: u64,
}

/// What the bisection pass concluded about the first divergent layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BisectionVerdict {
    /// Re-executing the suspect op in isolation on reference-produced
    /// inputs still diverges: the defect is *in* that operator. Localization
    /// confirmed.
    OpLocal,
    /// The isolated re-execution agrees: the divergence observed at this
    /// layer was inherited from upstream numerics rather than an op-local
    /// defect.
    Propagated,
}

/// Result of the bisection pass: the first divergent layer re-executed in
/// isolation, with its inputs taken from a reference-backend replay of the
/// graph prefix.
#[derive(Debug, Clone, PartialEq)]
pub struct BisectionOutcome {
    /// The layer re-executed.
    pub layer: String,
    /// The frame the isolation ran on ([`DivergentLayer::worst_frame`]).
    pub frame: u64,
    /// Normalized rMSE between the two backends' outputs for the isolated
    /// op on identical (reference-prefix) inputs.
    pub isolated_nrmse: f32,
    /// Worst per-layer `max_nrmse` over the layers *before* the divergent
    /// one — how clean the prefix agreement backing the localization is.
    pub prefix_max_nrmse: f32,
    /// The conclusion.
    pub verdict: BisectionVerdict,
}

/// Everything a per-layer differential run of two execution backends over
/// the same frames produces: per-layer drift, the first-divergent-layer
/// localization, and (optionally) the bisection confirmation.
///
/// The report is a pure function of the two backends, the frames and the
/// options — byte-identical (via [`std::fmt::Display`] or [`PartialEq`])
/// however many replay workers produced it and whatever micro-batch setting
/// they ran with.
#[derive(Debug, Clone, PartialEq)]
pub struct DifferentialReport {
    /// Baseline backend label.
    pub baseline: String,
    /// Candidate backend label.
    pub candidate: String,
    /// Frames compared.
    pub frames: usize,
    /// Per-layer divergence threshold (worst-frame normalized rMSE).
    pub threshold: f32,
    /// Per-layer drift in execution order (reusing the §3.4 metric).
    pub drift: Vec<LayerDrift>,
    /// The localization, when any layer diverged.
    pub first_divergent: Option<DivergentLayer>,
    /// The bisection confirmation, when requested and a layer diverged.
    pub bisection: Option<BisectionOutcome>,
    /// Pre-attach static findings from the graph analyzer
    /// ([`mlexray_nn::analysis::analyze`]): anything the linter can prove
    /// without running a frame, surfaced alongside the dynamic drift so a
    /// statically-detectable bug is never chased dynamically.
    pub static_findings: Vec<mlexray_nn::analysis::Diagnostic>,
    /// Overall verdict.
    pub verdict: DifferentialVerdict,
}

impl DifferentialReport {
    /// True when no layer diverged.
    pub fn is_equivalent(&self) -> bool {
        self.verdict == DifferentialVerdict::Equivalent
    }

    /// Name of the first divergent layer, if any.
    pub fn divergent_layer(&self) -> Option<&str> {
        self.first_divergent.as_ref().map(|d| d.layer.as_str())
    }
}

impl fmt::Display for DifferentialReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "=== ML-EXray differential report ===")?;
        writeln!(
            f,
            "backends: {} (baseline) vs {} (candidate), {} frames, threshold {:e}",
            self.baseline, self.candidate, self.frames, self.threshold
        )?;
        for d in &self.drift {
            writeln!(
                f,
                "  layer {:>3} {:<24} mean {:e}  max {:e}",
                d.index,
                d.layer_name(),
                d.mean_nrmse,
                d.max_nrmse
            )?;
        }
        match &self.first_divergent {
            Some(d) => writeln!(
                f,
                "first divergent: #{} '{}' (max nrmse {:e} @ frame {})",
                d.index, d.layer, d.max_nrmse, d.worst_frame
            )?,
            None => writeln!(f, "first divergent: none")?,
        }
        if let Some(b) = &self.bisection {
            writeln!(
                f,
                "bisection: '{}' isolated on frame {} -> nrmse {:e} (prefix max {:e}): {:?}",
                b.layer, b.frame, b.isolated_nrmse, b.prefix_max_nrmse, b.verdict
            )?;
        }
        // Only rendered when present, so reports from paths that skip the
        // static pass stay byte-identical to their historical form.
        if !self.static_findings.is_empty() {
            writeln!(f, "static findings ({}):", self.static_findings.len())?;
            for d in &self.static_findings {
                writeln!(f, "  {d}")?;
            }
        }
        write!(f, "verdict: {:?}", self.verdict)
    }
}

/// The deployment validator: holds thresholds and the assertion suite, and
/// drives the Fig. 2 flow over a pair of log sets.
pub struct DeploymentValidator {
    /// Accuracy drop (fraction) above which the deployment counts as
    /// degraded.
    pub accuracy_tolerance: f32,
    /// Normalized-rMSE threshold for flagging a layer.
    pub drift_threshold: f32,
    assertions: Vec<Box<dyn Assertion>>,
}

impl Default for DeploymentValidator {
    fn default() -> Self {
        Self::new()
    }
}

impl DeploymentValidator {
    /// A validator with the built-in assertion suite: channel arrangement,
    /// normalization range, orientation, resize heuristic, quantization
    /// drift and constant-output detection.
    pub fn new() -> Self {
        DeploymentValidator {
            accuracy_tolerance: 0.02,
            drift_threshold: 0.15,
            assertions: vec![
                Box::new(ChannelArrangementAssertion),
                Box::new(NormalizationRangeAssertion),
                Box::new(OrientationAssertion),
                Box::new(ResizeFunctionAssertion),
                Box::new(QuantizationDriftAssertion::default()),
                Box::new(ConstantOutputAssertion),
            ],
        }
    }

    /// A validator with no built-ins (build your own suite).
    pub fn empty() -> Self {
        DeploymentValidator {
            accuracy_tolerance: 0.02,
            drift_threshold: 0.15,
            assertions: Vec::new(),
        }
    }

    /// Adds an assertion (built-in or user-defined).
    #[must_use]
    pub fn with_assertion(mut self, assertion: impl Assertion + 'static) -> Self {
        self.assertions.push(Box::new(assertion));
        self
    }

    /// Number of registered assertions.
    pub fn assertion_count(&self) -> usize {
        self.assertions.len()
    }

    /// Runs the Fig. 2 flow: (1) compare accuracy, (2) per-layer drift when
    /// degraded or on request, (3) all assertions for root-cause analysis.
    pub fn validate(&self, edge: &LogSet, reference: &LogSet) -> ValidationReport {
        let accuracy = AccuracyComparison {
            edge: edge.accuracy(),
            reference: reference.accuracy(),
        };
        let degraded_accuracy = accuracy
            .drop()
            .map(|d| d > self.accuracy_tolerance)
            .unwrap_or(false);

        let drift = per_layer_drift(edge, reference);
        let suspect_layers = self.suspect_layers(&drift);

        let ctx = ValidationContext { edge, reference };
        let outcomes: Vec<AssertionOutcome> =
            self.assertions.iter().map(|a| a.check(&ctx)).collect();
        let any_failed = outcomes.iter().any(|o| o.status == AssertionStatus::Fail);

        let verdict = if degraded_accuracy || any_failed {
            Verdict::Degraded
        } else {
            Verdict::Healthy
        };
        ValidationReport {
            accuracy,
            drift,
            suspect_layers,
            outcomes,
            verdict,
        }
    }

    /// The suspect-layer heuristic of the Fig. 2 flow: layers over the
    /// drift threshold, falling back to the first drift *jump* (§3.4) when
    /// nothing crosses it outright. Shared by [`Self::validate`] and
    /// [`Self::merge_shards`] so sharded and unsharded reports can never
    /// diverge on suspects.
    fn suspect_layers(&self, drift: &[LayerDrift]) -> Vec<String> {
        let mut suspects: Vec<String> = layers_above(drift, self.drift_threshold)
            .iter()
            .map(|d| d.layer_name().to_string())
            .collect();
        if suspects.is_empty() {
            if let Some(jump) = first_drift_jump(drift, 5.0) {
                if jump.mean_nrmse > self.drift_threshold / 3.0 {
                    suspects.push(jump.layer_name().to_string());
                }
            }
        }
        suspects
    }
}

/// Labelled-decision tallies of one pipeline over one shard — the mergeable
/// form of an accuracy figure (a plain mean of shard accuracies would weight
/// small shards too heavily).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DecisionTally {
    /// Decisions whose prediction matched the label.
    pub correct: u64,
    /// Decisions carrying a ground-truth label.
    pub labelled: u64,
}

impl DecisionTally {
    /// Tallies the labelled decisions of a log set.
    pub fn of(logs: &LogSet) -> Self {
        let mut tally = DecisionTally::default();
        for (_, predicted, label) in logs.decisions() {
            if let Some(label) = label {
                tally.labelled += 1;
                if predicted == label {
                    tally.correct += 1;
                }
            }
        }
        tally
    }

    /// Top-1 accuracy, or `None` without labelled decisions.
    pub fn accuracy(&self) -> Option<f32> {
        (self.labelled > 0).then(|| self.correct as f32 / self.labelled as f32)
    }

    fn add(&mut self, other: DecisionTally) {
        self.correct += other.correct;
        self.labelled += other.labelled;
    }
}

/// The validation result of one frame shard, carrying everything the
/// deterministic merge needs (tallies and weighted drift rather than only
/// the shard-local means).
#[derive(Debug, Clone)]
pub struct ShardValidation {
    /// Global index of the shard's first frame.
    pub start_frame: u64,
    /// Number of frames the shard covers.
    pub frames: u64,
    /// Edge-side decision tallies.
    pub edge_decisions: DecisionTally,
    /// Reference-side decision tallies.
    pub reference_decisions: DecisionTally,
    /// The shard-local report (assertions ran against this shard's frames
    /// only).
    pub report: ValidationReport,
}

struct DriftAccumulator {
    index: usize,
    key: String,
    weighted_sum: f64,
    max_nrmse: f32,
    frames: usize,
}

impl DeploymentValidator {
    /// Validates one shard's (shard-local) log pair, producing the mergeable
    /// per-shard result the sharded replay engine collects.
    pub fn validate_shard(
        &self,
        start_frame: u64,
        edge: &LogSet,
        reference: &LogSet,
    ) -> ShardValidation {
        let report = self.validate(edge, reference);
        ShardValidation {
            start_frame,
            frames: edge.frame_count().max(reference.frame_count()),
            edge_decisions: DecisionTally::of(edge),
            reference_decisions: DecisionTally::of(reference),
            report,
        }
    }

    /// Merges per-shard validations into one report, deterministically:
    /// shards are ordered by `start_frame` before merging, so the result is
    /// a pure function of the shard partition — byte-identical however many
    /// workers produced the shards and however their execution interleaved.
    ///
    /// Merge rules: accuracies re-aggregate from decision tallies; per-layer
    /// drift means are frame-weighted; an assertion fails overall if it
    /// failed in *any* shard (its diagnostic cites the first failing shard),
    /// passes if it ran anywhere without failing, and is skipped only if
    /// every shard skipped it.
    pub fn merge_shards(&self, shards: &[ShardValidation]) -> ValidationReport {
        let mut ordered: Vec<&ShardValidation> = shards.iter().collect();
        ordered.sort_by_key(|s| s.start_frame);

        let mut edge_tally = DecisionTally::default();
        let mut reference_tally = DecisionTally::default();
        let mut drift_order: Vec<String> = Vec::new();
        let mut drift_acc: HashMap<String, DriftAccumulator> = HashMap::new();
        let mut outcome_order: Vec<String> = Vec::new();
        let mut outcomes: HashMap<String, AssertionOutcome> = HashMap::new();

        for shard in &ordered {
            edge_tally.add(shard.edge_decisions);
            reference_tally.add(shard.reference_decisions);
            for d in &shard.report.drift {
                let acc = drift_acc.entry(d.key.clone()).or_insert_with(|| {
                    drift_order.push(d.key.clone());
                    DriftAccumulator {
                        index: d.index,
                        key: d.key.clone(),
                        weighted_sum: 0.0,
                        max_nrmse: 0.0,
                        frames: 0,
                    }
                });
                acc.weighted_sum += d.mean_nrmse as f64 * d.frames as f64;
                acc.max_nrmse = acc.max_nrmse.max(d.max_nrmse);
                acc.frames += d.frames;
            }
            for o in &shard.report.outcomes {
                let rank = |s: AssertionStatus| match s {
                    AssertionStatus::Fail => 2,
                    AssertionStatus::Pass => 1,
                    AssertionStatus::Skipped => 0,
                };
                // Cite the failing shard whenever there is more than one —
                // including when the failing shard is the first to register
                // this assertion.
                let cited = |o: &AssertionOutcome| {
                    let mut out = o.clone();
                    if o.status == AssertionStatus::Fail && shards.len() > 1 {
                        out.detail = format!("shard@{}: {}", shard.start_frame, o.detail);
                    }
                    out
                };
                match outcomes.get_mut(&o.name) {
                    None => {
                        outcome_order.push(o.name.clone());
                        outcomes.insert(o.name.clone(), cited(o));
                    }
                    Some(merged) if rank(o.status) > rank(merged.status) => {
                        *merged = cited(o);
                    }
                    Some(_) => {}
                }
            }
        }

        let drift: Vec<LayerDrift> = drift_order
            .iter()
            .map(|key| {
                let acc = &drift_acc[key];
                LayerDrift {
                    index: acc.index,
                    key: acc.key.clone(),
                    mean_nrmse: (acc.weighted_sum / acc.frames.max(1) as f64) as f32,
                    max_nrmse: acc.max_nrmse,
                    frames: acc.frames,
                }
            })
            .collect();
        let suspect_layers = self.suspect_layers(&drift);

        let accuracy = AccuracyComparison {
            edge: edge_tally.accuracy(),
            reference: reference_tally.accuracy(),
        };
        let degraded_accuracy = accuracy
            .drop()
            .map(|d| d > self.accuracy_tolerance)
            .unwrap_or(false);
        let outcomes: Vec<AssertionOutcome> = outcome_order
            .iter()
            .map(|name| outcomes[name].clone())
            .collect();
        let any_failed = outcomes.iter().any(|o| o.status == AssertionStatus::Fail);
        ValidationReport {
            accuracy,
            drift,
            suspect_layers,
            outcomes,
            verdict: if degraded_accuracy || any_failed {
                Verdict::Degraded
            } else {
                Verdict::Healthy
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::{LogRecord, LogValue, KEY_DECISION};

    fn decisions(correct: usize, total: usize) -> LogSet {
        LogSet::new(
            (0..total)
                .map(|i| LogRecord {
                    frame: i as u64,
                    key: KEY_DECISION.into(),
                    value: LogValue::Decision {
                        predicted: if i < correct { 1 } else { 0 },
                        label: Some(1),
                    },
                })
                .collect(),
        )
    }

    #[test]
    fn healthy_when_accuracies_match() {
        let v = DeploymentValidator::new();
        let edge = decisions(9, 10);
        let reference = decisions(9, 10);
        let report = v.validate(&edge, &reference);
        assert_eq!(report.verdict, Verdict::Healthy);
        assert_eq!(report.accuracy.drop(), Some(0.0));
    }

    #[test]
    fn degraded_on_accuracy_drop() {
        let v = DeploymentValidator::new();
        let edge = decisions(5, 10);
        let reference = decisions(9, 10);
        let report = v.validate(&edge, &reference);
        assert_eq!(report.verdict, Verdict::Degraded);
        let text = report.to_string();
        assert!(text.contains("drop"), "{text}");
    }

    #[test]
    fn merge_shards_reaggregates_accuracy_from_tallies() {
        let v = DeploymentValidator::new();
        // Shard sizes differ: a naive mean of shard accuracies would give
        // (1.0 + 0.0) / 2 = 0.5; the tally-weighted truth is 8/10.
        let big = v.validate_shard(0, &decisions(8, 8), &decisions(8, 8));
        let small = v.validate_shard(8, &decisions(0, 2), &decisions(0, 2));
        let merged = v.merge_shards(&[small, big]);
        assert_eq!(merged.accuracy.edge, Some(0.8));
        assert_eq!(merged.accuracy.drop(), Some(0.0));
        assert_eq!(merged.verdict, Verdict::Healthy);
    }

    #[test]
    fn merge_shards_is_order_independent() {
        let v = DeploymentValidator::new();
        let a = v.validate_shard(0, &decisions(3, 4), &decisions(4, 4));
        let b = v.validate_shard(4, &decisions(1, 4), &decisions(4, 4));
        let forward = v.merge_shards(&[a.clone(), b.clone()]);
        let backward = v.merge_shards(&[b, a]);
        assert_eq!(forward.to_string(), backward.to_string());
        // 4/8 vs 8/8 is a 0.5 drop: degraded.
        assert_eq!(forward.verdict, Verdict::Degraded);
    }

    #[test]
    fn merge_shards_fail_dominates_and_cites_shard() {
        use crate::validate::assertions::FnAssertion;
        let v = DeploymentValidator::empty();
        let fail_report = |start: u64, fails: bool| {
            let validator = DeploymentValidator::empty().with_assertion(FnAssertion::new(
                "domain",
                move |_| {
                    if fails {
                        FnAssertion::failed("domain", "tripped")
                    } else {
                        FnAssertion::passed("domain", "ok")
                    }
                },
            ));
            validator.validate_shard(start, &decisions(1, 1), &decisions(1, 1))
        };
        let merged = v.merge_shards(&[fail_report(0, false), fail_report(4, true)]);
        assert_eq!(merged.outcomes.len(), 1);
        assert_eq!(merged.outcomes[0].status, AssertionStatus::Fail);
        assert!(
            merged.outcomes[0].detail.contains("shard@4"),
            "{}",
            merged.outcomes[0].detail
        );
        assert_eq!(merged.verdict, Verdict::Degraded);
        // The citation must also appear when the *first* shard to register
        // the assertion is the failing one.
        let merged = v.merge_shards(&[fail_report(0, true), fail_report(4, false)]);
        assert!(
            merged.outcomes[0].detail.contains("shard@0"),
            "{}",
            merged.outcomes[0].detail
        );
    }

    #[test]
    fn custom_assertion_participates() {
        use crate::validate::assertions::FnAssertion;
        let v = DeploymentValidator::empty()
            .with_assertion(FnAssertion::new("always_fail", |_| {
                FnAssertion::failed("always_fail", "domain check tripped")
            }));
        assert_eq!(v.assertion_count(), 1);
        let logs = decisions(1, 1);
        let report = v.validate(&logs, &logs);
        assert_eq!(report.verdict, Verdict::Degraded);
        assert_eq!(report.root_causes().len(), 1);
    }
}
