//! The Figure-2 deployment-validation flow: accuracy match → per-layer
//! scrutiny → root-cause assertions, producing a single report.

use std::fmt;

use crate::log::LogSet;
use crate::validate::assertions::{
    Assertion, AssertionOutcome, AssertionStatus, ChannelArrangementAssertion,
    ConstantOutputAssertion, NormalizationRangeAssertion, OrientationAssertion,
    QuantizationDriftAssertion, ResizeFunctionAssertion, ValidationContext,
};
use crate::validate::drift::{first_drift_jump, layers_above, per_layer_drift, LayerDrift};

/// Side-by-side accuracy of the two pipelines.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccuracyComparison {
    /// Edge top-1 accuracy (None when no labelled decisions were logged).
    pub edge: Option<f32>,
    /// Reference top-1 accuracy.
    pub reference: Option<f32>,
}

impl AccuracyComparison {
    /// Accuracy drop `reference - edge`, when both sides are known.
    pub fn drop(&self) -> Option<f32> {
        Some(self.reference? - self.edge?)
    }
}

/// Final verdict of a validation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// No significant deviation found.
    Healthy,
    /// Deployment issues detected; see the report body.
    Degraded,
}

/// Everything the validator found.
#[derive(Debug, Clone)]
pub struct ValidationReport {
    /// Accuracy comparison (step 1 of Fig. 2).
    pub accuracy: AccuracyComparison,
    /// Per-layer drift, in execution order (step 2).
    pub drift: Vec<LayerDrift>,
    /// Names of layers flagged as error-prone.
    pub suspect_layers: Vec<String>,
    /// Assertion outcomes (step 3).
    pub outcomes: Vec<AssertionOutcome>,
    /// Overall verdict.
    pub verdict: Verdict,
}

impl ValidationReport {
    /// Outcomes of failed (bug-detected) assertions.
    pub fn failures(&self) -> Vec<&AssertionOutcome> {
        self.outcomes
            .iter()
            .filter(|o| o.status == AssertionStatus::Fail)
            .collect()
    }

    /// Convenience: root-cause strings of all failed assertions.
    pub fn root_causes(&self) -> Vec<String> {
        self.failures()
            .iter()
            .map(|o| format!("{}: {}", o.name, o.detail))
            .collect()
    }
}

impl fmt::Display for ValidationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "=== ML-EXray deployment validation report ===")?;
        match (self.accuracy.edge, self.accuracy.reference) {
            (Some(e), Some(r)) => writeln!(
                f,
                "accuracy: edge {:.1}% vs reference {:.1}% (drop {:+.1} pp)",
                e * 100.0,
                r * 100.0,
                (r - e) * 100.0
            )?,
            _ => writeln!(f, "accuracy: not available (no labelled decisions logged)")?,
        }
        if !self.suspect_layers.is_empty() {
            writeln!(f, "error-prone layers: {}", self.suspect_layers.join(", "))?;
        }
        for o in &self.outcomes {
            let tag = match o.status {
                AssertionStatus::Pass => "PASS",
                AssertionStatus::Fail => "FAIL",
                AssertionStatus::Skipped => "SKIP",
            };
            writeln!(f, "  [{tag}] {}: {}", o.name, o.detail)?;
        }
        write!(f, "verdict: {:?}", self.verdict)
    }
}

/// The deployment validator: holds thresholds and the assertion suite, and
/// drives the Fig. 2 flow over a pair of log sets.
pub struct DeploymentValidator {
    /// Accuracy drop (fraction) above which the deployment counts as
    /// degraded.
    pub accuracy_tolerance: f32,
    /// Normalized-rMSE threshold for flagging a layer.
    pub drift_threshold: f32,
    assertions: Vec<Box<dyn Assertion>>,
}

impl Default for DeploymentValidator {
    fn default() -> Self {
        Self::new()
    }
}

impl DeploymentValidator {
    /// A validator with the built-in assertion suite: channel arrangement,
    /// normalization range, orientation, resize heuristic, quantization
    /// drift and constant-output detection.
    pub fn new() -> Self {
        DeploymentValidator {
            accuracy_tolerance: 0.02,
            drift_threshold: 0.15,
            assertions: vec![
                Box::new(ChannelArrangementAssertion),
                Box::new(NormalizationRangeAssertion),
                Box::new(OrientationAssertion),
                Box::new(ResizeFunctionAssertion),
                Box::new(QuantizationDriftAssertion::default()),
                Box::new(ConstantOutputAssertion),
            ],
        }
    }

    /// A validator with no built-ins (build your own suite).
    pub fn empty() -> Self {
        DeploymentValidator {
            accuracy_tolerance: 0.02,
            drift_threshold: 0.15,
            assertions: Vec::new(),
        }
    }

    /// Adds an assertion (built-in or user-defined).
    #[must_use]
    pub fn with_assertion(mut self, assertion: impl Assertion + 'static) -> Self {
        self.assertions.push(Box::new(assertion));
        self
    }

    /// Number of registered assertions.
    pub fn assertion_count(&self) -> usize {
        self.assertions.len()
    }

    /// Runs the Fig. 2 flow: (1) compare accuracy, (2) per-layer drift when
    /// degraded or on request, (3) all assertions for root-cause analysis.
    pub fn validate(&self, edge: &LogSet, reference: &LogSet) -> ValidationReport {
        let accuracy = AccuracyComparison {
            edge: edge.accuracy(),
            reference: reference.accuracy(),
        };
        let degraded_accuracy = accuracy
            .drop()
            .map(|d| d > self.accuracy_tolerance)
            .unwrap_or(false);

        let drift = per_layer_drift(edge, reference);
        let mut suspect_layers: Vec<String> = layers_above(&drift, self.drift_threshold)
            .iter()
            .map(|d| d.layer_name().to_string())
            .collect();
        if suspect_layers.is_empty() {
            if let Some(jump) = first_drift_jump(&drift, 5.0) {
                if jump.mean_nrmse > self.drift_threshold / 3.0 {
                    suspect_layers.push(jump.layer_name().to_string());
                }
            }
        }

        let ctx = ValidationContext { edge, reference };
        let outcomes: Vec<AssertionOutcome> =
            self.assertions.iter().map(|a| a.check(&ctx)).collect();
        let any_failed = outcomes.iter().any(|o| o.status == AssertionStatus::Fail);

        let verdict = if degraded_accuracy || any_failed {
            Verdict::Degraded
        } else {
            Verdict::Healthy
        };
        ValidationReport {
            accuracy,
            drift,
            suspect_layers,
            outcomes,
            verdict,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::{LogRecord, LogValue, KEY_DECISION};

    fn decisions(correct: usize, total: usize) -> LogSet {
        LogSet::new(
            (0..total)
                .map(|i| LogRecord {
                    frame: i as u64,
                    key: KEY_DECISION.into(),
                    value: LogValue::Decision {
                        predicted: if i < correct { 1 } else { 0 },
                        label: Some(1),
                    },
                })
                .collect(),
        )
    }

    #[test]
    fn healthy_when_accuracies_match() {
        let v = DeploymentValidator::new();
        let edge = decisions(9, 10);
        let reference = decisions(9, 10);
        let report = v.validate(&edge, &reference);
        assert_eq!(report.verdict, Verdict::Healthy);
        assert_eq!(report.accuracy.drop(), Some(0.0));
    }

    #[test]
    fn degraded_on_accuracy_drop() {
        let v = DeploymentValidator::new();
        let edge = decisions(5, 10);
        let reference = decisions(9, 10);
        let report = v.validate(&edge, &reference);
        assert_eq!(report.verdict, Verdict::Degraded);
        let text = report.to_string();
        assert!(text.contains("drop"), "{text}");
    }

    #[test]
    fn custom_assertion_participates() {
        use crate::validate::assertions::FnAssertion;
        let v = DeploymentValidator::empty()
            .with_assertion(FnAssertion::new("always_fail", |_| {
                FnAssertion::failed("always_fail", "domain check tripped")
            }));
        assert_eq!(v.assertion_count(), 1);
        let logs = decisions(1, 1);
        let report = v.validate(&logs, &logs);
        assert_eq!(report.verdict, Verdict::Degraded);
        assert_eq!(report.root_causes().len(), 1);
    }
}
