//! Online drift validation: the always-on counterpart of the offline
//! replay-validate loop.
//!
//! A serving deployment cannot stop the world to replay a playback set —
//! but it *can* siphon a sampled fraction of live traffic into a rolling
//! reservoir and periodically replay just those frames through a trusted
//! reference backend. [`OnlineValidator`] is that reservoir plus the check:
//! [`OnlineValidator::observe`] is called from the serving hot path with
//! sampled request inputs (a bounded clone, nothing else), and
//! [`OnlineValidator::check`] — run from a background thread or an
//! operator's probe, never from the inference workers — feeds the reservoir
//! into the §4.4 differential debugger ([`diff_backends`]) to compare the
//! live backend against the reference and raise a [`DriftAlarm`] with the
//! first divergent layer already localized.
//!
//! The check builds its own private backend instances from the
//! [`BackendSpec`]s, so it never contends with (or perturbs) the serving
//! workers' interpreters: monitoring stays on, service stays up.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use mlexray_nn::{BackendSpec, Graph};
use mlexray_tensor::Tensor;

use crate::validate::differential::{diff_backends, DifferentialOptions};
use crate::validate::report::DifferentialReport;
use crate::Result;

/// Tuning for an [`OnlineValidator`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlineValidatorConfig {
    /// Rolling reservoir capacity in frames; older sampled frames are
    /// evicted first. Bounds the validator's memory no matter how long the
    /// service runs.
    pub window: usize,
    /// Minimum reservoir occupancy before [`OnlineValidator::check`] will
    /// run (a drift verdict over one frame is noise, not signal).
    pub min_frames: usize,
    /// Differential-run tuning for the check: divergence threshold,
    /// bisection, and replay sharding.
    pub options: DifferentialOptions,
}

impl Default for OnlineValidatorConfig {
    fn default() -> Self {
        OnlineValidatorConfig {
            window: 32,
            min_frames: 4,
            options: DifferentialOptions::default(),
        }
    }
}

/// The outcome of one online drift check.
#[derive(Debug, Clone)]
pub struct DriftAlarm {
    /// Frames the check compared (reservoir occupancy at check time).
    pub frames: usize,
    /// Whether the live backend diverged from the reference beyond the
    /// configured threshold — the rollback/page signal.
    pub raised: bool,
    /// The full differential report backing the verdict (first divergent
    /// layer, per-layer drift, bisection).
    pub report: DifferentialReport,
}

impl fmt::Display for DriftAlarm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.raised {
            write!(
                f,
                "DRIFT ALARM over {} sampled frames: first divergent layer {:?}",
                self.frames,
                self.report.divergent_layer().unwrap_or("<unknown>")
            )
        } else {
            write!(f, "no drift over {} sampled frames", self.frames)
        }
    }
}

/// Rolling counters of an [`OnlineValidator`]'s lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OnlineValidatorStats {
    /// Frames ever offered via [`OnlineValidator::observe`].
    pub observed: u64,
    /// Checks that actually ran (reservoir held at least `min_frames`).
    pub checks: u64,
    /// Checks whose alarm was raised.
    pub alarms: u64,
}

/// A rolling reservoir of sampled live-traffic frames plus the on-demand
/// differential check against a reference backend (see the module docs).
pub struct OnlineValidator {
    config: OnlineValidatorConfig,
    /// Frames are `Arc`-wrapped so the lock is only ever held for pointer
    /// moves — the deep tensor clones happen outside the critical section
    /// (serving workers sampling concurrently must not serialize on a
    /// memcpy).
    reservoir: Mutex<VecDeque<Arc<Vec<Tensor>>>>,
    observed: AtomicU64,
    checks: AtomicU64,
    alarms: AtomicU64,
}

impl fmt::Debug for OnlineValidator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OnlineValidator")
            .field("config", &self.config)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl OnlineValidator {
    /// Creates an empty validator.
    pub fn new(config: OnlineValidatorConfig) -> Self {
        OnlineValidator {
            config,
            reservoir: Mutex::new(VecDeque::with_capacity(config.window.max(1))),
            observed: AtomicU64::new(0),
            checks: AtomicU64::new(0),
            alarms: AtomicU64::new(0),
        }
    }

    /// The validator's configuration.
    pub fn config(&self) -> OnlineValidatorConfig {
        self.config
    }

    /// Offers one sampled request's inputs to the rolling reservoir
    /// (evicting the oldest frame when full). Called from the serving hot
    /// path — the cost is one bounded clone (taken *before* the lock) and
    /// a pointer-move critical section.
    pub fn observe(&self, inputs: &[Tensor]) {
        self.observed.fetch_add(1, Ordering::AcqRel);
        let frame = Arc::new(inputs.to_vec());
        let mut reservoir = self.reservoir.lock();
        if reservoir.len() >= self.config.window.max(1) {
            reservoir.pop_front();
        }
        reservoir.push_back(frame);
    }

    /// Current reservoir occupancy.
    pub fn sampled_frames(&self) -> usize {
        self.reservoir.lock().len()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> OnlineValidatorStats {
        OnlineValidatorStats {
            observed: self.observed.load(Ordering::Acquire),
            checks: self.checks.load(Ordering::Acquire),
            alarms: self.alarms.load(Ordering::Acquire),
        }
    }

    /// Replays the reservoir through both backends and localizes any drift:
    /// `baseline` is the trusted reference, `live` the spec the service is
    /// actually running. Returns `None` while the reservoir holds fewer than
    /// `min_frames` frames. The reservoir is snapshotted, not drained —
    /// sampling continues concurrently, and a follow-up check sees the
    /// window as it rolled forward.
    ///
    /// # Errors
    ///
    /// Propagates backend construction and execution errors.
    pub fn check(
        &self,
        graph: &Graph,
        baseline: BackendSpec,
        live: BackendSpec,
    ) -> Result<Option<DriftAlarm>> {
        // Snapshot under the lock is Arc clones only; the owned frame
        // copies the differential run needs are materialized after release.
        let snapshot: Vec<Arc<Vec<Tensor>>> = {
            let reservoir = self.reservoir.lock();
            if reservoir.len() < self.config.min_frames.max(1) {
                return Ok(None);
            }
            reservoir.iter().cloned().collect()
        };
        let frames: Vec<Vec<Tensor>> = snapshot.iter().map(|f| f.as_ref().clone()).collect();
        let report = diff_backends(graph, baseline, live, &frames, &self.config.options)?;
        let raised = !report.is_equivalent();
        self.checks.fetch_add(1, Ordering::AcqRel);
        if raised {
            self.alarms.fetch_add(1, Ordering::AcqRel);
        }
        Ok(Some(DriftAlarm {
            frames: frames.len(),
            raised,
            report,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlexray_nn::{Activation, GraphBuilder, KernelBugs, Padding};
    use mlexray_tensor::Shape;

    fn graph() -> Graph {
        let mut b = GraphBuilder::new("online");
        let x = b.input("x", Shape::nhwc(1, 4, 4, 2));
        let w = b.constant(
            "w",
            Tensor::from_f32(
                Shape::new(vec![2, 3, 3, 2]),
                (0..36).map(|i| (i as f32 * 0.29).sin() * 0.5).collect(),
            )
            .unwrap(),
        );
        let y = b
            .conv2d("conv", x, w, None, 1, Padding::Same, Activation::Relu)
            .unwrap();
        b.output(y);
        b.finish().unwrap()
    }

    fn frame(i: usize) -> Vec<Tensor> {
        vec![Tensor::from_f32(
            Shape::nhwc(1, 4, 4, 2),
            (0..32)
                .map(|j| ((i * 32 + j) as f32 * 0.41).cos())
                .collect(),
        )
        .unwrap()]
    }

    #[test]
    fn reservoir_rolls_and_check_gates_on_min_frames() {
        let validator = OnlineValidator::new(OnlineValidatorConfig {
            window: 4,
            min_frames: 3,
            ..Default::default()
        });
        let g = graph();
        validator.observe(&frame(0));
        assert!(validator
            .check(&g, BackendSpec::reference(), BackendSpec::optimized())
            .unwrap()
            .is_none());
        for i in 1..10 {
            validator.observe(&frame(i));
        }
        assert_eq!(validator.sampled_frames(), 4, "window must bound memory");
        assert_eq!(validator.stats().observed, 10);
    }

    #[test]
    fn clean_live_backend_raises_no_alarm_at_tolerance() {
        let validator = OnlineValidator::new(OnlineValidatorConfig::default());
        let g = graph();
        for i in 0..6 {
            validator.observe(&frame(i));
        }
        let alarm = validator
            .check(&g, BackendSpec::reference(), BackendSpec::optimized())
            .unwrap()
            .expect("enough frames");
        assert!(!alarm.raised, "{alarm}");
        assert_eq!(alarm.frames, 6);
        assert_eq!(validator.stats().checks, 1);
        assert_eq!(validator.stats().alarms, 0);
    }

    #[test]
    fn injected_defect_raises_a_localized_alarm() {
        let validator = OnlineValidator::new(OnlineValidatorConfig::default());
        let g = graph();
        for i in 0..6 {
            validator.observe(&frame(i));
        }
        // A live backend with the depthwise defect disabled but a poisoned
        // conv path: emulate via reversed accumulation at bitwise threshold.
        let strict = OnlineValidator::new(OnlineValidatorConfig {
            options: DifferentialOptions::bitwise(),
            ..OnlineValidatorConfig::default()
        });
        for i in 0..6 {
            strict.observe(&frame(i));
        }
        let live = BackendSpec::Optimized {
            bugs: KernelBugs::none(),
        };
        let alarm = strict
            .check(&g, BackendSpec::reference(), live)
            .unwrap()
            .expect("enough frames");
        assert!(
            alarm.raised,
            "blocked vs canonical summation differs bitwise"
        );
        assert_eq!(alarm.report.divergent_layer(), Some("conv"));
        assert!(alarm.to_string().contains("DRIFT ALARM"), "{alarm}");
        // The tolerant validator sees the same pair as clean.
        let tolerant = validator
            .check(&g, BackendSpec::reference(), live)
            .unwrap()
            .unwrap();
        assert!(!tolerant.raised);
    }
}
