//! Deployment validation (§3.4): accuracy comparison, per-layer output
//! drift, per-layer latency analysis, the assertion framework and the
//! Figure-2 debugging flow.

mod assertions;
mod differential;
mod drift;
mod latency;
mod online;
mod report;

pub use assertions::{
    Assertion, AssertionOutcome, AssertionStatus, ChannelArrangementAssertion,
    ConstantOutputAssertion, FnAssertion, LatencyBudgetAssertion, MemoryBudgetAssertion,
    NormalizationRangeAssertion, OrientationAssertion, QuantizationDriftAssertion,
    ResizeFunctionAssertion, StragglerLayerAssertion, ValidationContext,
};
pub use differential::{diff_backends, diff_image_pipelines, DifferentialOptions};
pub use drift::{first_drift_jump, layers_above, per_layer_drift, LayerDrift};
pub use latency::{compare_layer_latency, per_layer_latency, stragglers, LayerLatency};
pub use online::{DriftAlarm, OnlineValidator, OnlineValidatorConfig, OnlineValidatorStats};
pub use report::{
    AccuracyComparison, BisectionOutcome, BisectionVerdict, DecisionTally, DeploymentValidator,
    DifferentialReport, DifferentialVerdict, DivergentLayer, ShardValidation, ValidationReport,
    Verdict,
};
