//! Per-layer output drift: the normalized-rMSE analysis of §3.4 that
//! produces Fig. 6 and localizes error-prone ops.

use mlexray_tensor::normalized_rmse;

use crate::log::LogSet;

/// Drift of one layer between the edge and reference pipelines, aggregated
/// over frames.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerDrift {
    /// Execution order of the layer in the edge logs.
    pub index: usize,
    /// Layer log key (`layer/<name>/output`).
    pub key: String,
    /// Mean normalized rMSE over compared frames.
    pub mean_nrmse: f32,
    /// Worst-frame normalized rMSE.
    pub max_nrmse: f32,
    /// Number of frames compared.
    pub frames: usize,
}

impl LayerDrift {
    /// The bare layer name (strips the `layer/` prefix and `/output`
    /// suffix).
    pub fn layer_name(&self) -> &str {
        self.key
            .strip_prefix("layer/")
            .and_then(|s| s.strip_suffix("/output"))
            .unwrap_or(&self.key)
    }
}

/// Computes per-layer normalized rMSE between two log sets, matching layers
/// *by name* (graph variants insert/remove nodes, so indices don't align —
/// names are stable across conversion and quantization in this stack).
///
/// Layers appearing in only one pipeline (e.g. `Quantize` boundaries) are
/// skipped, as are frames where either side logged only summaries.
pub fn per_layer_drift(edge: &LogSet, reference: &LogSet) -> Vec<LayerDrift> {
    let frames = edge.frame_count().min(reference.frame_count());
    let mut drifts = Vec::new();
    for (index, key) in edge.keys_with_prefix("layer/").iter().enumerate() {
        if !key.ends_with("/output") {
            continue;
        }
        let mut sum = 0.0f64;
        let mut max = 0.0f32;
        let mut compared = 0usize;
        for frame in 0..frames {
            let (Some(e), Some(r)) = (edge.get(frame, key), reference.get(frame, key)) else {
                continue;
            };
            let (Some(ev), Some(rv)) = (e.value.values(), r.value.values()) else {
                continue;
            };
            if ev.len() != rv.len() {
                continue;
            }
            let nrmse = normalized_rmse(ev, rv);
            sum += nrmse as f64;
            max = max.max(nrmse);
            compared += 1;
        }
        if compared > 0 {
            drifts.push(LayerDrift {
                index,
                key: (*key).to_string(),
                mean_nrmse: (sum / compared as f64) as f32,
                max_nrmse: max,
                frames: compared,
            });
        }
    }
    drifts
}

/// Layers whose mean drift exceeds `threshold` — the suspects list.
pub fn layers_above(drifts: &[LayerDrift], threshold: f32) -> Vec<&LayerDrift> {
    drifts.iter().filter(|d| d.mean_nrmse > threshold).collect()
}

/// The first layer whose drift jumps by more than `factor` over the running
/// maximum of all earlier layers — "a jump of rMSE after a particular op can
/// indicate an error in that op" (§3.4).
pub fn first_drift_jump(drifts: &[LayerDrift], factor: f32) -> Option<&LayerDrift> {
    let mut running_max = 0.0f32;
    for d in drifts {
        if running_max > 0.0 && d.mean_nrmse > running_max * factor {
            return Some(d);
        }
        if running_max == 0.0 && d.mean_nrmse > 0.05 {
            // A jump from (near-)zero is also a jump.
            return Some(d);
        }
        running_max = running_max.max(d.mean_nrmse);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::{LogRecord, LogValue};
    use mlexray_tensor::Shape;

    fn tensor_record(frame: u64, key: &str, values: Vec<f32>) -> LogRecord {
        LogRecord {
            frame,
            key: key.into(),
            value: LogValue::TensorFull {
                shape: Shape::vector(values.len()),
                values,
            },
        }
    }

    fn logsets() -> (LogSet, LogSet) {
        let reference = LogSet::new(vec![
            tensor_record(0, "layer/a/output", vec![0.0, 1.0]),
            tensor_record(0, "layer/b/output", vec![0.0, 2.0]),
        ]);
        let edge = LogSet::new(vec![
            tensor_record(0, "layer/a/output", vec![0.0, 1.0]),
            tensor_record(0, "layer/b/output", vec![2.0, 0.0]),
        ]);
        (edge, reference)
    }

    #[test]
    fn drift_is_zero_for_identical_layers() {
        let (edge, reference) = logsets();
        let drifts = per_layer_drift(&edge, &reference);
        assert_eq!(drifts.len(), 2);
        assert_eq!(drifts[0].mean_nrmse, 0.0);
        assert!(drifts[1].mean_nrmse > 0.5);
        assert_eq!(drifts[1].layer_name(), "b");
    }

    #[test]
    fn suspects_and_jumps() {
        let (edge, reference) = logsets();
        let drifts = per_layer_drift(&edge, &reference);
        let suspects = layers_above(&drifts, 0.1);
        assert_eq!(suspects.len(), 1);
        assert_eq!(suspects[0].layer_name(), "b");
        let jump = first_drift_jump(&drifts, 3.0).unwrap();
        assert_eq!(jump.layer_name(), "b");
    }

    #[test]
    fn mismatched_layers_skipped() {
        let reference = LogSet::new(vec![tensor_record(0, "layer/a/output", vec![1.0])]);
        let edge = LogSet::new(vec![
            tensor_record(0, "layer/a/output", vec![1.0]),
            tensor_record(0, "layer/only_edge/output", vec![1.0]),
        ]);
        let drifts = per_layer_drift(&edge, &reference);
        assert_eq!(drifts.len(), 1);
    }

    #[test]
    fn no_jump_in_flat_profile() {
        let drifts = vec![
            LayerDrift {
                index: 0,
                key: "layer/a/output".into(),
                mean_nrmse: 0.01,
                max_nrmse: 0.01,
                frames: 1,
            },
            LayerDrift {
                index: 1,
                key: "layer/b/output".into(),
                mean_nrmse: 0.012,
                max_nrmse: 0.02,
                frames: 1,
            },
        ];
        assert!(first_drift_jump(&drifts, 3.0).is_none());
    }
}
