//! The per-layer differential debugger: §4.4's cross-runtime comparison as
//! a first-class subsystem.
//!
//! A differential run replays the same frames through two
//! [`ExecutionBackend`]s (described by [`BackendSpec`]s so every replay
//! worker can build its own instance), aligns the two per-layer
//! [`mlexray_nn::LayerRecord`] streams by node name, computes per-layer
//! drift with the §3.4 normalized-rMSE metric
//! ([`crate::validate::per_layer_drift`]), and reports the **first
//! divergent layer** in execution order.
//!
//! When [`DifferentialOptions::bisect`] is set, the debugger then confirms
//! the localization: it re-runs the graph prefix under the *reference*
//! backend to obtain trusted inputs for the suspect node, re-executes that
//! node **in isolation** under both backends on those identical inputs, and
//! classifies the divergence as op-local (the defect is in that operator —
//! localization confirmed) or propagated (inherited from upstream
//! numerics).
//!
//! Both runs go through the sharded replay engine ([`crate::replay`]):
//! frames are partitioned into shards, workers each own a private backend
//! instance, and per-shard records merge deterministically — the resulting
//! [`DifferentialReport`] is byte-identical across worker counts and
//! micro-batch settings (pinned by `crates/core/tests/differential_replay.rs`).

use mlexray_nn::{BackendSpec, Graph, GraphBuilder, LayerObserver, LayerRecord, TensorDef};
use mlexray_tensor::{normalized_rmse, Tensor};

use crate::log::{layer_output_key, LogRecord, LogSet, LogValue};
use crate::monitor::MonitorConfig;
use crate::pipeline::{ImagePipeline, LabeledFrame};
use crate::replay::{replay_sharded, run_sharded, shard_partition, ReplayOptions};
use crate::validate::drift::{per_layer_drift, LayerDrift};
use crate::validate::report::{
    BisectionOutcome, BisectionVerdict, DifferentialReport, DifferentialVerdict, DivergentLayer,
};
use crate::{ExrayError, Result};

/// Tuning for a differential run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DifferentialOptions {
    /// A layer counts as divergent when its **worst-frame** normalized rMSE
    /// exceeds this. The default (`1e-4`) sits above the benign
    /// summation-order drift between kernel flavors and far below any real
    /// defect; pass `0.0` to demand bitwise equivalence.
    pub threshold: f32,
    /// Confirm the localization by isolated re-execution of the first
    /// divergent op on reference-prefix inputs.
    pub bisect: bool,
    /// Sharding/micro-batch tuning for the two replay passes. The monitor
    /// configuration is ignored — differential runs always capture full
    /// per-layer tensors.
    pub replay: ReplayOptions,
}

impl Default for DifferentialOptions {
    fn default() -> Self {
        DifferentialOptions {
            threshold: 1e-4,
            bisect: true,
            replay: ReplayOptions::default(),
        }
    }
}

impl DifferentialOptions {
    /// Bitwise-strict options: any value-level difference in any layer
    /// output on any frame counts as divergence (including NaN/Inf on one
    /// side only; differences confined to the sign of zero do not score).
    pub fn bitwise() -> Self {
        DifferentialOptions {
            threshold: 0.0,
            ..Default::default()
        }
    }
}

/// Streams per-layer outputs of a backend run into globally-numbered log
/// records (frame = `base + in-batch index`), capturing full tensors.
struct LayerLogCapture {
    base: u64,
    records: Vec<LogRecord>,
}

impl LayerObserver for LayerLogCapture {
    fn on_layer(&mut self, record: &LayerRecord<'_>) {
        self.records.push(LogRecord {
            frame: self.base + record.batch as u64,
            key: layer_output_key(record.name),
            value: LogValue::of_tensor(record.output, true),
        });
    }
}

/// Replays `frames` through a backend built from `spec` on the sharded
/// worker pool, returning the merged per-layer log set. Worker count and
/// micro-batching cannot change the result: layer values are
/// batching-invariant (the `batch_equivalence` suite pins this) and shards
/// merge sorted by start frame.
fn run_backend_sharded(
    graph: &Graph,
    spec: BackendSpec,
    frames: &[Vec<Tensor>],
    replay: &ReplayOptions,
) -> Result<LogSet> {
    let partition = shard_partition(frames.len(), replay.shard_frames);
    let lease = replay.lease_workers(partition.len());
    let workers = lease.cores();
    let micro_batch = replay.micro_batch.max(1);
    let chunks = run_sharded(
        &partition,
        workers,
        replay.effective_queue_depth(workers),
        || spec.build(graph).map_err(ExrayError::from),
        |backend, shard| -> Result<Vec<LogRecord>> {
            let mut capture = LayerLogCapture {
                base: 0,
                records: Vec::new(),
            };
            for (i, chunk) in frames[shard.clone()].chunks(micro_batch).enumerate() {
                capture.base = (shard.start + i * micro_batch) as u64;
                let refs: Vec<&[Tensor]> = chunk.iter().map(Vec::as_slice).collect();
                backend.invoke_batch_observed(&refs, &mut capture)?;
            }
            Ok(capture.records)
        },
    )?;
    Ok(LogSet::new(
        chunks.into_iter().flat_map(|(_, r)| r).collect(),
    ))
}

/// Runs the full differential debugger over a graph: both backends replay
/// `frames` (each frame is one input set) through the sharded replay
/// engine, per-layer drift localizes the first divergent layer, and — with
/// [`DifferentialOptions::bisect`] — an isolated re-execution of that op on
/// reference-prefix inputs confirms whether the defect is op-local.
///
/// # Errors
///
/// Propagates backend construction and execution errors.
pub fn diff_backends(
    graph: &Graph,
    baseline: BackendSpec,
    candidate: BackendSpec,
    frames: &[Vec<Tensor>],
    options: &DifferentialOptions,
) -> Result<DifferentialReport> {
    let baseline_logs = run_backend_sharded(graph, baseline, frames, &options.replay)?;
    let candidate_logs = run_backend_sharded(graph, candidate, frames, &options.replay)?;
    let static_findings = mlexray_nn::analysis::analyze(graph).diagnostics;
    let mut report = localize(
        baseline.label().to_string(),
        candidate.label().to_string(),
        &baseline_logs,
        &candidate_logs,
        frames.len(),
        options.threshold,
    );
    report.static_findings = static_findings;
    if options.bisect {
        if let Some(divergent) = report.first_divergent.clone() {
            let inputs = &frames[divergent.worst_frame as usize];
            report.bisection = Some(bisect(
                graph,
                baseline,
                candidate,
                inputs,
                &divergent,
                prefix_max(&report.drift, divergent.index),
                options.threshold,
            )?);
        }
    }
    Ok(report)
}

/// Differential run over two image pipelines (the replay-engine shape used
/// by deployment validation): both pipelines replay the frames sharded with
/// full per-layer capture, and localization proceeds as in
/// [`diff_backends`]. Bisection runs when both pipelines deploy the *same*
/// graph (cross-variant comparisons localize but cannot isolate an op on
/// shared inputs); the suspect frame is preprocessed through the baseline
/// pipeline's (canonical) configuration.
///
/// # Errors
///
/// Propagates pipeline and backend errors.
pub fn diff_image_pipelines(
    baseline: &ImagePipeline,
    candidate: &ImagePipeline,
    frames: &[LabeledFrame],
    options: &DifferentialOptions,
) -> Result<DifferentialReport> {
    let mut replay = options.replay;
    replay.monitor = MonitorConfig::offline_validation();
    let (baseline_logs, _) = replay_sharded(baseline, frames, &replay)?;
    let (candidate_logs, _) = replay_sharded(candidate, frames, &replay)?;
    let baseline_spec = BackendSpec::of_options(baseline.options);
    let candidate_spec = BackendSpec::of_options(candidate.options);
    let mut report = localize(
        baseline_spec.label().to_string(),
        candidate_spec.label().to_string(),
        &baseline_logs,
        &candidate_logs,
        frames.len(),
        options.threshold,
    );
    if options.bisect && baseline.model.graph == candidate.model.graph {
        if let Some(divergent) = report.first_divergent.clone() {
            let image = &frames[divergent.worst_frame as usize].image;
            let inputs = vec![baseline.preprocess.apply(image)?];
            report.bisection = Some(bisect(
                &baseline.model.graph,
                baseline_spec,
                candidate_spec,
                &inputs,
                &divergent,
                prefix_max(&report.drift, divergent.index),
                options.threshold,
            )?);
        }
    }
    Ok(report)
}

/// Worst per-layer `max_nrmse` over the layers before `index` — the prefix
/// agreement backing a localization.
fn prefix_max(drift: &[LayerDrift], index: usize) -> f32 {
    drift
        .iter()
        .take_while(|d| d.index != index)
        .map(|d| d.max_nrmse)
        .fold(0.0, f32::max)
}

/// Drift computation + first-divergent localization over two merged log
/// sets. Drift entries are re-indexed densely in execution order (the raw
/// key enumeration skips latency keys).
fn localize(
    baseline_label: String,
    candidate_label: String,
    baseline_logs: &LogSet,
    candidate_logs: &LogSet,
    frames: usize,
    threshold: f32,
) -> DifferentialReport {
    let mut drift = per_layer_drift(candidate_logs, baseline_logs);
    for (i, d) in drift.iter_mut().enumerate() {
        d.index = i;
    }
    // Localization re-scores each layer with the non-finite-robust metric
    // rather than trusting the drift aggregate: a NaN/Inf produced by one
    // backend poisons `mean_nrmse` (NaN) while `f32::max` silently drops it
    // from `max_nrmse`, so a plain `max_nrmse > threshold` scan would
    // report the exact defect class this debugger exists for as Equivalent.
    let first_divergent = drift.iter().find_map(|d| {
        let (frame, score) = worst_frame_score(candidate_logs, baseline_logs, &d.key);
        (score > threshold).then(|| DivergentLayer {
            index: d.index,
            layer: d.layer_name().to_string(),
            mean_nrmse: d.mean_nrmse,
            max_nrmse: score,
            worst_frame: frame,
        })
    });
    let verdict = if first_divergent.is_some() {
        DifferentialVerdict::Diverged
    } else {
        DifferentialVerdict::Equivalent
    };
    DifferentialReport {
        baseline: baseline_label,
        candidate: candidate_label,
        frames,
        threshold,
        drift,
        first_divergent,
        bisection: None,
        static_findings: Vec::new(),
        verdict,
    }
}

/// Divergence score of one layer on one frame: exactly `0.0` for
/// bitwise-identical values (identical NaNs included), `+inf` when the
/// values differ and either side carries a non-finite element (NaN/Inf
/// divergence must never score below any threshold), normalized rMSE
/// otherwise. Sign-of-zero-only differences score `0.0`.
fn frame_score(candidate: &[f32], baseline: &[f32]) -> f32 {
    if candidate.len() == baseline.len()
        && candidate
            .iter()
            .zip(baseline)
            .all(|(c, b)| c.to_bits() == b.to_bits())
    {
        return 0.0;
    }
    let nrmse = normalized_rmse(candidate, baseline);
    if nrmse.is_finite() {
        nrmse
    } else {
        f32::INFINITY
    }
}

/// The worst [`frame_score`] for `key` across the compared frames, with the
/// frame it occurred on (ties resolve to the lowest frame — deterministic
/// whatever order the shards merged in).
fn worst_frame_score(candidate: &LogSet, baseline: &LogSet, key: &str) -> (u64, f32) {
    let frames = candidate.frame_count().min(baseline.frame_count());
    let mut worst = (0u64, f32::NEG_INFINITY);
    for frame in 0..frames {
        let (Some(c), Some(b)) = (candidate.get(frame, key), baseline.get(frame, key)) else {
            continue;
        };
        let (Some(cv), Some(bv)) = (c.value.values(), b.value.values()) else {
            continue;
        };
        if cv.len() != bv.len() {
            continue;
        }
        let score = frame_score(cv, bv);
        if score > worst.1 {
            worst = (frame, score);
        }
    }
    (worst.0, worst.1.max(0.0))
}

/// Captures every node's output tensor (typed, quantized) during a
/// single-frame prefix replay.
#[derive(Default)]
struct PrefixCapture {
    outputs: Vec<Option<Tensor>>,
}

impl LayerObserver for PrefixCapture {
    fn on_layer(&mut self, record: &LayerRecord<'_>) {
        if self.outputs.len() <= record.index {
            self.outputs.resize(record.index + 1, None);
        }
        self.outputs[record.index] = Some(record.output.clone());
    }
}

/// The bisection pass: re-runs the graph prefix under the **reference**
/// backend to obtain trusted inputs for the divergent node, then executes
/// that node in isolation under both specs on those identical inputs.
fn bisect(
    graph: &Graph,
    baseline: BackendSpec,
    candidate: BackendSpec,
    frame_inputs: &[Tensor],
    divergent: &DivergentLayer,
    prefix_max_nrmse: f32,
    threshold: f32,
) -> Result<BisectionOutcome> {
    // Trusted prefix activations: the frame replayed under the reference
    // backend (ML-EXray's known-correct runtime), whatever the baseline of
    // the differential run was.
    let mut prefix = PrefixCapture::default();
    BackendSpec::reference()
        .build(graph)?
        .invoke_observed(frame_inputs, &mut prefix)?;

    let node = graph
        .node_by_name(&divergent.layer)
        .map(|(_, n)| n)
        .ok_or_else(|| {
            ExrayError::Validation(format!(
                "divergent layer '{}' not present in the graph",
                divergent.layer
            ))
        })?;

    // Isolate the node: constants inline, runtime operands become graph
    // inputs fed with the reference-prefix values.
    let mut b = GraphBuilder::new(format!("isolated/{}", node.name));
    let mut mapped = Vec::with_capacity(node.inputs.len());
    let mut isolated_inputs = Vec::new();
    for &id in &node.inputs {
        let def = graph.tensor(id);
        match def.as_constant() {
            Some(t) => mapped.push(b.constant(def.name(), t.clone())),
            None => {
                let value = if let Some(pos) = graph.inputs().iter().position(|&gid| gid == id) {
                    frame_inputs[pos].clone()
                } else {
                    let producer = graph
                        .nodes()
                        .iter()
                        .position(|n| n.output == id)
                        .and_then(|i| prefix.outputs.get(i).cloned().flatten())
                        .ok_or_else(|| {
                            ExrayError::Validation(format!(
                                "no captured value for operand '{}' of '{}'",
                                def.name(),
                                node.name
                            ))
                        })?;
                    producer
                };
                mapped.push(b.input_typed(
                    def.name(),
                    def.shape().clone(),
                    def.dtype(),
                    def.quant().cloned(),
                ));
                isolated_inputs.push(value);
            }
        }
    }
    let out_def: &TensorDef = graph.tensor(node.output);
    let out = b.push_node(
        node.name.clone(),
        node.op.clone(),
        mapped,
        out_def.shape().clone(),
        out_def.dtype(),
        out_def.quant().cloned(),
    );
    b.output(out);
    let isolated = b.finish()?;

    let run = |spec: BackendSpec| -> Result<Vec<f32>> {
        let outputs = spec.build(&isolated)?.invoke(&isolated_inputs)?;
        Ok(outputs[0].to_f32_vec())
    };
    let a = run(baseline)?;
    let c = run(candidate)?;
    // Same non-finite-robust scoring as localization: identical NaNs agree
    // (score 0), differing values with a NaN/Inf on either side diverge
    // unconditionally.
    let isolated_nrmse = frame_score(&c, &a);
    Ok(BisectionOutcome {
        layer: divergent.layer.clone(),
        frame: divergent.worst_frame,
        isolated_nrmse,
        prefix_max_nrmse,
        verdict: if isolated_nrmse > threshold {
            BisectionVerdict::OpLocal
        } else {
            BisectionVerdict::Propagated
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlexray_nn::{Activation, EdgeNumerics, KernelBugs, Padding};
    use mlexray_tensor::Shape;

    fn conv_chain() -> Graph {
        let mut b = GraphBuilder::new("chain");
        let x = b.input("x", Shape::nhwc(1, 5, 5, 2));
        let w1 = b.constant(
            "w1",
            Tensor::from_f32(
                Shape::new(vec![3, 3, 3, 2]),
                (0..54).map(|i| (i as f32 * 0.13).sin() * 0.5).collect(),
            )
            .unwrap(),
        );
        let c1 = b
            .conv2d("conv1", x, w1, None, 1, Padding::Same, Activation::Relu)
            .unwrap();
        let w2 = b.constant(
            "w2",
            Tensor::from_f32(
                Shape::new(vec![2, 1, 1, 3]),
                (0..6).map(|i| (i as f32 * 0.41).cos() * 0.6).collect(),
            )
            .unwrap(),
        );
        let c2 = b
            .conv2d("conv2", c1, w2, None, 1, Padding::Same, Activation::None)
            .unwrap();
        b.output(c2);
        b.finish().unwrap()
    }

    fn frames(n: usize) -> Vec<Vec<Tensor>> {
        (0..n)
            .map(|i| {
                vec![Tensor::from_f32(
                    Shape::nhwc(1, 5, 5, 2),
                    (0..50)
                        .map(|j| ((i * 50 + j) as f32 * 0.17).sin())
                        .collect(),
                )
                .unwrap()]
            })
            .collect()
    }

    #[test]
    fn identical_specs_are_equivalent_bitwise() {
        let g = conv_chain();
        let report = diff_backends(
            &g,
            BackendSpec::optimized(),
            BackendSpec::optimized(),
            &frames(3),
            &DifferentialOptions::bitwise(),
        )
        .unwrap();
        assert!(report.is_equivalent());
        assert!(report.first_divergent.is_none());
        assert!(report.bisection.is_none());
        assert_eq!(report.drift.len(), 2);
    }

    #[test]
    fn flavors_diverge_bitwise_but_not_at_tolerance() {
        let g = conv_chain();
        let strict = diff_backends(
            &g,
            BackendSpec::reference(),
            BackendSpec::optimized(),
            &frames(3),
            &DifferentialOptions::bitwise(),
        )
        .unwrap();
        // Blocked vs sequential summation differs bitwise on the multi-tap
        // conv1 reduction...
        assert_eq!(strict.verdict, DifferentialVerdict::Diverged);
        // ...but is benign at the default reassociation tolerance.
        let tolerant = diff_backends(
            &g,
            BackendSpec::reference(),
            BackendSpec::optimized(),
            &frames(3),
            &DifferentialOptions::default(),
        )
        .unwrap();
        assert!(tolerant.is_equivalent(), "{tolerant}");
    }

    #[test]
    fn emulator_divergence_localizes_to_first_gemm_layer() {
        let g = conv_chain();
        let numerics = EdgeNumerics {
            accumulation: mlexray_nn::AccumOrder::Reversed,
            ..EdgeNumerics::faithful()
        };
        let report = diff_backends(
            &g,
            BackendSpec::reference(),
            BackendSpec::emulator(numerics),
            &frames(3),
            &DifferentialOptions::bitwise(),
        )
        .unwrap();
        assert_eq!(report.verdict, DifferentialVerdict::Diverged);
        assert_eq!(report.divergent_layer(), Some("conv1"));
        let bisection = report.bisection.expect("bisect defaults on");
        assert_eq!(bisection.verdict, BisectionVerdict::OpLocal);
        assert_eq!(bisection.layer, "conv1");
    }

    /// Non-finite divergence must be flagged, not silently dropped:
    /// `normalized_rmse` goes NaN on NaN/Inf inputs, `f32::max` drops NaN
    /// from the drift aggregate, and `NaN > threshold` is false — so the
    /// naive scan would report a poisoned layer as Equivalent.
    #[test]
    fn nan_divergence_is_flagged_not_silently_equivalent() {
        use crate::log::{LogRecord, LogValue};
        let record = |key: &str, values: Vec<f32>| LogRecord {
            frame: 0,
            key: key.into(),
            value: LogValue::TensorFull {
                shape: Shape::vector(values.len()),
                values,
            },
        };
        let baseline = LogSet::new(vec![
            record("layer/a/output", vec![1.0, 2.0]),
            record("layer/b/output", vec![1.0, 2.0]),
        ]);
        let candidate = LogSet::new(vec![
            record("layer/a/output", vec![1.0, 2.0]),
            record("layer/b/output", vec![f32::NAN, 2.0]),
        ]);
        let report = localize("base".into(), "cand".into(), &baseline, &candidate, 1, 0.0);
        assert_eq!(report.verdict, DifferentialVerdict::Diverged);
        assert_eq!(report.divergent_layer(), Some("b"));
        assert_eq!(report.first_divergent.unwrap().max_nrmse, f32::INFINITY);

        // Identical NaNs are agreement; sign-of-zero-only differences do
        // not score; differing values with an Inf diverge unconditionally.
        assert_eq!(frame_score(&[f32::NAN, 1.0], &[f32::NAN, 1.0]), 0.0);
        assert_eq!(frame_score(&[0.0], &[-0.0]), 0.0);
        assert_eq!(frame_score(&[f32::INFINITY], &[1.0]), f32::INFINITY);
    }

    #[test]
    fn report_renders_and_roundtrips_verdict() {
        let g = conv_chain();
        let report = diff_backends(
            &g,
            BackendSpec::reference(),
            BackendSpec::reference(),
            &frames(2),
            &DifferentialOptions::default(),
        )
        .unwrap();
        let text = report.to_string();
        assert!(text.contains("differential report"), "{text}");
        assert!(text.contains("verdict: Equivalent"), "{text}");
    }

    #[test]
    fn empty_frames_produce_an_empty_equivalent_report() {
        let g = conv_chain();
        let report = diff_backends(
            &g,
            BackendSpec::reference(),
            BackendSpec::optimized(),
            &[],
            &DifferentialOptions::default(),
        )
        .unwrap();
        assert!(report.is_equivalent());
        assert_eq!(report.frames, 0);
        assert!(report.drift.is_empty());
    }

    /// An injected quantized defect must be confirmed op-local by the
    /// bisection pass (not just flagged by drift).
    #[test]
    fn injected_avgpool_bug_bisected_as_op_local() {
        use mlexray_nn::OpKind;
        use mlexray_tensor::{DType, QuantParams};
        let mut b = GraphBuilder::new("qpool");
        let x = b.input_typed(
            "x",
            Shape::nhwc(1, 4, 4, 2),
            DType::U8,
            Some(QuantParams::PerTensor {
                scale: 0.04,
                zero_point: 12,
            }),
        );
        let y = b.push_node(
            "ap",
            OpKind::AveragePool2d {
                pool_h: 4,
                pool_w: 4,
                stride: 4,
                padding: Padding::Valid,
            },
            vec![x],
            Shape::nhwc(1, 1, 1, 2),
            DType::U8,
            Some(QuantParams::PerTensor {
                scale: 0.04,
                zero_point: 12,
            }),
        );
        b.output(y);
        let g = b.finish().unwrap();
        let frames: Vec<Vec<Tensor>> = (0..2)
            .map(|i| {
                vec![Tensor::from_u8(
                    Shape::nhwc(1, 4, 4, 2),
                    (0..32).map(|j| (200 - (i * 32 + j)) as u8).collect(),
                    QuantParams::PerTensor {
                        scale: 0.04,
                        zero_point: 12,
                    },
                )
                .unwrap()]
            })
            .collect();
        let report = diff_backends(
            &g,
            BackendSpec::optimized(),
            BackendSpec::Optimized {
                bugs: KernelBugs {
                    avgpool_double_division: true,
                    ..KernelBugs::none()
                },
            },
            &frames,
            &DifferentialOptions::bitwise(),
        )
        .unwrap();
        assert_eq!(report.divergent_layer(), Some("ap"));
        assert_eq!(report.bisection.unwrap().verdict, BisectionVerdict::OpLocal);
    }
}
