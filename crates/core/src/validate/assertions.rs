//! The assertion framework (§3.2/§3.4): built-in root-cause checks for the
//! §2 bug classes plus user-defined assertions.
//!
//! An assertion inspects the edge and reference logs and reports whether its
//! bug class is present. `Fail` means *the bug was detected* (with a
//! diagnostic), `Pass` means the check ran and found nothing, `Skipped`
//! means the logs lacked the data the check needs.

use mlexray_tensor::{allclose, Shape, TensorStats};

use crate::log::{LogSet, LogValue, KEY_MODEL_OUTPUT, KEY_PREPROCESS_OUTPUT};
use crate::validate::drift::{layers_above, per_layer_drift};
use crate::validate::latency::{per_layer_latency, stragglers};

/// Result status of one assertion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssertionStatus {
    /// Check ran; bug not present.
    Pass,
    /// Check ran; bug detected.
    Fail,
    /// Logs lacked the needed records.
    Skipped,
}

/// Outcome of one assertion.
#[derive(Debug, Clone, PartialEq)]
pub struct AssertionOutcome {
    /// Assertion name.
    pub name: String,
    /// Status.
    pub status: AssertionStatus,
    /// Human-readable diagnostic.
    pub detail: String,
}

impl AssertionOutcome {
    fn pass(name: &str, detail: impl Into<String>) -> Self {
        AssertionOutcome {
            name: name.into(),
            status: AssertionStatus::Pass,
            detail: detail.into(),
        }
    }

    fn fail(name: &str, detail: impl Into<String>) -> Self {
        AssertionOutcome {
            name: name.into(),
            status: AssertionStatus::Fail,
            detail: detail.into(),
        }
    }

    fn skipped(name: &str, detail: impl Into<String>) -> Self {
        AssertionOutcome {
            name: name.into(),
            status: AssertionStatus::Skipped,
            detail: detail.into(),
        }
    }
}

/// What an assertion sees: both pipelines' logs.
#[derive(Debug, Clone, Copy)]
pub struct ValidationContext<'a> {
    /// Edge (instrumented app) logs.
    pub edge: &'a LogSet,
    /// Reference pipeline logs.
    pub reference: &'a LogSet,
}

/// A root-cause check over a pair of log sets.
pub trait Assertion: Send + Sync {
    /// Display name.
    fn name(&self) -> &str;

    /// Runs the check.
    fn check(&self, ctx: &ValidationContext<'_>) -> AssertionOutcome;
}

/// Fetches matching full preprocess-output tensors of a frame.
fn preprocess_pair<'a>(
    ctx: &ValidationContext<'a>,
    frame: u64,
) -> Option<(&'a Shape, &'a [f32], &'a [f32])> {
    let e = ctx.edge.get(frame, KEY_PREPROCESS_OUTPUT)?;
    let r = ctx.reference.get(frame, KEY_PREPROCESS_OUTPUT)?;
    let (LogValue::TensorFull { shape, values: ev }, LogValue::TensorFull { values: rv, .. }) =
        (&e.value, &r.value)
    else {
        return None;
    };
    (ev.len() == rv.len()).then_some((shape, ev.as_slice(), rv.as_slice()))
}

const CLOSE_RTOL: f32 = 1e-3;
const CLOSE_ATOL: f32 = 1e-3;

/// Swaps the first and last channel of an NHWC buffer.
fn swap_channels(shape: &Shape, values: &[f32]) -> Option<Vec<f32>> {
    let c = shape.channels()?;
    if c < 3 {
        return None;
    }
    let mut out = values.to_vec();
    for px in out.chunks_exact_mut(c) {
        px.swap(0, 2);
    }
    Some(out)
}

/// Rotates the spatial grid of an NHWC buffer clockwise by 90°·turns.
fn rotate_values(shape: &Shape, values: &[f32], turns: usize) -> Option<Vec<f32>> {
    let (h, w, c) = (shape.height()?, shape.width()?, shape.channels()?);
    if turns % 2 == 1 && h != w {
        return None; // 90°/270° change the shape unless square.
    }
    let mut cur = values.to_vec();
    let (mut ch, mut cw) = (h, w);
    for _ in 0..turns % 4 {
        let mut next = vec![0.0f32; cur.len()];
        // (y, x) -> (x, ch-1-y) for one clockwise turn.
        for y in 0..ch {
            for x in 0..cw {
                for k in 0..c {
                    next[(x * ch + (ch - 1 - y)) * c + k] = cur[(y * cw + x) * c + k];
                }
            }
        }
        cur = next;
        std::mem::swap(&mut ch, &mut cw);
    }
    Some(cur)
}

/// Least-squares fit `edge ≈ a * reference + b`; returns `(a, b, rms_resid)`.
fn linear_fit(edge: &[f32], reference: &[f32]) -> (f32, f32, f32) {
    let n = edge.len() as f64;
    let (mut sx, mut sy, mut sxx, mut sxy) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    for (&y, &x) in edge.iter().zip(reference) {
        sx += x as f64;
        sy += y as f64;
        sxx += (x as f64) * (x as f64);
        sxy += (x as f64) * (y as f64);
    }
    let denom = n * sxx - sx * sx;
    let (a, b) = if denom.abs() < 1e-12 {
        (1.0, (sy - sx) / n)
    } else {
        let a = (n * sxy - sx * sy) / denom;
        ((a), (sy - a * sx) / n)
    };
    let mut resid = 0.0f64;
    for (&y, &x) in edge.iter().zip(reference) {
        let d = y as f64 - (a * x as f64 + b);
        resid += d * d;
    }
    ((a) as f32, b as f32, ((resid / n).sqrt()) as f32)
}

/// Detects RGB↔BGR channel-extraction bugs (§2): if the edge preprocessing
/// output matches the reference *after* swapping channels, the arrangement
/// is wrong.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChannelArrangementAssertion;

impl Assertion for ChannelArrangementAssertion {
    fn name(&self) -> &str {
        "channel_arrangement"
    }

    fn check(&self, ctx: &ValidationContext<'_>) -> AssertionOutcome {
        let Some((shape, edge, reference)) = preprocess_pair(ctx, 0) else {
            return AssertionOutcome::skipped(self.name(), "no full preprocess outputs logged");
        };
        if allclose(edge, reference, CLOSE_RTOL, CLOSE_ATOL) {
            return AssertionOutcome::pass(self.name(), "preprocess outputs match");
        }
        let Some(swapped) = swap_channels(shape, edge) else {
            return AssertionOutcome::pass(self.name(), "not a multi-channel tensor");
        };
        if allclose(&swapped, reference, CLOSE_RTOL, CLOSE_ATOL) {
            return AssertionOutcome::fail(
                self.name(),
                "channel arrangement mismatch: edge output matches reference after BGR->RGB swap",
            );
        }
        // Bugs compose (§2: "multiple issues can exist together"); try the
        // swap combined with each rotation.
        for turns in 1..4 {
            if let Some(candidate) = rotate_values(shape, &swapped, turns) {
                if allclose(&candidate, reference, CLOSE_RTOL, CLOSE_ATOL) {
                    return AssertionOutcome::fail(
                        self.name(),
                        format!(
                            "channel arrangement mismatch (combined with a {}° rotation)",
                            90 * turns
                        ),
                    );
                }
            }
        }
        AssertionOutcome::pass(self.name(), "difference is not a channel swap")
    }
}

/// Detects normalization-scale bugs (§2): fits `edge ≈ a·reference + b`; a
/// tight linear fit with non-identity coefficients means the numerical
/// conversion used the wrong scale (e.g. `[0,1]` vs `[-1,1]`, raw bytes).
/// Also covers the audio spectrogram-normalization mismatch of Fig. 4(c).
#[derive(Debug, Clone, Copy, Default)]
pub struct NormalizationRangeAssertion;

impl Assertion for NormalizationRangeAssertion {
    fn name(&self) -> &str {
        "normalization_range"
    }

    fn check(&self, ctx: &ValidationContext<'_>) -> AssertionOutcome {
        let Some((_, edge, reference)) = preprocess_pair(ctx, 0) else {
            return AssertionOutcome::skipped(self.name(), "no full preprocess outputs logged");
        };
        if allclose(edge, reference, CLOSE_RTOL, CLOSE_ATOL) {
            return AssertionOutcome::pass(self.name(), "preprocess outputs match");
        }
        let (a, b, resid) = linear_fit(edge, reference);
        let ref_stats = TensorStats::of(reference);
        let scale = ref_stats.range().max(1e-6);
        let identity = (a - 1.0).abs() < 0.02 && b.abs() < 0.02 * scale;
        if !identity && resid < 0.02 * scale {
            AssertionOutcome::fail(
                self.name(),
                format!(
                    "normalization mismatch: edge ≈ {a:.3} * reference + {b:.3} \
                     (reference range [{:.2}, {:.2}])",
                    ref_stats.min, ref_stats.max
                ),
            )
        } else {
            AssertionOutcome::pass(self.name(), "difference is not a global affine rescale")
        }
    }
}

/// Detects disoriented input (§2): if the edge output matches the reference
/// after un-rotating by 90°/180°/270°, the capture orientation is wrong.
#[derive(Debug, Clone, Copy, Default)]
pub struct OrientationAssertion;

impl Assertion for OrientationAssertion {
    fn name(&self) -> &str {
        "orientation"
    }

    fn check(&self, ctx: &ValidationContext<'_>) -> AssertionOutcome {
        let Some((shape, edge, reference)) = preprocess_pair(ctx, 0) else {
            return AssertionOutcome::skipped(self.name(), "no full preprocess outputs logged");
        };
        if allclose(edge, reference, CLOSE_RTOL, CLOSE_ATOL) {
            return AssertionOutcome::pass(self.name(), "preprocess outputs match");
        }
        for turns in 1..4 {
            if let Some(rotated) = rotate_values(shape, edge, turns) {
                if allclose(&rotated, reference, CLOSE_RTOL, CLOSE_ATOL) {
                    return AssertionOutcome::fail(
                        self.name(),
                        format!(
                            "input disoriented: edge output matches reference after {}° rotation",
                            90 * turns
                        ),
                    );
                }
                // Composed with a channel swap (§2's stacked-bug case).
                if let Some(candidate) = swap_channels(shape, &rotated) {
                    if allclose(&candidate, reference, CLOSE_RTOL, CLOSE_ATOL) {
                        return AssertionOutcome::fail(
                            self.name(),
                            format!(
                                "input disoriented: matches reference after {}° rotation                                  combined with a channel swap",
                                90 * turns
                            ),
                        );
                    }
                }
            }
        }
        AssertionOutcome::pass(self.name(), "difference is not a rotation")
    }
}

/// Heuristically flags resampling-function mismatches (§2): preprocess
/// outputs that differ mildly with matching global statistics, after channel
/// / normalization / orientation are ruled out, point at the resizer.
#[derive(Debug, Clone, Copy, Default)]
pub struct ResizeFunctionAssertion;

impl Assertion for ResizeFunctionAssertion {
    fn name(&self) -> &str {
        "resize_function"
    }

    fn check(&self, ctx: &ValidationContext<'_>) -> AssertionOutcome {
        let Some((shape, edge, reference)) = preprocess_pair(ctx, 0) else {
            return AssertionOutcome::skipped(self.name(), "no full preprocess outputs logged");
        };
        if allclose(edge, reference, CLOSE_RTOL, CLOSE_ATOL) {
            return AssertionOutcome::pass(self.name(), "preprocess outputs match");
        }
        // Rule out the structured causes first.
        let channel = ChannelArrangementAssertion.check(ctx).status == AssertionStatus::Fail;
        let norm = NormalizationRangeAssertion.check(ctx).status == AssertionStatus::Fail;
        let orient = OrientationAssertion.check(ctx).status == AssertionStatus::Fail;
        if channel || norm || orient {
            return AssertionOutcome::pass(self.name(), "explained by another preprocessing bug");
        }
        let _ = shape;
        let es = TensorStats::of(edge);
        let rs = TensorStats::of(reference);
        let scale = rs.range().max(1e-6);
        let mean_close = (es.mean - rs.mean).abs() < 0.05 * scale;
        let nrmse = mlexray_tensor::normalized_rmse(edge, reference);
        if mean_close && nrmse < 0.35 {
            AssertionOutcome::fail(
                self.name(),
                format!(
                    "likely resampling mismatch: outputs differ (nRMSE {nrmse:.3}) while global \
                     statistics agree (mean {:.3} vs {:.3})",
                    es.mean, rs.mean
                ),
            )
        } else {
            AssertionOutcome::pass(self.name(), "difference too large for a resize mismatch")
        }
    }
}

/// Flags quantization/op defects: layers whose normalized rMSE against the
/// reference exceeds a threshold (§4.4's per-layer diagnosis).
#[derive(Debug, Clone, Copy)]
pub struct QuantizationDriftAssertion {
    /// Drift threshold (the paper treats ~0.1 as suspicious).
    pub threshold: f32,
}

impl Default for QuantizationDriftAssertion {
    fn default() -> Self {
        QuantizationDriftAssertion { threshold: 0.15 }
    }
}

impl Assertion for QuantizationDriftAssertion {
    fn name(&self) -> &str {
        "quantization_drift"
    }

    fn check(&self, ctx: &ValidationContext<'_>) -> AssertionOutcome {
        let drifts = per_layer_drift(ctx.edge, ctx.reference);
        if drifts.is_empty() {
            return AssertionOutcome::skipped(self.name(), "no comparable per-layer outputs");
        }
        let suspects = layers_above(&drifts, self.threshold);
        if suspects.is_empty() {
            return AssertionOutcome::pass(
                self.name(),
                format!(
                    "all {} compared layers below nRMSE {}",
                    drifts.len(),
                    self.threshold
                ),
            );
        }
        let mut worst = suspects.clone();
        worst.sort_by(|a, b| b.mean_nrmse.partial_cmp(&a.mean_nrmse).unwrap());
        let list: Vec<String> = worst
            .iter()
            .take(3)
            .map(|d| format!("{} (nRMSE {:.3})", d.layer_name(), d.mean_nrmse))
            .collect();
        AssertionOutcome::fail(
            self.name(),
            format!(
                "{} error-prone layer(s); worst: {}",
                suspects.len(),
                list.join(", ")
            ),
        )
    }
}

/// Flags invalid/constant model output (§4.4: "0% accuracy with invalid or
/// constant output"): the edge output barely varies across frames while the
/// reference output does.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConstantOutputAssertion;

fn output_spread(logs: &LogSet) -> Option<f32> {
    let outs = logs.all(KEY_MODEL_OUTPUT);
    if outs.len() < 2 {
        return None;
    }
    // Mean abs deviation between consecutive frame outputs.
    let mut spread = 0.0f32;
    let mut n = 0usize;
    for pair in outs.windows(2) {
        let (Some(a), Some(b)) = (pair[0].value.values(), pair[1].value.values()) else {
            // Fall back to summary statistics.
            let (Some(sa), Some(sb)) = (pair[0].value.stats(), pair[1].value.stats()) else {
                continue;
            };
            spread += (sa.mean - sb.mean).abs() + (sa.max - sb.max).abs();
            n += 1;
            continue;
        };
        if a.len() == b.len() {
            spread += a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum::<f32>() / a.len() as f32;
            n += 1;
        }
    }
    (n > 0).then(|| spread / n as f32)
}

impl Assertion for ConstantOutputAssertion {
    fn name(&self) -> &str {
        "constant_output"
    }

    fn check(&self, ctx: &ValidationContext<'_>) -> AssertionOutcome {
        let (Some(edge), Some(reference)) = (output_spread(ctx.edge), output_spread(ctx.reference))
        else {
            return AssertionOutcome::skipped(self.name(), "need model outputs over >= 2 frames");
        };
        if reference > 1e-5 && edge < reference * 0.01 {
            AssertionOutcome::fail(
                self.name(),
                format!(
                    "model output is (near-)constant across frames: spread {edge:.2e} vs \
                     reference {reference:.2e}"
                ),
            )
        } else {
            AssertionOutcome::pass(self.name(), "output varies with input")
        }
    }
}

/// Fails when mean end-to-end latency exceeds a budget.
#[derive(Debug, Clone, Copy)]
pub struct LatencyBudgetAssertion {
    /// Budget in milliseconds.
    pub budget_ms: f64,
}

impl Assertion for LatencyBudgetAssertion {
    fn name(&self) -> &str {
        "latency_budget"
    }

    fn check(&self, ctx: &ValidationContext<'_>) -> AssertionOutcome {
        let lats = ctx.edge.inference_latencies();
        if lats.is_empty() {
            return AssertionOutcome::skipped(self.name(), "no latency records");
        }
        let mean_ms = lats.iter().sum::<u64>() as f64 / lats.len() as f64 / 1e6;
        if mean_ms > self.budget_ms {
            AssertionOutcome::fail(
                self.name(),
                format!(
                    "mean latency {mean_ms:.2} ms exceeds budget {} ms",
                    self.budget_ms
                ),
            )
        } else {
            AssertionOutcome::pass(self.name(), format!("mean latency {mean_ms:.2} ms"))
        }
    }
}

/// Fails when any layer consumes more than a share of total latency —
/// the §4.5 straggler finder.
#[derive(Debug, Clone, Copy)]
pub struct StragglerLayerAssertion {
    /// Share threshold in (0, 1].
    pub share: f64,
}

impl Assertion for StragglerLayerAssertion {
    fn name(&self) -> &str {
        "straggler_layer"
    }

    fn check(&self, ctx: &ValidationContext<'_>) -> AssertionOutcome {
        let lat = per_layer_latency(ctx.edge);
        if lat.is_empty() {
            return AssertionOutcome::skipped(self.name(), "no per-layer latency records");
        }
        let found = stragglers(&lat, self.share);
        if found.is_empty() {
            AssertionOutcome::pass(self.name(), "no straggler layers")
        } else {
            let list: Vec<String> = found
                .iter()
                .take(3)
                .map(|l| format!("{} ({:.1}%)", l.layer_name(), l.share * 100.0))
                .collect();
            AssertionOutcome::fail(
                self.name(),
                format!("straggler layer(s): {}", list.join(", ")),
            )
        }
    }
}

/// Fails when peak activation memory exceeds a budget.
#[derive(Debug, Clone, Copy)]
pub struct MemoryBudgetAssertion {
    /// Budget in bytes.
    pub budget_bytes: u64,
}

impl Assertion for MemoryBudgetAssertion {
    fn name(&self) -> &str {
        "memory_budget"
    }

    fn check(&self, ctx: &ValidationContext<'_>) -> AssertionOutcome {
        let peaks: Vec<u64> = ctx
            .edge
            .all(crate::log::KEY_INFERENCE_MEMORY)
            .into_iter()
            .filter_map(|r| match r.value {
                LogValue::Bytes(b) => Some(b),
                _ => None,
            })
            .collect();
        match peaks.iter().max() {
            None => AssertionOutcome::skipped(self.name(), "no memory records"),
            Some(&peak) if peak > self.budget_bytes => AssertionOutcome::fail(
                self.name(),
                format!(
                    "peak activation memory {peak} B exceeds budget {} B",
                    self.budget_bytes
                ),
            ),
            Some(&peak) => {
                AssertionOutcome::pass(self.name(), format!("peak activation memory {peak} B"))
            }
        }
    }
}

/// A user-defined assertion from a closure — the §3.2 interface for custom
/// domain checks (lane distance, spectrogram sanity, ...), typically well
/// under 10 LoC.
pub struct FnAssertion {
    name: String,
    f: Box<dyn Fn(&ValidationContext<'_>) -> AssertionOutcome + Send + Sync>,
}

impl FnAssertion {
    /// Wraps a closure as an assertion.
    pub fn new(
        name: impl Into<String>,
        f: impl Fn(&ValidationContext<'_>) -> AssertionOutcome + Send + Sync + 'static,
    ) -> Self {
        FnAssertion {
            name: name.into(),
            f: Box::new(f),
        }
    }

    /// Builds a failing outcome (helper for closures).
    pub fn failed(name: &str, detail: impl Into<String>) -> AssertionOutcome {
        AssertionOutcome::fail(name, detail)
    }

    /// Builds a passing outcome (helper for closures).
    pub fn passed(name: &str, detail: impl Into<String>) -> AssertionOutcome {
        AssertionOutcome::pass(name, detail)
    }
}

impl Assertion for FnAssertion {
    fn name(&self) -> &str {
        &self.name
    }

    fn check(&self, ctx: &ValidationContext<'_>) -> AssertionOutcome {
        (self.f)(ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::LogRecord;

    fn preprocess_logs(edge_vals: Vec<f32>, ref_vals: Vec<f32>, shape: Shape) -> (LogSet, LogSet) {
        let edge = LogSet::new(vec![LogRecord {
            frame: 0,
            key: KEY_PREPROCESS_OUTPUT.into(),
            value: LogValue::TensorFull {
                shape: shape.clone(),
                values: edge_vals,
            },
        }]);
        let reference = LogSet::new(vec![LogRecord {
            frame: 0,
            key: KEY_PREPROCESS_OUTPUT.into(),
            value: LogValue::TensorFull {
                shape,
                values: ref_vals,
            },
        }]);
        (edge, reference)
    }

    #[test]
    fn channel_assertion_catches_swap() {
        // 1x1x2x3: two pixels, channels reversed on the edge side.
        let reference = vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6];
        let edge = vec![0.3, 0.2, 0.1, 0.6, 0.5, 0.4];
        let (e, r) = preprocess_logs(edge, reference, Shape::nhwc(1, 1, 2, 3));
        let ctx = ValidationContext {
            edge: &e,
            reference: &r,
        };
        let out = ChannelArrangementAssertion.check(&ctx);
        assert_eq!(out.status, AssertionStatus::Fail, "{}", out.detail);
        // And the normalization assertion must NOT fire on a channel swap.
        assert_eq!(
            NormalizationRangeAssertion.check(&ctx).status,
            AssertionStatus::Pass
        );
    }

    #[test]
    fn normalization_assertion_catches_rescale() {
        // Reference in [-1,1]; edge in [0,1]: edge = 0.5*ref + 0.5.
        let reference: Vec<f32> = vec![-1.0, -0.5, 0.0, 0.5, 1.0, 0.25];
        let edge: Vec<f32> = reference.iter().map(|v| 0.5 * v + 0.5).collect();
        let (e, r) = preprocess_logs(edge, reference, Shape::nhwc(1, 1, 2, 3));
        let ctx = ValidationContext {
            edge: &e,
            reference: &r,
        };
        let out = NormalizationRangeAssertion.check(&ctx);
        assert_eq!(out.status, AssertionStatus::Fail, "{}", out.detail);
        assert!(out.detail.contains("0.5"), "{}", out.detail);
    }

    #[test]
    fn orientation_assertion_catches_rotation() {
        // 2x2 grid, 1 channel; edge rotated 90° cw relative to reference.
        // reference = [[1,2],[3,4]]; rotating it 90° cw gives [[3,1],[4,2]].
        // The edge pipeline saw a rotated capture, so un-rotating the edge by
        // another 90° must match: edge = rotate_cw(reference) by 3 turns = ccw.
        let reference = vec![1.0, 2.0, 3.0, 4.0];
        let edge = vec![2.0, 4.0, 1.0, 3.0];
        let (e, r) = preprocess_logs(edge, reference, Shape::nhwc(1, 2, 2, 1));
        let ctx = ValidationContext {
            edge: &e,
            reference: &r,
        };
        let out = OrientationAssertion.check(&ctx);
        assert_eq!(out.status, AssertionStatus::Fail, "{}", out.detail);
    }

    #[test]
    fn assertions_pass_on_identical_logs() {
        let vals = vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6];
        let (e, r) = preprocess_logs(vals.clone(), vals, Shape::nhwc(1, 1, 2, 3));
        let ctx = ValidationContext {
            edge: &e,
            reference: &r,
        };
        for a in [
            &ChannelArrangementAssertion as &dyn Assertion,
            &NormalizationRangeAssertion,
            &OrientationAssertion,
            &ResizeFunctionAssertion,
        ] {
            assert_eq!(a.check(&ctx).status, AssertionStatus::Pass, "{}", a.name());
        }
    }

    #[test]
    fn assertions_skip_without_data() {
        let e = LogSet::default();
        let r = LogSet::default();
        let ctx = ValidationContext {
            edge: &e,
            reference: &r,
        };
        assert_eq!(
            ChannelArrangementAssertion.check(&ctx).status,
            AssertionStatus::Skipped
        );
        assert_eq!(
            LatencyBudgetAssertion { budget_ms: 1.0 }.check(&ctx).status,
            AssertionStatus::Skipped
        );
    }

    #[test]
    fn constant_output_detection() {
        let mk = |vals: Vec<Vec<f32>>| {
            LogSet::new(
                vals.into_iter()
                    .enumerate()
                    .map(|(i, v)| LogRecord {
                        frame: i as u64,
                        key: KEY_MODEL_OUTPUT.into(),
                        value: LogValue::TensorFull {
                            shape: Shape::vector(v.len()),
                            values: v,
                        },
                    })
                    .collect(),
            )
        };
        let edge = mk(vec![vec![0.5, 0.5], vec![0.5, 0.5], vec![0.5, 0.5]]);
        let reference = mk(vec![vec![0.9, 0.1], vec![0.2, 0.8], vec![0.6, 0.4]]);
        let ctx = ValidationContext {
            edge: &edge,
            reference: &reference,
        };
        assert_eq!(
            ConstantOutputAssertion.check(&ctx).status,
            AssertionStatus::Fail
        );
        let ctx_ok = ValidationContext {
            edge: &reference,
            reference: &reference,
        };
        assert_eq!(
            ConstantOutputAssertion.check(&ctx_ok).status,
            AssertionStatus::Pass
        );
    }

    #[test]
    fn fn_assertion_runs_closure() {
        let a = FnAssertion::new("custom", |_ctx| {
            FnAssertion::failed("custom", "lane distance exceeded")
        });
        let e = LogSet::default();
        let ctx = ValidationContext {
            edge: &e,
            reference: &e,
        };
        let out = a.check(&ctx);
        assert_eq!(out.status, AssertionStatus::Fail);
        assert_eq!(a.name(), "custom");
    }
}
