//! Per-layer latency validation (§3.4/§4.5): aggregates per-layer timings
//! and finds straggler layers and sub-optimal kernels.

use crate::log::{LogSet, LogValue};

/// Aggregated latency of one layer.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerLatency {
    /// Execution order in the logs.
    pub index: usize,
    /// Layer log key (`layer/<name>/latency_ns`).
    pub key: String,
    /// Mean latency over frames, ns.
    pub mean_ns: f64,
    /// Share of the summed per-layer latency (0..1).
    pub share: f64,
}

impl LayerLatency {
    /// The bare layer name.
    pub fn layer_name(&self) -> &str {
        self.key
            .strip_prefix("layer/")
            .and_then(|s| s.strip_suffix("/latency_ns"))
            .unwrap_or(&self.key)
    }
}

/// Mean per-layer latency, in execution order, with total shares.
pub fn per_layer_latency(logs: &LogSet) -> Vec<LayerLatency> {
    let mut layers = Vec::new();
    // Filter to latency keys *before* enumerating: interleaved non-latency
    // layer records (output dumps, summaries) must not make the reported
    // execution-order indices skip.
    for (index, key) in logs
        .keys_with_prefix("layer/")
        .into_iter()
        .filter(|key| key.ends_with("/latency_ns"))
        .enumerate()
    {
        let records = logs.all(key);
        let mut sum = 0.0f64;
        let mut n = 0usize;
        for r in records {
            if let LogValue::LatencyNs(ns) = r.value {
                sum += ns as f64;
                n += 1;
            }
        }
        if n > 0 {
            layers.push(LayerLatency {
                index,
                key: key.to_string(),
                mean_ns: sum / n as f64,
                share: 0.0,
            });
        }
    }
    let total: f64 = layers.iter().map(|l| l.mean_ns).sum();
    if total > 0.0 {
        for l in &mut layers {
            l.share = l.mean_ns / total;
        }
    }
    layers
}

/// Layers consuming more than `share_threshold` of total latency.
pub fn stragglers(latencies: &[LayerLatency], share_threshold: f64) -> Vec<&LayerLatency> {
    latencies
        .iter()
        .filter(|l| l.share > share_threshold)
        .collect()
}

/// Compares per-layer latency between pipelines by layer name:
/// `(name, edge_ns, reference_ns, ratio)`. Layers present in both only.
pub fn compare_layer_latency(edge: &LogSet, reference: &LogSet) -> Vec<(String, f64, f64, f64)> {
    let edge_lat = per_layer_latency(edge);
    let ref_lat = per_layer_latency(reference);
    edge_lat
        .iter()
        .filter_map(|e| {
            ref_lat.iter().find(|r| r.key == e.key).map(|r| {
                let ratio = if r.mean_ns > 0.0 {
                    e.mean_ns / r.mean_ns
                } else {
                    f64::INFINITY
                };
                (e.layer_name().to_string(), e.mean_ns, r.mean_ns, ratio)
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::LogRecord;

    fn lat(frame: u64, key: &str, ns: u64) -> LogRecord {
        LogRecord {
            frame,
            key: key.into(),
            value: LogValue::LatencyNs(ns),
        }
    }

    #[test]
    fn aggregates_means_and_shares() {
        let logs = LogSet::new(vec![
            lat(0, "layer/a/latency_ns", 100),
            lat(1, "layer/a/latency_ns", 300),
            lat(0, "layer/b/latency_ns", 800),
            lat(1, "layer/b/latency_ns", 800),
        ]);
        let l = per_layer_latency(&logs);
        assert_eq!(l.len(), 2);
        assert_eq!(l[0].mean_ns, 200.0);
        assert_eq!(l[1].mean_ns, 800.0);
        assert!((l[1].share - 0.8).abs() < 1e-9);
        let s = stragglers(&l, 0.5);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].layer_name(), "b");
    }

    #[test]
    fn indices_stay_contiguous_with_interleaved_layer_records() {
        // Non-latency layer records (output summaries, text notes) between
        // latency keys must not make execution-order indices skip.
        let note = |frame: u64, key: &str| LogRecord {
            frame,
            key: key.into(),
            value: LogValue::Text("checkpoint".into()),
        };
        let logs = LogSet::new(vec![
            lat(0, "layer/a/latency_ns", 100),
            note(0, "layer/a/output"),
            note(0, "layer/b/summary"),
            lat(0, "layer/b/latency_ns", 200),
            note(0, "layer/c/output"),
            lat(0, "layer/c/latency_ns", 300),
        ]);
        let l = per_layer_latency(&logs);
        assert_eq!(l.len(), 3);
        let indices: Vec<usize> = l.iter().map(|layer| layer.index).collect();
        assert_eq!(indices, vec![0, 1, 2], "indices must be contiguous: {l:?}");
        assert_eq!(l[2].layer_name(), "c");
    }

    #[test]
    fn comparison_computes_ratio() {
        let edge = LogSet::new(vec![lat(0, "layer/a/latency_ns", 1000)]);
        let reference = LogSet::new(vec![lat(0, "layer/a/latency_ns", 10)]);
        let cmp = compare_layer_latency(&edge, &reference);
        assert_eq!(cmp.len(), 1);
        assert_eq!(cmp[0].0, "a");
        assert!((cmp[0].3 - 100.0).abs() < 1e-9);
    }
}
