//! Reference pipelines and data playback (§3.3).
//!
//! A reference pipeline replays the *same frames* the edge app saw through a
//! *known-correct* configuration: the model family's canonical preprocessing
//! and a chosen model variant (checkpoint, converted float, quantized) under
//! the debugging-grade reference kernels. Its logs are the baseline every
//! validation compares against.

use mlexray_nn::{InterpreterOptions, KernelFlavor, Model};
use mlexray_preprocess::ImagePreprocessConfig;

use crate::log::LogSet;
use crate::monitor::{Monitor, MonitorConfig};
use crate::pipeline::{ImagePipeline, LabeledFrame};
use crate::Result;

/// A known-correct replay pipeline for image tasks.
#[derive(Debug, Clone)]
pub struct ReferencePipeline {
    pipeline: ImagePipeline,
}

impl ReferencePipeline {
    /// Builds a reference pipeline from a model and its canonical
    /// preprocessing. Reference kernels (`RefOpResolver`) are used so that
    /// optimized-kernel defects cannot contaminate the baseline — the §4.4
    /// debugging technique.
    pub fn new(model: Model, canonical: ImagePreprocessConfig) -> Self {
        let mut options = InterpreterOptions::reference();
        options.flavor = KernelFlavor::Reference;
        ReferencePipeline {
            pipeline: ImagePipeline::new(model, canonical).with_options(options),
        }
    }

    /// Builds a reference pipeline that runs optimized kernels instead
    /// (faster; used when the reference machine is trusted, e.g. a
    /// workstation replay).
    pub fn with_optimized_kernels(model: Model, canonical: ImagePreprocessConfig) -> Self {
        ReferencePipeline {
            pipeline: ImagePipeline::new(model, canonical)
                .with_options(InterpreterOptions::optimized()),
        }
    }

    /// The underlying pipeline (for inspection).
    pub fn pipeline(&self) -> &ImagePipeline {
        &self.pipeline
    }

    /// Replays frames with full per-layer capture, producing the reference
    /// log set.
    ///
    /// # Errors
    ///
    /// Propagates pipeline errors.
    pub fn replay(&self, frames: &[LabeledFrame]) -> Result<LogSet> {
        self.replay_with_config(frames, MonitorConfig::offline_validation())
    }

    /// Replays frames with an explicit monitor configuration.
    ///
    /// # Errors
    ///
    /// Propagates pipeline errors.
    pub fn replay_with_config(
        &self,
        frames: &[LabeledFrame],
        config: MonitorConfig,
    ) -> Result<LogSet> {
        let monitor = Monitor::new(config);
        let mut runner = self.pipeline.runner()?;
        runner.run(frames, &monitor)?;
        Ok(monitor.take_logs())
    }
}

/// Convenience: runs any image pipeline over frames and returns its logs —
/// the edge-side counterpart of [`ReferencePipeline::replay`].
///
/// # Errors
///
/// Propagates pipeline errors.
pub fn collect_logs(
    pipeline: &ImagePipeline,
    frames: &[LabeledFrame],
    config: MonitorConfig,
) -> Result<LogSet> {
    let monitor = Monitor::new(config);
    let mut runner = pipeline.runner()?;
    runner.run(frames, &monitor)?;
    Ok(monitor.take_logs())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlexray_nn::{Activation, Padding};
    use mlexray_preprocess::Image;
    use mlexray_tensor::{Shape, Tensor};

    fn model() -> Model {
        let mut b = mlexray_nn::GraphBuilder::new("m");
        let x = b.input("image", Shape::nhwc(1, 4, 4, 3));
        let w = b.constant("w", Tensor::filled_f32(Shape::new(vec![2, 1, 1, 3]), 0.3));
        let c = b
            .conv2d("conv", x, w, None, 1, Padding::Same, Activation::Relu)
            .unwrap();
        let m = b.mean("gap", c).unwrap();
        let s = b.softmax("softmax", m).unwrap();
        b.output(s);
        Model::checkpoint(b.finish().unwrap(), "m")
    }

    #[test]
    fn replay_produces_per_layer_logs() {
        let frames = vec![
            LabeledFrame::new(Image::solid(8, 8, [10, 200, 30]), Some(0)),
            LabeledFrame::new(Image::solid(8, 8, [240, 10, 90]), Some(1)),
        ];
        let reference =
            ReferencePipeline::new(model(), ImagePreprocessConfig::mobilenet_style(4, 4));
        let logs = reference.replay(&frames).unwrap();
        assert_eq!(logs.frame_count(), 2);
        assert!(logs.get(0, "layer/conv/output").is_some());
        assert!(logs.get(1, "layer/softmax/output").is_some());
    }

    #[test]
    fn edge_and_reference_agree_when_configs_match() {
        let frames = vec![LabeledFrame::new(
            Image::solid(8, 8, [100, 150, 200]),
            Some(0),
        )];
        let canonical = ImagePreprocessConfig::mobilenet_style(4, 4);
        let reference = ReferencePipeline::new(model(), canonical.clone());
        let ref_logs = reference.replay(&frames).unwrap();
        let edge = ImagePipeline::new(model(), canonical);
        let edge_logs = collect_logs(&edge, &frames, MonitorConfig::offline_validation()).unwrap();
        let a = ref_logs
            .get(0, "layer/softmax/output")
            .unwrap()
            .value
            .values()
            .unwrap();
        let b = edge_logs
            .get(0, "layer/softmax/output")
            .unwrap()
            .value
            .values()
            .unwrap();
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < 1e-5);
        }
    }
}
