//! Intra-invoke data parallelism: the frames of one `invoke_batch` split
//! across workers drawn from the global [`crate::budget`] ledger.
//!
//! The sharded replay engine parallelizes *across* playback frames; this
//! module parallelizes *within* one batched invoke. The frame list is cut
//! into contiguous shards ([`crate::shard_partition`] — the partition
//! depends only on the frame count and shard size, never on the worker
//! count), each worker builds its own private backend from the
//! [`mlexray_nn::BackendSpec`] (share-nothing, like every pool in this
//! codebase), invokes its shards batched, and the merge reassembles
//! outputs in frame order.
//!
//! # Determinism
//!
//! Per-frame results are independent of batching — the nn crate's
//! `batch_equivalence` property suite pins `invoke_batch == invoke`
//! bitwise per flavor, including the SIMD backend — so the merged outputs
//! are **byte-identical** for `workers = 1, 2, 4, ...` and identical to a
//! single sequential `invoke_batch` over the same frames. Captured layer
//! records are globally frame-numbered and canonically ordered (node
//! execution index, then frame), which makes the merged record stream
//! equal to the sequential observer's stream too; only wall-clock
//! latencies vary run to run. The `parallel_invoke` integration suite
//! pins both invariants.

use std::time::{Duration, Instant};

use mlexray_nn::{BackendSpec, Graph, LayerObserver, LayerRecord};
use mlexray_tensor::Tensor;

use crate::budget::{self, CoreLease};
use crate::replay::{run_sharded, shard_partition};
use crate::{ExrayError, Result};

/// Tuning for one parallel batched invoke.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelInvokeOptions {
    /// Worker threads. `0` sizes the pool elastically from the global
    /// core budget ([`crate::budget::reserve_up_to`]); an explicit count
    /// is honored verbatim (and recorded in the ledger for the run's
    /// duration, so concurrent replay/serve pools see the pressure).
    pub workers: usize,
    /// Frames per shard — one shard is one batched interpreter invoke on
    /// one worker. Fixes the shard partition independently of the worker
    /// count.
    pub shard_frames: usize,
    /// Bounded work-queue depth. `0` means `2 × workers`.
    pub queue_depth: usize,
    /// Capture per-layer records (globally frame-numbered, canonically
    /// ordered) alongside the outputs. Off by default: capturing clones
    /// every layer output of every frame.
    pub capture_layers: bool,
}

impl Default for ParallelInvokeOptions {
    fn default() -> Self {
        ParallelInvokeOptions {
            workers: 0,
            shard_frames: 8,
            queue_depth: 0,
            capture_layers: false,
        }
    }
}

impl ParallelInvokeOptions {
    /// A run with an explicit worker count and otherwise default tuning.
    pub fn with_workers(workers: usize) -> Self {
        ParallelInvokeOptions {
            workers,
            ..Default::default()
        }
    }

    /// Takes the run's core lease and derives the worker count from it:
    /// elastic (budget headroom) for `workers == 0`, exact otherwise,
    /// never more workers than shards.
    fn lease(&self, shards: usize) -> CoreLease {
        let cap = shards.max(1);
        if self.workers == 0 {
            budget::reserve_up_to(cap)
        } else {
            budget::reserve_cores(self.workers.min(cap))
        }
    }

    fn effective_queue_depth(&self, workers: usize) -> usize {
        if self.queue_depth == 0 {
            workers * 2
        } else {
            self.queue_depth
        }
    }
}

/// One captured per-layer record of a parallel invoke — the owned,
/// globally-frame-numbered form of [`mlexray_nn::LayerRecord`].
#[derive(Debug, Clone)]
pub struct InvokeLayerRecord {
    /// Global frame index within the invoked batch.
    pub frame: usize,
    /// Execution index of the node.
    pub index: usize,
    /// Node display name.
    pub name: String,
    /// Op type label (`"Conv"`, `"FC"`, ...).
    pub op: &'static str,
    /// The node's output tensor for this frame.
    pub output: Tensor,
    /// Per-frame MAC estimate for the node.
    pub macs: u64,
    /// Wall-clock share of the node's kernel latency attributed to this
    /// frame. Excluded from [`InvokeLayerRecord::content`]: latency is
    /// the one field that legitimately varies across worker counts.
    pub latency: Duration,
}

impl InvokeLayerRecord {
    /// The record's deterministic content — everything except wall-clock
    /// latency. Two runs of the same frames agree on this projection
    /// byte-for-byte whatever the worker count.
    pub fn content(&self) -> (usize, usize, &str, &str, &Tensor, u64) {
        (
            self.frame,
            self.index,
            self.name.as_str(),
            self.op,
            &self.output,
            self.macs,
        )
    }
}

/// Everything one parallel batched invoke produces.
#[derive(Debug, Clone)]
pub struct ParallelInvoke {
    /// Per-frame outputs, in frame order — byte-identical to a sequential
    /// `invoke_batch` over the same frames.
    pub outputs: Vec<Vec<Tensor>>,
    /// Captured layer records (empty unless
    /// [`ParallelInvokeOptions::capture_layers`]), sorted by (node
    /// execution index, frame) — the sequential observer's order.
    pub records: Vec<InvokeLayerRecord>,
    /// Worker threads the run actually used.
    pub workers: usize,
    /// Shards in the partition.
    pub shards: usize,
    /// End-to-end wall-clock time, including the merge.
    pub elapsed: Duration,
}

impl ParallelInvoke {
    /// Invoke throughput in frames per second.
    pub fn frames_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.outputs.len() as f64 / secs
        }
    }
}

/// Observer that owns its records, rebased to global frame numbers.
struct RecordCapture {
    base: usize,
    enabled: bool,
    records: Vec<InvokeLayerRecord>,
}

impl LayerObserver for RecordCapture {
    fn on_layer(&mut self, record: &LayerRecord<'_>) {
        self.records.push(InvokeLayerRecord {
            frame: self.base + record.batch,
            index: record.index,
            name: record.name.to_string(),
            op: record.op.type_label(),
            output: record.output.clone(),
            macs: record.macs,
            latency: record.latency,
        });
    }

    fn enabled(&self) -> bool {
        self.enabled
    }
}

/// Runs one batched invoke with its frames sharded across a worker pool
/// sized by the global core budget. Each worker owns a private backend
/// built from `spec`; outputs merge in frame order. See the module docs
/// for the determinism contract.
///
/// # Errors
///
/// Propagates backend construction and interpreter errors (the first any
/// worker hits).
pub fn invoke_batch_parallel(
    graph: &Graph,
    spec: &BackendSpec,
    frames: &[Vec<Tensor>],
    options: &ParallelInvokeOptions,
) -> Result<ParallelInvoke> {
    let started = Instant::now();
    let partition = shard_partition(frames.len(), options.shard_frames);
    // The lease spans the whole run: concurrently-starting pools size
    // themselves around this invoke instead of on top of it.
    let lease = options.lease(partition.len());
    let workers = lease.cores();
    let capture = options.capture_layers;
    let chunks = run_sharded(
        &partition,
        workers,
        options.effective_queue_depth(workers),
        || spec.build(graph).map_err(ExrayError::from),
        |backend, shard| -> Result<(Vec<Vec<Tensor>>, Vec<InvokeLayerRecord>)> {
            let refs: Vec<&[Tensor]> = frames[shard.clone()].iter().map(Vec::as_slice).collect();
            let mut observer = RecordCapture {
                base: shard.start,
                enabled: capture,
                records: Vec::new(),
            };
            let outputs = backend.invoke_batch_observed(&refs, &mut observer)?;
            Ok((outputs, observer.records))
        },
    )?;
    let mut outputs = Vec::with_capacity(frames.len());
    let mut records = Vec::new();
    for (_, (shard_outputs, shard_records)) in chunks {
        outputs.extend(shard_outputs);
        records.extend(shard_records);
    }
    // Canonical order = the sequential observer's order: each node in
    // execution order emits its whole batch of frames.
    records.sort_by_key(|r| (r.index, r.frame));
    Ok(ParallelInvoke {
        outputs,
        records,
        workers,
        shards: partition.len(),
        elapsed: started.elapsed(),
    })
}
