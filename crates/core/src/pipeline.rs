//! Instrumentable inference pipelines: the "edge app" side of ML-EXray.
//!
//! A pipeline couples a preprocessing configuration with a model and
//! interpreter options. Its runner executes frames while reporting telemetry
//! to a [`Monitor`] — preprocessing output, model I/O, per-layer details
//! (per the monitor's capture mode), latency, memory and the final decision.

use std::time::{Duration, Instant};

use mlexray_nn::{Interpreter, InterpreterOptions, LayerObserver, LayerRecord, Model};
use mlexray_preprocess::{
    AudioPreprocessConfig, Image, ImagePreprocessConfig, TextPreprocessConfig, Vocabulary,
};
use mlexray_tensor::{Shape, Tensor};

use crate::log::{
    layer_latency_key, layer_output_key, LogValue, KEY_MODEL_INPUT, KEY_MODEL_OUTPUT,
    KEY_PREPROCESS_OUTPUT,
};
use crate::monitor::{LayerCapture, Monitor};
use crate::Result;

/// A frame from a playback source: the raw sensor image plus ground truth
/// when known.
#[derive(Debug, Clone, PartialEq)]
pub struct LabeledFrame {
    /// The captured image.
    pub image: Image,
    /// Ground-truth class, if the frame came from a labelled dataset.
    pub label: Option<usize>,
}

impl LabeledFrame {
    /// Labels a raw image.
    pub fn new(image: Image, label: Option<usize>) -> Self {
        LabeledFrame { image, label }
    }
}

fn argmax(values: &[f32]) -> usize {
    values
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

/// An image-classification app: preprocessing + model + kernel options.
#[derive(Debug, Clone)]
pub struct ImagePipeline {
    /// Preprocessing stage (the §4.3 bug surface).
    pub preprocess: ImagePreprocessConfig,
    /// The deployed model.
    pub model: Model,
    /// Kernel flavor and bug injection.
    pub options: InterpreterOptions,
}

impl ImagePipeline {
    /// Builds a pipeline with default (optimized, bug-free) options.
    pub fn new(model: Model, preprocess: ImagePreprocessConfig) -> Self {
        ImagePipeline {
            preprocess,
            model,
            options: InterpreterOptions::optimized(),
        }
    }

    /// Overrides interpreter options (reference kernels, injected bugs).
    pub fn with_options(mut self, options: InterpreterOptions) -> Self {
        self.options = options;
        self
    }

    /// Prepares a reusable runner (weights are materialized once).
    ///
    /// # Errors
    ///
    /// Propagates graph validation errors.
    pub fn runner(&self) -> Result<ImageRunner<'_>> {
        Ok(ImageRunner {
            pipeline: self,
            interp: Interpreter::new(&self.model.graph, self.options)?,
        })
    }
}

/// Executes an [`ImagePipeline`] frame by frame.
#[derive(Debug)]
pub struct ImageRunner<'p> {
    pipeline: &'p ImagePipeline,
    interp: Interpreter<'p>,
}

impl ImageRunner<'_> {
    /// Classifies one frame, streaming telemetry into `monitor`.
    ///
    /// # Errors
    ///
    /// Propagates preprocessing and execution errors.
    pub fn classify(&mut self, frame: &LabeledFrame, monitor: &Monitor) -> Result<usize> {
        let input = self.pipeline.preprocess.apply(&frame.image)?;
        monitor.log_tensor(KEY_PREPROCESS_OUTPUT, &input);
        monitor.log_tensor(KEY_MODEL_INPUT, &input);
        monitor.on_inference_start();
        let outputs = self
            .interp
            .invoke_observed(std::slice::from_ref(&input), &mut monitor.layer_observer())?;
        let probs = outputs[0].to_f32_vec();
        let predicted = argmax(&probs);
        monitor.log_tensor(KEY_MODEL_OUTPUT, &outputs[0]);
        if let Some(stats) = self.interp.last_stats() {
            monitor.log_memory(stats.peak_activation_bytes as u64);
        }
        monitor.log_decision(predicted, frame.label);
        monitor.on_inference_stop();
        Ok(predicted)
    }

    /// Classifies a micro-batch of frames with **one** batched interpreter
    /// invoke ([`mlexray_nn::Interpreter::invoke_batch_observed`]), then
    /// replays the collected telemetry into `monitor` frame by frame, in the
    /// same record order [`ImageRunner::classify`] produces. Layer outputs
    /// are bitwise-identical to per-frame classification; per-frame latency
    /// is reported as the batch latency divided by the batch size, and
    /// per-frame memory as the batched plan's per-frame share.
    ///
    /// # Errors
    ///
    /// Propagates preprocessing and execution errors.
    pub fn classify_batch(
        &mut self,
        frames: &[LabeledFrame],
        monitor: &Monitor,
    ) -> Result<Vec<usize>> {
        if frames.is_empty() {
            return Ok(Vec::new());
        }
        let inputs = frames
            .iter()
            .map(|f| self.pipeline.preprocess.apply(&f.image).map_err(Into::into))
            .collect::<Result<Vec<Tensor>>>()?;
        let config = monitor.config();
        let mut collector = BatchCollector {
            capture: config.per_layer != LayerCapture::None,
            full: config.per_layer == LayerCapture::Full,
            per_frame: vec![Vec::new(); frames.len()],
        };
        let started = Instant::now();
        let refs: Vec<&[Tensor]> = inputs.iter().map(std::slice::from_ref).collect();
        let outputs = self.interp.invoke_batch_observed(&refs, &mut collector)?;
        let share_ns = (started.elapsed().as_nanos() as u64) / frames.len() as u64;
        let stats = self.interp.last_stats();
        let mut predictions = Vec::with_capacity(frames.len());
        for (b, frame) in frames.iter().enumerate() {
            monitor.log_tensor(KEY_PREPROCESS_OUTPUT, &inputs[b]);
            monitor.log_tensor(KEY_MODEL_INPUT, &inputs[b]);
            for (name, value, latency) in std::mem::take(&mut collector.per_frame[b]) {
                monitor.log_value(&layer_output_key(&name), value);
                if config.layer_latency {
                    monitor.log_value(
                        &layer_latency_key(&name),
                        LogValue::LatencyNs(latency.as_nanos() as u64),
                    );
                }
            }
            let output = &outputs[b][0];
            let predicted = argmax(&output.to_f32_vec());
            monitor.log_tensor(KEY_MODEL_OUTPUT, output);
            if let Some(stats) = stats {
                // Per-frame attribution: the arena held `arena_frames`
                // frames at once (1 on the per-frame fallback path).
                monitor
                    .log_memory((stats.peak_activation_bytes / stats.arena_frames.max(1)) as u64);
            }
            monitor.log_decision(predicted, frame.label);
            monitor.log_latency_ns(share_ns);
            predictions.push(predicted);
        }
        Ok(predictions)
    }

    /// Classifies a playback sequence, returning the predictions.
    ///
    /// # Errors
    ///
    /// Propagates per-frame errors.
    pub fn run(&mut self, frames: &[LabeledFrame], monitor: &Monitor) -> Result<Vec<usize>> {
        frames.iter().map(|f| self.classify(f, monitor)).collect()
    }
}

/// Collects per-frame layer records during a batched invoke so they can be
/// replayed into the monitor grouped by frame. Outputs are rendered to
/// [`LogValue`]s at capture depth immediately, so `Stats` capture never
/// retains full activation copies.
struct BatchCollector {
    capture: bool,
    full: bool,
    per_frame: Vec<Vec<(String, LogValue, Duration)>>,
}

impl LayerObserver for BatchCollector {
    fn on_layer(&mut self, record: &LayerRecord<'_>) {
        self.per_frame[record.batch].push((
            record.name.to_string(),
            LogValue::of_tensor(record.output, self.full),
            record.latency,
        ));
    }

    fn enabled(&self) -> bool {
        self.capture
    }
}

/// An audio-keyword app: STFT preprocessing + spectrogram CNN.
#[derive(Debug, Clone)]
pub struct AudioPipeline {
    /// STFT + normalization stage (the Fig. 4c bug surface).
    pub preprocess: AudioPreprocessConfig,
    /// The deployed model.
    pub model: Model,
    /// Kernel flavor and bug injection.
    pub options: InterpreterOptions,
}

impl AudioPipeline {
    /// Builds a pipeline with default options.
    pub fn new(model: Model, preprocess: AudioPreprocessConfig) -> Self {
        AudioPipeline {
            preprocess,
            model,
            options: InterpreterOptions::optimized(),
        }
    }

    /// Prepares a reusable runner.
    ///
    /// # Errors
    ///
    /// Propagates graph validation errors.
    pub fn runner(&self) -> Result<AudioRunner<'_>> {
        Ok(AudioRunner {
            pipeline: self,
            interp: Interpreter::new(&self.model.graph, self.options)?,
        })
    }
}

/// Executes an [`AudioPipeline`] clip by clip.
#[derive(Debug)]
pub struct AudioRunner<'p> {
    pipeline: &'p AudioPipeline,
    interp: Interpreter<'p>,
}

impl AudioRunner<'_> {
    /// Classifies one waveform.
    ///
    /// # Errors
    ///
    /// Propagates preprocessing and execution errors.
    pub fn classify(
        &mut self,
        waveform: &[f32],
        label: Option<usize>,
        monitor: &Monitor,
    ) -> Result<usize> {
        let spec = self.pipeline.preprocess.apply(waveform)?;
        let input = spec.to_tensor()?;
        monitor.log_tensor(KEY_PREPROCESS_OUTPUT, &input);
        monitor.on_inference_start();
        let outputs = self
            .interp
            .invoke_observed(std::slice::from_ref(&input), &mut monitor.layer_observer())?;
        let predicted = argmax(&outputs[0].to_f32_vec());
        monitor.log_tensor(KEY_MODEL_OUTPUT, &outputs[0]);
        monitor.log_decision(predicted, label);
        monitor.on_inference_stop();
        Ok(predicted)
    }
}

/// A text-classification app: tokenizer + vocabulary + embedding model.
#[derive(Debug, Clone)]
pub struct TextPipeline {
    /// Tokenization stage (the Appendix A case-mismatch surface).
    pub preprocess: TextPreprocessConfig,
    /// Token vocabulary.
    pub vocab: Vocabulary,
    /// The deployed model.
    pub model: Model,
    /// Kernel flavor and bug injection.
    pub options: InterpreterOptions,
}

impl TextPipeline {
    /// Builds a pipeline with default options.
    pub fn new(model: Model, preprocess: TextPreprocessConfig, vocab: Vocabulary) -> Self {
        TextPipeline {
            preprocess,
            vocab,
            model,
            options: InterpreterOptions::optimized(),
        }
    }

    /// Prepares a reusable runner.
    ///
    /// # Errors
    ///
    /// Propagates graph validation errors.
    pub fn runner(&self) -> Result<TextRunner<'_>> {
        Ok(TextRunner {
            pipeline: self,
            interp: Interpreter::new(&self.model.graph, self.options)?,
        })
    }
}

/// Executes a [`TextPipeline`] document by document.
#[derive(Debug)]
pub struct TextRunner<'p> {
    pipeline: &'p TextPipeline,
    interp: Interpreter<'p>,
}

impl TextRunner<'_> {
    /// Classifies one document.
    ///
    /// # Errors
    ///
    /// Propagates preprocessing and execution errors.
    pub fn classify(
        &mut self,
        text: &str,
        label: Option<usize>,
        monitor: &Monitor,
    ) -> Result<usize> {
        let ids = self
            .pipeline
            .preprocess
            .encode(text, &self.pipeline.vocab)?;
        let data: Vec<i32> = ids.iter().map(|&i| i as i32).collect();
        let input = Tensor::from_i32(Shape::matrix(1, data.len()), data, None)?;
        monitor.log_tensor(KEY_PREPROCESS_OUTPUT, &input);
        monitor.on_inference_start();
        let outputs = self
            .interp
            .invoke_observed(std::slice::from_ref(&input), &mut monitor.layer_observer())?;
        let predicted = argmax(&outputs[0].to_f32_vec());
        monitor.log_tensor(KEY_MODEL_OUTPUT, &outputs[0]);
        monitor.log_decision(predicted, label);
        monitor.on_inference_stop();
        Ok(predicted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor::{LayerCapture, MonitorConfig};
    use mlexray_nn::{Activation, Padding};
    use mlexray_preprocess::ChannelOrder;

    fn tiny_image_model() -> Model {
        let mut b = mlexray_nn::GraphBuilder::new("tiny");
        let x = b.input("image", Shape::nhwc(1, 4, 4, 3));
        let w = b.constant("w", Tensor::filled_f32(Shape::new(vec![2, 1, 1, 3]), 0.5));
        let c = b
            .conv2d("conv", x, w, None, 1, Padding::Same, Activation::Relu)
            .unwrap();
        let m = b.mean("gap", c).unwrap();
        let s = b.softmax("softmax", m).unwrap();
        b.output(s);
        Model::checkpoint(b.finish().unwrap(), "tiny")
    }

    #[test]
    fn image_pipeline_logs_everything() {
        let model = tiny_image_model();
        let pp = ImagePreprocessConfig {
            target_height: 4,
            target_width: 4,
            channel_order: ChannelOrder::Rgb,
            ..ImagePreprocessConfig::mobilenet_style(4, 4)
        };
        let pipeline = ImagePipeline::new(model, pp);
        let mut runner = pipeline.runner().unwrap();
        let monitor = Monitor::new(MonitorConfig {
            per_layer: LayerCapture::Full,
            full_io: true,
            layer_latency: true,
        });
        let frame = LabeledFrame::new(Image::solid(8, 8, [128, 0, 255]), Some(1));
        let pred = runner.classify(&frame, &monitor).unwrap();
        assert!(pred < 2);
        let logs = monitor.take_logs();
        assert!(logs.get(0, KEY_PREPROCESS_OUTPUT).is_some());
        assert!(logs.get(0, KEY_MODEL_OUTPUT).is_some());
        assert!(logs.get(0, "layer/conv/output").is_some());
        assert_eq!(logs.inference_latencies().len(), 1);
        assert!(logs.accuracy().is_some());
    }

    #[test]
    fn run_processes_all_frames() {
        let model = tiny_image_model();
        let pipeline = ImagePipeline::new(model, ImagePreprocessConfig::mobilenet_style(4, 4));
        let mut runner = pipeline.runner().unwrap();
        let monitor = Monitor::new(MonitorConfig::runtime());
        let frames: Vec<LabeledFrame> = (0..3)
            .map(|i| LabeledFrame::new(Image::solid(8, 8, [i * 40, 100, 200]), Some(0)))
            .collect();
        let preds = runner.run(&frames, &monitor).unwrap();
        assert_eq!(preds.len(), 3);
        assert_eq!(monitor.frames_logged(), 3);
    }

    /// A non-scalar constant `Mul` rhs makes the graph batch-unsafe, so
    /// `classify_batch` exercises `invoke_batch`'s per-frame fallback.
    fn non_batchable_model() -> Model {
        let mut b = mlexray_nn::GraphBuilder::new("fallback");
        let x = b.input("image", Shape::nhwc(1, 4, 4, 3));
        let w = b.constant("w", Tensor::filled_f32(Shape::new(vec![2, 1, 1, 3]), 0.5));
        let c = b
            .conv2d("conv", x, w, None, 1, Padding::Same, Activation::Relu)
            .unwrap();
        let gate = b.constant(
            "gate",
            Tensor::from_f32(Shape::nhwc(1, 1, 1, 2), vec![0.5, 2.0]).unwrap(),
        );
        let g = b.mul("gated", c, gate).unwrap();
        let m = b.mean("gap", g).unwrap();
        let s = b.softmax("softmax", m).unwrap();
        b.output(s);
        Model::checkpoint(b.finish().unwrap(), "fallback")
    }

    /// Per-frame memory attribution must not depend on whether
    /// `classify_batch` ran the stacked path or the per-frame fallback:
    /// logged memory must equal what frame-by-frame `classify` logs.
    #[test]
    fn classify_batch_memory_matches_per_frame_on_fallback() {
        let frames: Vec<LabeledFrame> = (0..4)
            .map(|i| LabeledFrame::new(Image::solid(8, 8, [i * 30, 90, 210]), Some(0)))
            .collect();
        for model in [tiny_image_model(), non_batchable_model()] {
            let pipeline = ImagePipeline::new(model, ImagePreprocessConfig::mobilenet_style(4, 4));

            let mut per_frame = pipeline.runner().unwrap();
            let baseline = Monitor::new(MonitorConfig::runtime());
            for frame in &frames {
                per_frame.classify(frame, &baseline).unwrap();
            }
            let baseline_memory: Vec<_> = baseline
                .take_logs()
                .all(crate::log::KEY_INFERENCE_MEMORY)
                .into_iter()
                .map(|r| r.value.clone())
                .collect();

            let mut batched = pipeline.runner().unwrap();
            let monitor = Monitor::new(MonitorConfig::runtime());
            batched.classify_batch(&frames, &monitor).unwrap();
            let batched_memory: Vec<_> = monitor
                .take_logs()
                .all(crate::log::KEY_INFERENCE_MEMORY)
                .into_iter()
                .map(|r| r.value.clone())
                .collect();

            assert_eq!(baseline_memory.len(), frames.len());
            assert_eq!(
                batched_memory,
                baseline_memory,
                "per-frame memory attribution diverged for '{}'",
                batched.pipeline.model.graph.name()
            );
        }
    }
}
