//! The EdgeML Monitor (§3.2): the instrumentation object both the edge app
//! and the reference pipeline instantiate.
//!
//! The API mirrors the paper's C++/Java snippets:
//!
//! ```text
//! MLEXray->on_inf_start();
//! TfLiteStatus s = m_interpreter->Invoke();
//! MLEXray->on_inf_stop(&m_interpreter);
//! ```
//!
//! becomes
//!
//! ```
//! # use mlexray_core::{Monitor, MonitorConfig};
//! let monitor = Monitor::new(MonitorConfig::default());
//! monitor.on_inference_start();
//! // interpreter invoke...
//! monitor.on_inference_stop();
//! assert_eq!(monitor.frames_logged(), 1);
//! ```

use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use mlexray_nn::{LayerObserver, LayerRecord};
use mlexray_tensor::Tensor;

use crate::log::{
    layer_latency_key, layer_output_key, LogRecord, LogValue, SensorReading, KEY_DECISION,
    KEY_INFERENCE_LATENCY, KEY_INFERENCE_MEMORY,
};
use crate::sink::{LogSink, MemorySink};

/// How much of each layer output the monitor captures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LayerCapture {
    /// Per-layer logging disabled (cheap runtime default; Table 2 overhead).
    #[default]
    None,
    /// Compact statistics per layer.
    Stats,
    /// Full tensor dumps per layer (offline validation; Tables 3/5).
    Full,
}

/// Monitor configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MonitorConfig {
    /// Per-layer capture mode.
    pub per_layer: LayerCapture,
    /// Capture full tensors (rather than stats) for explicitly logged
    /// tensors such as preprocessing outputs.
    pub full_io: bool,
    /// Record per-layer latency alongside outputs.
    pub layer_latency: bool,
}

impl MonitorConfig {
    /// The offline-validation configuration: full per-layer dumps with
    /// latencies (expensive; §4.2 measures tens of seconds and tens of MB on
    /// device).
    pub fn offline_validation() -> Self {
        MonitorConfig {
            per_layer: LayerCapture::Full,
            full_io: true,
            layer_latency: true,
        }
    }

    /// The lightweight always-on configuration (§4.2: ≤3 ms, ~0.4 KB/frame).
    pub fn runtime() -> Self {
        MonitorConfig {
            per_layer: LayerCapture::None,
            full_io: false,
            layer_latency: false,
        }
    }
}

/// The EdgeML Monitor: collects default inference logs (latency, memory,
/// decisions), optional per-layer telemetry, custom key-value logs and
/// peripheral-sensor readings, and forwards everything to a [`LogSink`].
pub struct Monitor {
    config: MonitorConfig,
    sink: Arc<dyn LogSink>,
    memory: Option<Arc<MemorySink>>,
    frame: Mutex<u64>,
    inference_start: Mutex<Option<Instant>>,
    sensor_start: Mutex<Option<Instant>>,
}

impl std::fmt::Debug for Monitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Monitor")
            .field("config", &self.config)
            .field("frame", &*self.frame.lock())
            .finish_non_exhaustive()
    }
}

impl Monitor {
    /// Creates a monitor backed by an in-memory sink (drain it with
    /// [`Monitor::take_logs`]).
    pub fn new(config: MonitorConfig) -> Self {
        let memory = Arc::new(MemorySink::new());
        Monitor {
            config,
            sink: memory.clone(),
            memory: Some(memory),
            frame: Mutex::new(0),
            inference_start: Mutex::new(None),
            sensor_start: Mutex::new(None),
        }
    }

    /// Creates a monitor writing to a custom sink (e.g. a
    /// [`crate::JsonlFileSink`]).
    pub fn with_sink(config: MonitorConfig, sink: Arc<dyn LogSink>) -> Self {
        Monitor {
            config,
            sink,
            memory: None,
            frame: Mutex::new(0),
            inference_start: Mutex::new(None),
            sensor_start: Mutex::new(None),
        }
    }

    /// Rebases the frame counter so the next inference logs as frame
    /// `first_frame`. Sharded replay workers use this to emit globally
    /// numbered records directly, so per-shard logs merge without rewriting.
    #[must_use]
    pub fn starting_at(self, first_frame: u64) -> Self {
        *self.frame.lock() = first_frame;
        self
    }

    /// The monitor's configuration.
    pub fn config(&self) -> MonitorConfig {
        self.config
    }

    /// The current frame (inference) index.
    pub fn current_frame(&self) -> u64 {
        *self.frame.lock()
    }

    /// Number of completed inferences.
    pub fn frames_logged(&self) -> u64 {
        self.current_frame()
    }

    /// Bytes logged so far.
    pub fn bytes_logged(&self) -> u64 {
        self.sink.bytes_written()
    }

    fn emit(&self, key: String, value: LogValue) {
        let frame = *self.frame.lock();
        self.sink.write(LogRecord { frame, key, value });
    }

    /// Marks the start of one inference.
    pub fn on_inference_start(&self) {
        *self.inference_start.lock() = Some(Instant::now());
    }

    /// Marks the end of one inference: logs wall-clock latency and advances
    /// the frame counter.
    pub fn on_inference_stop(&self) {
        if let Some(start) = self.inference_start.lock().take() {
            self.emit(
                KEY_INFERENCE_LATENCY.to_string(),
                LogValue::LatencyNs(start.elapsed().as_nanos() as u64),
            );
        }
        *self.frame.lock() += 1;
    }

    /// Overrides the latency of the current frame (used when latency comes
    /// from a simulated device rather than the wall clock).
    pub fn log_latency_ns(&self, ns: u64) {
        *self.inference_start.lock() = None;
        self.emit(KEY_INFERENCE_LATENCY.to_string(), LogValue::LatencyNs(ns));
        *self.frame.lock() += 1;
    }

    /// Logs peak activation memory of the current frame.
    pub fn log_memory(&self, bytes: u64) {
        self.emit(KEY_INFERENCE_MEMORY.to_string(), LogValue::Bytes(bytes));
    }

    /// Logs a tensor under a custom key (preprocessing outputs, custom
    /// function I/O). Capture depth follows `config.full_io`.
    pub fn log_tensor(&self, key: &str, tensor: &Tensor) {
        self.emit(
            key.to_string(),
            LogValue::of_tensor(tensor, self.config.full_io),
        );
    }

    /// Logs an arbitrary value under a custom key.
    pub fn log_value(&self, key: &str, value: LogValue) {
        self.emit(key.to_string(), value);
    }

    /// Logs a classification decision (with ground truth when replaying a
    /// labelled dataset).
    pub fn log_decision(&self, predicted: usize, label: Option<usize>) {
        self.emit(
            KEY_DECISION.to_string(),
            LogValue::Decision { predicted, label },
        );
    }

    /// Marks the start of a sensor-capture window.
    pub fn on_sensor_start(&self) {
        *self.sensor_start.lock() = Some(Instant::now());
    }

    /// Marks the end of a sensor-capture window and logs its duration.
    pub fn on_sensor_stop(&self) {
        if let Some(start) = self.sensor_start.lock().take() {
            self.emit(
                "sensor/capture_latency_ns".to_string(),
                LogValue::LatencyNs(start.elapsed().as_nanos() as u64),
            );
        }
    }

    /// Logs a peripheral-sensor reading.
    pub fn log_sensor(&self, reading: SensorReading) {
        self.emit("sensor/reading".to_string(), LogValue::Sensor(reading));
    }

    /// Returns a [`LayerObserver`] that streams per-layer telemetry into
    /// this monitor — attach it to
    /// [`mlexray_nn::Interpreter::invoke_observed`]. Instrumenting an app is
    /// these two lines plus start/stop, which is how ML-EXray keeps
    /// instrumentation under 5 LoC (Table 1).
    pub fn layer_observer(&self) -> MonitorLayerObserver<'_> {
        MonitorLayerObserver { monitor: self }
    }

    /// Drains buffered records (memory-sink monitors only).
    ///
    /// # Panics
    ///
    /// Panics if the monitor was built over a custom sink.
    pub fn take_logs(&self) -> crate::log::LogSet {
        let memory = self
            .memory
            .as_ref()
            .expect("take_logs requires the default in-memory sink");
        crate::log::LogSet::new(memory.drain())
    }

    /// Snapshots buffered records without draining (memory-sink monitors
    /// only).
    ///
    /// # Panics
    ///
    /// Panics if the monitor was built over a custom sink.
    pub fn snapshot_logs(&self) -> crate::log::LogSet {
        let memory = self
            .memory
            .as_ref()
            .expect("snapshot_logs requires the default in-memory sink");
        crate::log::LogSet::new(memory.snapshot())
    }
}

/// Adapter streaming interpreter layer records into a [`Monitor`].
pub struct MonitorLayerObserver<'m> {
    monitor: &'m Monitor,
}

impl LayerObserver for MonitorLayerObserver<'_> {
    fn on_layer(&mut self, record: &LayerRecord<'_>) {
        let capture = self.monitor.config.per_layer;
        if capture == LayerCapture::None {
            return;
        }
        let full = capture == LayerCapture::Full;
        self.monitor.emit(
            layer_output_key(record.name),
            LogValue::of_tensor(record.output, full),
        );
        if self.monitor.config.layer_latency {
            self.monitor.emit(
                layer_latency_key(record.name),
                LogValue::LatencyNs(record.latency.as_nanos() as u64),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlexray_tensor::Shape;

    #[test]
    fn inference_cycle_logs_latency_and_advances_frames() {
        let m = Monitor::new(MonitorConfig::default());
        m.on_inference_start();
        m.on_inference_stop();
        m.on_inference_start();
        m.on_inference_stop();
        assert_eq!(m.frames_logged(), 2);
        let logs = m.take_logs();
        assert_eq!(logs.inference_latencies().len(), 2);
    }

    #[test]
    fn custom_tensor_and_sensor_logging() {
        let m = Monitor::new(MonitorConfig {
            full_io: true,
            ..Default::default()
        });
        let t = Tensor::from_f32(Shape::vector(2), vec![1.0, 2.0]).unwrap();
        m.log_tensor("preprocess/output", &t);
        m.log_sensor(SensorReading::Orientation { degrees: 90 });
        m.on_inference_stop();
        let logs = m.take_logs();
        let rec = logs.get(0, "preprocess/output").unwrap();
        assert_eq!(rec.value.values(), Some(&[1.0, 2.0][..]));
        assert!(logs.get(0, "sensor/reading").is_some());
    }

    #[test]
    fn layer_observer_respects_capture_mode() {
        use mlexray_nn::{Activation, GraphBuilder, Interpreter, InterpreterOptions, Padding};
        let mut b = GraphBuilder::new("g");
        let x = b.input("x", Shape::nhwc(1, 2, 2, 1));
        let w = b.constant("w", Tensor::filled_f32(Shape::new(vec![1, 1, 1, 1]), 2.0));
        let y = b
            .conv2d("double", x, w, None, 1, Padding::Same, Activation::None)
            .unwrap();
        b.output(y);
        let g = b.finish().unwrap();

        for (capture, expect_layers) in [(LayerCapture::None, false), (LayerCapture::Full, true)] {
            let m = Monitor::new(MonitorConfig {
                per_layer: capture,
                layer_latency: true,
                full_io: false,
            });
            let mut interp = Interpreter::new(&g, InterpreterOptions::optimized()).unwrap();
            m.on_inference_start();
            interp
                .invoke_observed(
                    &[Tensor::filled_f32(Shape::nhwc(1, 2, 2, 1), 1.0)],
                    &mut m.layer_observer(),
                )
                .unwrap();
            m.on_inference_stop();
            let logs = m.take_logs();
            assert_eq!(
                logs.get(0, "layer/double/output").is_some(),
                expect_layers,
                "{capture:?}"
            );
        }
    }

    #[test]
    fn decision_logging_feeds_accuracy() {
        let m = Monitor::new(MonitorConfig::default());
        m.log_decision(1, Some(1));
        m.on_inference_stop();
        m.log_decision(0, Some(1));
        m.on_inference_stop();
        assert_eq!(m.take_logs().accuracy(), Some(0.5));
    }

    #[test]
    fn bytes_logged_grows() {
        let m = Monitor::new(MonitorConfig::offline_validation());
        assert_eq!(m.bytes_logged(), 0);
        m.log_tensor("k", &Tensor::filled_f32(Shape::vector(100), 0.0));
        assert!(m.bytes_logged() > 400);
    }
}
