//! Process-global core budget: one ledger every thread-pool-shaped
//! subsystem draws from — the sharded replay engine, the parallel
//! [`crate::invoke_batch_parallel`] path, and the serve crate's per-model
//! worker pools — so concurrent subsystems *compose* instead of each
//! independently sizing itself to the whole machine and oversubscribing
//! cores.
//!
//! The ledger is deliberately simple: a single atomic count of reserved
//! cores against [`machine_parallelism`]. A reservation is a
//! [`CoreLease`]; dropping the lease returns the cores. Reservations
//! never block and never shrink to zero — every caller is granted at
//! least one core, so forward progress is unconditional even when the
//! machine is oversubscribed (the ledger then simply reports no
//! headroom to the *next* caller).
//!
//! Two reservation styles cover the callers:
//!
//! * [`reserve_cores`] — an **exact** claim for subsystems whose worker
//!   count is caller-configured (an explicit `workers` in
//!   [`crate::ReplayOptions`], the serve crate's `workers_per_model`).
//!   The claim is recorded even past the machine size, making the
//!   pressure visible to budget-aware callers.
//! * [`reserve_up_to`] — an **elastic** claim for subsystems that size
//!   themselves (`workers == 0` auto modes): the grant is whatever
//!   headroom remains, capped by the request, floored at one.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Cores currently reserved by live [`CoreLease`]s, process-wide.
static RESERVED: AtomicUsize = AtomicUsize::new(0);

/// The machine's available parallelism (always at least 1).
pub fn machine_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Cores currently reserved by live [`CoreLease`]s.
pub fn reserved_cores() -> usize {
    RESERVED.load(Ordering::Acquire)
}

/// Cores not claimed by any live lease — the headroom an auto-sizing
/// subsystem should fit itself into. Never reports below 1: a caller
/// sized by the budget can always make progress with one worker.
pub fn available_cores() -> usize {
    machine_parallelism()
        .saturating_sub(reserved_cores())
        .max(1)
}

/// A reservation against the global core budget. The cores return to the
/// ledger when the lease drops — tie the lease's lifetime to the worker
/// pool it sized.
#[derive(Debug)]
pub struct CoreLease {
    cores: usize,
}

impl CoreLease {
    /// Cores granted to this lease (always at least 1).
    pub fn cores(&self) -> usize {
        self.cores
    }
}

impl Drop for CoreLease {
    fn drop(&mut self) {
        RESERVED.fetch_sub(self.cores, Ordering::AcqRel);
    }
}

/// Reserves exactly `cores` cores (floored at 1), recording the claim in
/// the ledger even when it exceeds the current headroom — an explicit
/// worker-count configuration is honored, and the resulting pressure is
/// what elastic callers then see.
pub fn reserve_cores(cores: usize) -> CoreLease {
    let cores = cores.max(1);
    RESERVED.fetch_add(cores, Ordering::AcqRel);
    CoreLease { cores }
}

/// Reserves up to `max` cores out of the remaining headroom (both floored
/// at 1): the elastic claim auto-sizing subsystems use. Concurrent
/// reservations race on a compare-exchange loop, so two elastic callers
/// never double-count the same headroom.
pub fn reserve_up_to(max: usize) -> CoreLease {
    let max = max.max(1);
    let machine = machine_parallelism();
    loop {
        let reserved = RESERVED.load(Ordering::Acquire);
        let headroom = machine.saturating_sub(reserved).max(1);
        let grant = headroom.min(max);
        if RESERVED
            .compare_exchange(
                reserved,
                reserved + grant,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok()
        {
            return CoreLease { cores: grant };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One test exercises the whole ledger lifecycle: the ledger is
    /// process-global, so splitting these assertions across #[test] fns
    /// would race with the harness's parallel execution.
    #[test]
    fn ledger_grants_release_and_floor() {
        let machine = machine_parallelism();
        assert!(machine >= 1);

        // Exact reservations are honored verbatim and released on drop.
        let before = reserved_cores();
        let exact = reserve_cores(3);
        assert_eq!(exact.cores(), 3);
        assert_eq!(reserved_cores(), before + 3);
        drop(exact);
        assert_eq!(reserved_cores(), before);

        // A zero request floors at one core.
        let floor = reserve_cores(0);
        assert_eq!(floor.cores(), 1);
        drop(floor);

        // An elastic reservation never exceeds the request...
        let elastic = reserve_up_to(1);
        assert_eq!(elastic.cores(), 1);
        // ...and with the whole machine claimed on top, the next elastic
        // caller still gets its guaranteed single core.
        let hog = reserve_cores(machine * 2);
        let squeezed = reserve_up_to(8);
        assert_eq!(squeezed.cores(), 1, "no headroom left, floor applies");
        assert_eq!(available_cores(), 1, "available never reports below 1");
        drop(squeezed);
        drop(hog);
        drop(elastic);
    }
}
