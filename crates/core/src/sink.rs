//! Log sinks: in-memory buffering and JSONL persistence.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;

use parking_lot::Mutex;

use crate::log::LogRecord;
use crate::{ExrayError, Result};

/// A destination for telemetry records. Sinks are thread-safe: the monitor
/// logs from wherever inference runs.
pub trait LogSink: Send + Sync {
    /// Appends one record.
    fn write(&self, record: LogRecord);

    /// Bytes persisted/buffered so far (storage accounting for Table 2).
    fn bytes_written(&self) -> u64;
}

/// Buffers records in memory; the default sink, drained by the offline
/// validator.
#[derive(Debug, Default)]
pub struct MemorySink {
    records: Mutex<Vec<LogRecord>>,
    bytes: Mutex<u64>,
}

impl MemorySink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Removes and returns everything buffered so far.
    pub fn drain(&self) -> Vec<LogRecord> {
        std::mem::take(&mut self.records.lock())
    }

    /// Copies everything buffered so far without draining.
    pub fn snapshot(&self) -> Vec<LogRecord> {
        self.records.lock().clone()
    }

    /// Number of buffered records.
    pub fn len(&self) -> usize {
        self.records.lock().len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.records.lock().is_empty()
    }
}

impl LogSink for MemorySink {
    fn write(&self, record: LogRecord) {
        *self.bytes.lock() += record.byte_size();
        self.records.lock().push(record);
    }

    fn bytes_written(&self) -> u64 {
        *self.bytes.lock()
    }
}

/// Writes records as JSON lines to a file (the "EXray logs on the SD card").
#[derive(Debug)]
pub struct JsonlFileSink {
    writer: Mutex<BufWriter<File>>,
    bytes: Mutex<u64>,
}

impl JsonlFileSink {
    /// Creates (truncating) the log file.
    ///
    /// # Errors
    ///
    /// Returns [`ExrayError::Io`] on filesystem failures.
    pub fn create(path: &Path) -> Result<Self> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).map_err(ExrayError::Io)?;
        }
        let file = File::create(path).map_err(ExrayError::Io)?;
        Ok(JsonlFileSink {
            writer: Mutex::new(BufWriter::new(file)),
            bytes: Mutex::new(0),
        })
    }

    /// Flushes buffered output.
    ///
    /// # Errors
    ///
    /// Returns [`ExrayError::Io`] on failure.
    pub fn flush(&self) -> Result<()> {
        self.writer.lock().flush().map_err(ExrayError::Io)
    }

    /// Reads a JSONL log file back into records.
    ///
    /// # Errors
    ///
    /// Returns [`ExrayError::Io`] / [`ExrayError::Format`] on failure.
    pub fn read(path: &Path) -> Result<Vec<LogRecord>> {
        let data = std::fs::read_to_string(path).map_err(ExrayError::Io)?;
        data.lines()
            .filter(|l| !l.trim().is_empty())
            .map(|l| serde_json::from_str(l).map_err(|e| ExrayError::Format(e.to_string())))
            .collect()
    }
}

impl LogSink for JsonlFileSink {
    fn write(&self, record: LogRecord) {
        if let Ok(line) = serde_json::to_string(&record) {
            let mut w = self.writer.lock();
            *self.bytes.lock() += line.len() as u64 + 1;
            let _ = writeln!(w, "{line}");
        }
    }

    fn bytes_written(&self) -> u64 {
        *self.bytes.lock()
    }
}

/// Duplicates records to two sinks (e.g. memory for validation + JSONL for
/// persistence).
pub struct TeeSink<A: LogSink, B: LogSink> {
    a: A,
    b: B,
}

impl<A: LogSink, B: LogSink> TeeSink<A, B> {
    /// Combines two sinks.
    pub fn new(a: A, b: B) -> Self {
        TeeSink { a, b }
    }

    /// The first sink.
    pub fn first(&self) -> &A {
        &self.a
    }

    /// The second sink.
    pub fn second(&self) -> &B {
        &self.b
    }
}

impl<A: LogSink, B: LogSink> LogSink for TeeSink<A, B> {
    fn write(&self, record: LogRecord) {
        self.a.write(record.clone());
        self.b.write(record);
    }

    fn bytes_written(&self) -> u64 {
        self.a.bytes_written().max(self.b.bytes_written())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::LogValue;

    fn rec(frame: u64) -> LogRecord {
        LogRecord {
            frame,
            key: "k".into(),
            value: LogValue::Scalar(1.0),
        }
    }

    #[test]
    fn memory_sink_buffers_and_drains() {
        let sink = MemorySink::new();
        sink.write(rec(0));
        sink.write(rec(1));
        assert_eq!(sink.len(), 2);
        assert!(sink.bytes_written() > 0);
        let drained = sink.drain();
        assert_eq!(drained.len(), 2);
        assert!(sink.is_empty());
    }

    #[test]
    fn jsonl_roundtrip() {
        let dir = std::env::temp_dir().join(format!("mlexray-sink-{}", std::process::id()));
        let path = dir.join("log.jsonl");
        let sink = JsonlFileSink::create(&path).unwrap();
        sink.write(rec(0));
        sink.write(rec(1));
        sink.flush().unwrap();
        let back = JsonlFileSink::read(&path).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[1].frame, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tee_duplicates() {
        let tee = TeeSink::new(MemorySink::new(), MemorySink::new());
        tee.write(rec(0));
        assert_eq!(tee.first().len(), 1);
        assert_eq!(tee.second().len(), 1);
    }
}
