//! Log sinks: in-memory buffering, JSONL persistence, and the async batched
//! channel sink that moves logging off the inference thread.
//!
//! # Drain protocol
//!
//! The [`ChannelSink`] decouples the hot path from persistence: `write`
//! enqueues onto a bounded channel and returns immediately, while a
//! background writer thread drains the channel and forwards size- or
//! count-triggered batches to the wrapped sink. Three operations control the
//! buffered records' lifecycle:
//!
//! * [`ChannelSink::flush`] — blocks until every record enqueued *before*
//!   the call has been handed to the underlying sink (and that sink has been
//!   flushed).
//! * [`ChannelSink::close`] — flushes, stops the writer thread and returns
//!   the final [`SinkBackpressure`] accounting. Idempotent.
//! * Drop — closes implicitly; records enqueued before drop are persisted.
//!
//! Writes arriving after `close` are counted as dropped, never silently
//! lost: the [`SinkBackpressure`] counters always satisfy
//! `enqueued + dropped == write calls` and, once `close` returns,
//! `persisted == enqueued`. A write racing `close` either lands before the
//! close sentinel (and is persisted) or is counted as dropped — a small
//! reader-writer gate around the send makes the accounting exact.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::Mutex;

use crate::log::LogRecord;
use crate::{ExrayError, Result};

/// A destination for telemetry records. Sinks are thread-safe: the monitor
/// logs from wherever inference runs.
pub trait LogSink: Send + Sync {
    /// Appends one record.
    fn write(&self, record: LogRecord);

    /// Appends a batch of records. The default loops over [`LogSink::write`];
    /// sinks with per-call locking override this to amortize the lock over
    /// the whole batch.
    fn write_batch(&self, records: Vec<LogRecord>) {
        for record in records {
            self.write(record);
        }
    }

    /// Bytes persisted/buffered so far (storage accounting for Table 2).
    fn bytes_written(&self) -> u64;

    /// Pushes buffered output to durable storage. A no-op for sinks without
    /// an internal buffer.
    ///
    /// # Errors
    ///
    /// Returns [`ExrayError::Io`] on filesystem failures.
    fn flush(&self) -> Result<()> {
        Ok(())
    }
}

/// Records plus byte accounting, guarded by one lock so a reader can never
/// observe the two out of sync (a record counted in `bytes` but not yet in
/// `records`, or vice versa).
#[derive(Debug, Default)]
struct MemoryBuffer {
    records: Vec<LogRecord>,
    bytes: u64,
}

/// Buffers records in memory; the default sink, drained by the offline
/// validator.
#[derive(Debug, Default)]
pub struct MemorySink {
    buffer: Mutex<MemoryBuffer>,
}

impl MemorySink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Removes and returns everything buffered so far.
    pub fn drain(&self) -> Vec<LogRecord> {
        let mut buffer = self.buffer.lock();
        buffer.bytes = 0;
        std::mem::take(&mut buffer.records)
    }

    /// Copies everything buffered so far without draining.
    pub fn snapshot(&self) -> Vec<LogRecord> {
        self.buffer.lock().records.clone()
    }

    /// Number of buffered records.
    pub fn len(&self) -> usize {
        self.buffer.lock().records.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.buffer.lock().records.is_empty()
    }

    /// Record count and byte count read under one lock acquisition — the
    /// pair is guaranteed mutually consistent even mid-contention.
    pub fn len_and_bytes(&self) -> (usize, u64) {
        let buffer = self.buffer.lock();
        (buffer.records.len(), buffer.bytes)
    }
}

impl LogSink for MemorySink {
    fn write(&self, record: LogRecord) {
        let mut buffer = self.buffer.lock();
        buffer.bytes += record.byte_size();
        buffer.records.push(record);
    }

    fn write_batch(&self, records: Vec<LogRecord>) {
        let mut buffer = self.buffer.lock();
        buffer.bytes += records.iter().map(LogRecord::byte_size).sum::<u64>();
        buffer.records.extend(records);
    }

    fn bytes_written(&self) -> u64 {
        self.buffer.lock().bytes
    }
}

/// Writes records as JSON lines to a file (the "EXray logs on the SD card").
#[derive(Debug)]
pub struct JsonlFileSink {
    writer: Mutex<JsonlWriter>,
}

#[derive(Debug)]
struct JsonlWriter {
    out: BufWriter<File>,
    bytes: u64,
}

impl JsonlWriter {
    fn write_line(&mut self, record: &LogRecord) {
        if let Ok(line) = serde_json::to_string(record) {
            self.bytes += line.len() as u64 + 1;
            let _ = writeln!(self.out, "{line}");
        }
    }
}

impl JsonlFileSink {
    /// Creates (truncating) the log file.
    ///
    /// # Errors
    ///
    /// Returns [`ExrayError::Io`] on filesystem failures.
    pub fn create(path: &Path) -> Result<Self> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).map_err(ExrayError::Io)?;
        }
        let file = File::create(path).map_err(ExrayError::Io)?;
        Ok(JsonlFileSink {
            writer: Mutex::new(JsonlWriter {
                out: BufWriter::new(file),
                bytes: 0,
            }),
        })
    }

    /// Flushes buffered output.
    ///
    /// # Errors
    ///
    /// Returns [`ExrayError::Io`] on failure.
    pub fn flush(&self) -> Result<()> {
        self.writer.lock().out.flush().map_err(ExrayError::Io)
    }

    /// Reads a JSONL log file back into records.
    ///
    /// # Errors
    ///
    /// Returns [`ExrayError::Io`] / [`ExrayError::Format`] on failure.
    pub fn read(path: &Path) -> Result<Vec<LogRecord>> {
        let data = std::fs::read_to_string(path).map_err(ExrayError::Io)?;
        data.lines()
            .filter(|l| !l.trim().is_empty())
            .map(|l| serde_json::from_str(l).map_err(|e| ExrayError::Format(e.to_string())))
            .collect()
    }
}

impl LogSink for JsonlFileSink {
    fn write(&self, record: LogRecord) {
        self.writer.lock().write_line(&record);
    }

    fn write_batch(&self, records: Vec<LogRecord>) {
        let mut writer = self.writer.lock();
        for record in &records {
            writer.write_line(record);
        }
    }

    fn bytes_written(&self) -> u64 {
        self.writer.lock().bytes
    }

    fn flush(&self) -> Result<()> {
        JsonlFileSink::flush(self)
    }
}

/// Duplicates records to two sinks (e.g. memory for validation + JSONL for
/// persistence).
pub struct TeeSink<A: LogSink, B: LogSink> {
    a: A,
    b: B,
}

impl<A: LogSink, B: LogSink> TeeSink<A, B> {
    /// Combines two sinks.
    pub fn new(a: A, b: B) -> Self {
        TeeSink { a, b }
    }

    /// The first sink.
    pub fn first(&self) -> &A {
        &self.a
    }

    /// The second sink.
    pub fn second(&self) -> &B {
        &self.b
    }
}

impl<A: LogSink, B: LogSink> LogSink for TeeSink<A, B> {
    fn write(&self, record: LogRecord) {
        self.a.write(record.clone());
        self.b.write(record);
    }

    fn bytes_written(&self) -> u64 {
        self.a.bytes_written().max(self.b.bytes_written())
    }

    fn flush(&self) -> Result<()> {
        self.a.flush()?;
        self.b.flush()
    }
}

/// What [`ChannelSink::write`] does when the bounded channel is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverflowPolicy {
    /// Block the caller until the writer thread frees a slot (lossless; the
    /// inference thread absorbs the backpressure as latency).
    #[default]
    Block,
    /// Drop the incoming record and count it (lossy; inference latency is
    /// protected at the cost of telemetry completeness).
    DropNewest,
}

/// Tuning for a [`ChannelSink`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelSinkConfig {
    /// Bounded-channel capacity in records.
    pub capacity: usize,
    /// Flush the pending batch once it holds this many records.
    pub batch_records: usize,
    /// ... or once it holds this many (approximate serialized) bytes,
    /// whichever triggers first.
    pub batch_bytes: u64,
    /// Behavior when the channel is full.
    pub overflow: OverflowPolicy,
}

impl Default for ChannelSinkConfig {
    fn default() -> Self {
        ChannelSinkConfig {
            capacity: 1024,
            batch_records: 64,
            batch_bytes: 256 * 1024,
            overflow: OverflowPolicy::Block,
        }
    }
}

/// Backpressure and batching accounting of a [`ChannelSink`] — the
/// "telemetry overhead" side of the Table-2 storage metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SinkBackpressure {
    /// Records successfully enqueued to the writer thread.
    pub enqueued: u64,
    /// Records dropped (channel full under [`OverflowPolicy::DropNewest`],
    /// or write attempted after close).
    pub dropped: u64,
    /// Enqueues that found the channel full and had to block
    /// ([`OverflowPolicy::Block`] only) — each is hot-path latency paid for
    /// losslessness.
    pub blocked: u64,
    /// Batches handed to the underlying sink.
    pub batches: u64,
    /// Records persisted through those batches.
    pub persisted: u64,
}

impl SinkBackpressure {
    /// Stable `(name, help, value)` triples for metrics exporters. The
    /// names are wire-stable suffixes (exporters prepend their own
    /// namespace, e.g. `mlexray_sink_<name>_total`); appending new
    /// counters is allowed, renaming existing ones is not.
    pub fn export(&self) -> [(&'static str, &'static str, u64); 5] {
        [
            (
                "enqueued",
                "Records successfully enqueued to the sink writer thread.",
                self.enqueued,
            ),
            (
                "dropped",
                "Records dropped at enqueue (channel full or sink closed).",
                self.dropped,
            ),
            (
                "blocked",
                "Enqueues that blocked on a full channel (lossless mode).",
                self.blocked,
            ),
            (
                "batches",
                "Batches handed to the underlying sink.",
                self.batches,
            ),
            (
                "persisted",
                "Records persisted through those batches.",
                self.persisted,
            ),
        ]
    }
}

#[derive(Debug, Default)]
struct BackpressureCounters {
    enqueued: AtomicU64,
    dropped: AtomicU64,
    blocked: AtomicU64,
    batches: AtomicU64,
    persisted: AtomicU64,
}

impl BackpressureCounters {
    fn snapshot(&self) -> SinkBackpressure {
        SinkBackpressure {
            enqueued: self.enqueued.load(Ordering::Acquire),
            dropped: self.dropped.load(Ordering::Acquire),
            blocked: self.blocked.load(Ordering::Acquire),
            batches: self.batches.load(Ordering::Acquire),
            persisted: self.persisted.load(Ordering::Acquire),
        }
    }
}

enum Msg {
    Record(LogRecord),
    Flush(SyncSender<()>),
    Close,
}

/// Moves [`LogRecord`]s off the inference thread: `write` pushes onto a
/// bounded channel, and a background writer thread drains it into the
/// wrapped sink in size-/count-triggered batches. See the module docs for
/// the flush/close drain protocol.
pub struct ChannelSink {
    tx: SyncSender<Msg>,
    worker: Mutex<Option<JoinHandle<()>>>,
    counters: Arc<BackpressureCounters>,
    inner: Arc<dyn LogSink>,
    closed: AtomicBool,
    /// Writers send while holding this read-side; `close` sets `closed`,
    /// then takes the write side before emitting the `Close` sentinel. That
    /// ordering guarantees every successfully enqueued record sits *ahead*
    /// of `Close` in the FIFO channel, so the writer thread persists it —
    /// a write racing `close` is either persisted or counted dropped, never
    /// enqueued-then-destroyed.
    close_gate: parking_lot::RwLock<()>,
    overflow: OverflowPolicy,
}

impl std::fmt::Debug for ChannelSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChannelSink")
            .field("stats", &self.counters.snapshot())
            .field("closed", &self.closed.load(Ordering::Acquire))
            .finish_non_exhaustive()
    }
}

impl ChannelSink {
    /// Spawns the writer thread over `inner` with the given tuning.
    pub fn new(inner: Arc<dyn LogSink>, config: ChannelSinkConfig) -> Self {
        let (tx, rx) = mpsc::sync_channel::<Msg>(config.capacity.max(1));
        let counters = Arc::new(BackpressureCounters::default());
        let worker_inner = inner.clone();
        let worker_counters = counters.clone();
        let batch_records = config.batch_records.max(1);
        let batch_bytes = config.batch_bytes.max(1);
        let worker = std::thread::Builder::new()
            .name("mlexray-log-writer".into())
            .spawn(move || {
                let mut batch: Vec<LogRecord> = Vec::with_capacity(batch_records);
                let mut pending_bytes = 0u64;
                let flush_batch = |batch: &mut Vec<LogRecord>, pending_bytes: &mut u64| {
                    if batch.is_empty() {
                        return;
                    }
                    let records = std::mem::take(batch);
                    worker_counters
                        .persisted
                        .fetch_add(records.len() as u64, Ordering::AcqRel);
                    worker_counters.batches.fetch_add(1, Ordering::AcqRel);
                    worker_inner.write_batch(records);
                    *pending_bytes = 0;
                };
                loop {
                    match rx.recv() {
                        Ok(Msg::Record(record)) => {
                            pending_bytes += record.byte_size();
                            batch.push(record);
                            if batch.len() >= batch_records || pending_bytes >= batch_bytes {
                                flush_batch(&mut batch, &mut pending_bytes);
                            }
                        }
                        Ok(Msg::Flush(ack)) => {
                            flush_batch(&mut batch, &mut pending_bytes);
                            let _ = worker_inner.flush();
                            let _ = ack.send(());
                        }
                        Ok(Msg::Close) | Err(_) => {
                            // Drain records that raced past the Close
                            // sentinel (a writer that loaded `closed ==
                            // false` just before close() swapped it): they
                            // were counted as enqueued, so persist them.
                            while let Ok(msg) = rx.try_recv() {
                                match msg {
                                    Msg::Record(record) => {
                                        pending_bytes += record.byte_size();
                                        batch.push(record);
                                    }
                                    Msg::Flush(ack) => {
                                        let _ = ack.send(());
                                    }
                                    Msg::Close => {}
                                }
                            }
                            flush_batch(&mut batch, &mut pending_bytes);
                            let _ = worker_inner.flush();
                            break;
                        }
                    }
                }
            })
            .expect("spawn log-writer thread");
        ChannelSink {
            tx,
            worker: Mutex::new(Some(worker)),
            counters,
            inner,
            closed: AtomicBool::new(false),
            close_gate: parking_lot::RwLock::new(()),
            overflow: config.overflow,
        }
    }

    /// Convenience: an async batched JSONL file sink.
    ///
    /// # Errors
    ///
    /// Returns [`ExrayError::Io`] on filesystem failures.
    pub fn jsonl(path: &Path, config: ChannelSinkConfig) -> Result<Self> {
        Ok(ChannelSink::new(
            Arc::new(JsonlFileSink::create(path)?),
            config,
        ))
    }

    /// The wrapped sink.
    pub fn inner(&self) -> &Arc<dyn LogSink> {
        &self.inner
    }

    /// Current backpressure accounting.
    pub fn stats(&self) -> SinkBackpressure {
        self.counters.snapshot()
    }

    /// Blocks until every record enqueued before this call is persisted to
    /// the underlying sink (and the underlying sink is flushed).
    ///
    /// # Errors
    ///
    /// Returns [`ExrayError::Format`] if the sink is already closed.
    pub fn flush(&self) -> Result<()> {
        if self.closed.load(Ordering::Acquire) {
            return Err(ExrayError::Format("flush after close".into()));
        }
        let (ack_tx, ack_rx) = mpsc::sync_channel::<()>(1);
        self.tx
            .send(Msg::Flush(ack_tx))
            .map_err(|_| ExrayError::Format("log-writer thread gone".into()))?;
        ack_rx
            .recv()
            .map_err(|_| ExrayError::Format("log-writer thread gone".into()))
    }

    /// Drains outstanding records, stops the writer thread and returns the
    /// final accounting. Safe to call more than once; later calls just
    /// return the (frozen) stats. Writes racing with or arriving after
    /// `close` are either persisted (enqueued before the close sentinel) or
    /// counted as dropped — the accounting stays exact either way.
    pub fn close(&self) -> SinkBackpressure {
        if !self.closed.swap(true, Ordering::AcqRel) {
            // Wait for in-flight writes before emitting the sentinel: any
            // record a racing writer managed to enqueue is now ahead of
            // `Close` in the channel, so the worker persists it. (Blocked
            // writers inside the gate still drain — the worker keeps
            // consuming until it sees `Close`.)
            drop(self.close_gate.write());
            let _ = self.tx.send(Msg::Close);
            if let Some(handle) = self.worker.lock().take() {
                let _ = handle.join();
            }
        }
        self.counters.snapshot()
    }
}

impl Drop for ChannelSink {
    fn drop(&mut self) {
        self.close();
    }
}

impl LogSink for ChannelSink {
    fn write(&self, record: LogRecord) {
        // Take the gate *before* the closed check: close() sets the flag and
        // then waits on the gate's write side, so inside the guard either
        // the flag is visibly set (drop, counted) or the send lands before
        // the Close sentinel (persisted).
        let _in_flight = self.close_gate.read();
        if self.closed.load(Ordering::Acquire) {
            self.counters.dropped.fetch_add(1, Ordering::AcqRel);
            return;
        }
        match self.tx.try_send(Msg::Record(record)) {
            Ok(()) => {
                self.counters.enqueued.fetch_add(1, Ordering::AcqRel);
            }
            Err(TrySendError::Full(msg)) => match self.overflow {
                OverflowPolicy::Block => {
                    self.counters.blocked.fetch_add(1, Ordering::AcqRel);
                    if self.tx.send(msg).is_ok() {
                        self.counters.enqueued.fetch_add(1, Ordering::AcqRel);
                    } else {
                        self.counters.dropped.fetch_add(1, Ordering::AcqRel);
                    }
                }
                OverflowPolicy::DropNewest => {
                    self.counters.dropped.fetch_add(1, Ordering::AcqRel);
                }
            },
            Err(TrySendError::Disconnected(_)) => {
                self.counters.dropped.fetch_add(1, Ordering::AcqRel);
            }
        }
    }

    /// Bytes the *underlying* sink has persisted so far; records still in
    /// flight on the channel are not yet counted.
    fn bytes_written(&self) -> u64 {
        self.inner.bytes_written()
    }

    fn flush(&self) -> Result<()> {
        ChannelSink::flush(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::LogValue;

    fn rec(frame: u64) -> LogRecord {
        LogRecord {
            frame,
            key: "k".into(),
            value: LogValue::Scalar(1.0),
        }
    }

    #[test]
    fn memory_sink_buffers_and_drains() {
        let sink = MemorySink::new();
        sink.write(rec(0));
        sink.write(rec(1));
        assert_eq!(sink.len(), 2);
        assert!(sink.bytes_written() > 0);
        let drained = sink.drain();
        assert_eq!(drained.len(), 2);
        assert!(sink.is_empty());
        assert_eq!(sink.bytes_written(), 0);
    }

    #[test]
    fn memory_sink_len_and_bytes_stay_consistent_under_contention() {
        // Regression: `records` and `bytes` used to live behind two
        // independent mutexes, so a reader could observe bytes for a record
        // that was not yet pushed. With fixed-size records, any consistent
        // snapshot must satisfy bytes == len * record_size exactly.
        let sink = Arc::new(MemorySink::new());
        let record_size = rec(0).byte_size();
        let writers = 4;
        let per_writer = 500;
        std::thread::scope(|scope| {
            for _ in 0..writers {
                let sink = sink.clone();
                scope.spawn(move || {
                    for i in 0..per_writer {
                        sink.write(rec(i));
                    }
                });
            }
            let sink = sink.clone();
            scope.spawn(move || {
                for _ in 0..2000 {
                    let (len, bytes) = sink.len_and_bytes();
                    assert_eq!(
                        bytes,
                        len as u64 * record_size,
                        "records/bytes observed out of sync"
                    );
                }
            });
        });
        let (len, bytes) = sink.len_and_bytes();
        assert_eq!(len, writers * per_writer as usize);
        assert_eq!(bytes, len as u64 * record_size);
    }

    #[test]
    fn jsonl_roundtrip() {
        let dir = std::env::temp_dir().join(format!("mlexray-sink-{}", std::process::id()));
        let path = dir.join("log.jsonl");
        let sink = JsonlFileSink::create(&path).unwrap();
        sink.write(rec(0));
        sink.write(rec(1));
        sink.flush().unwrap();
        let back = JsonlFileSink::read(&path).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[1].frame, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tee_duplicates() {
        let tee = TeeSink::new(MemorySink::new(), MemorySink::new());
        tee.write(rec(0));
        assert_eq!(tee.first().len(), 1);
        assert_eq!(tee.second().len(), 1);
    }

    #[test]
    fn channel_sink_batches_and_drains_on_close() {
        let inner = Arc::new(MemorySink::new());
        let sink = ChannelSink::new(
            inner.clone(),
            ChannelSinkConfig {
                capacity: 8,
                batch_records: 4,
                ..Default::default()
            },
        );
        for i in 0..10 {
            sink.write(rec(i));
        }
        let stats = sink.close();
        assert_eq!(stats.enqueued, 10);
        assert_eq!(stats.dropped, 0);
        assert_eq!(stats.persisted, 10);
        // 10 records at batch_records=4 need at least ceil(10/4) = 3 batches,
        // but the writer may have drained eagerly into smaller batches.
        assert!(stats.batches >= 3, "{stats:?}");
        assert_eq!(inner.len(), 10);
    }

    #[test]
    fn channel_sink_flush_makes_records_visible() {
        let inner = Arc::new(MemorySink::new());
        let sink = ChannelSink::new(
            inner.clone(),
            ChannelSinkConfig {
                batch_records: 1_000_000, // never trigger a count flush
                batch_bytes: u64::MAX,
                ..Default::default()
            },
        );
        sink.write(rec(0));
        sink.write(rec(1));
        sink.flush().unwrap();
        assert_eq!(inner.len(), 2);
        sink.close();
    }

    #[test]
    fn channel_sink_counts_writes_after_close_as_dropped() {
        let inner = Arc::new(MemorySink::new());
        let sink = ChannelSink::new(inner.clone(), ChannelSinkConfig::default());
        sink.close();
        sink.write(rec(0));
        sink.write(rec(1));
        let stats = sink.stats();
        assert_eq!(stats.dropped, 2);
        assert_eq!(stats.enqueued, 0);
        assert_eq!(inner.len(), 0);
    }

    #[test]
    fn channel_sink_drop_newest_sheds_when_full() {
        /// Forwards to a memory sink, but only while the gate is unlocked —
        /// holding the gate stalls the writer thread so the bounded channel
        /// fills deterministically.
        struct GatedSink {
            gate: Mutex<()>,
            inner: MemorySink,
        }
        impl LogSink for GatedSink {
            fn write(&self, record: LogRecord) {
                let _gate = self.gate.lock();
                self.inner.write(record);
            }
            fn bytes_written(&self) -> u64 {
                self.inner.bytes_written()
            }
        }

        let gated = Arc::new(GatedSink {
            gate: Mutex::new(()),
            inner: MemorySink::new(),
        });
        let sink = ChannelSink::new(
            gated.clone(),
            ChannelSinkConfig {
                capacity: 2,
                batch_records: 1,
                overflow: OverflowPolicy::DropNewest,
                ..Default::default()
            },
        );
        let writes = 6u64;
        {
            let _stall = gated.gate.lock();
            // Give the writer time to dequeue at most one record; then at
            // most 2 (channel) + 1 (in the writer's hands) of these fit.
            for i in 0..writes {
                sink.write(rec(i));
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            let stats = sink.stats();
            assert!(stats.dropped >= writes - 3, "{stats:?}");
            assert_eq!(stats.enqueued + stats.dropped, writes, "{stats:?}");
            assert_eq!(stats.blocked, 0, "DropNewest must never block");
        }
        let stats = sink.close();
        assert_eq!(stats.persisted, stats.enqueued, "{stats:?}");
        assert_eq!(gated.inner.len() as u64, stats.enqueued);
    }

    #[test]
    fn channel_sink_jsonl_roundtrip() {
        let dir = std::env::temp_dir().join(format!("mlexray-chsink-{}", std::process::id()));
        let path = dir.join("async.jsonl");
        let sink = ChannelSink::jsonl(&path, ChannelSinkConfig::default()).unwrap();
        for i in 0..5 {
            sink.write(rec(i));
        }
        let stats = sink.close();
        assert_eq!(stats.persisted, 5);
        let back = JsonlFileSink::read(&path).unwrap();
        assert_eq!(back.len(), 5);
        assert!(sink.bytes_written() > 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
