//! The ML-EXray telemetry data model (§3.2): key-value records covering
//! input/output tensors, performance metrics and peripheral sensors.

use serde::{Deserialize, Serialize};

use mlexray_tensor::{Shape, Tensor, TensorStats};

/// Key of the end-to-end inference latency record.
pub const KEY_INFERENCE_LATENCY: &str = "inference/latency_ns";
/// Key of the peak activation-memory record.
pub const KEY_INFERENCE_MEMORY: &str = "inference/peak_activation_bytes";
/// Key of the classification-decision record.
pub const KEY_DECISION: &str = "inference/decision";
/// Key of the preprocessing-stage output tensor.
pub const KEY_PREPROCESS_OUTPUT: &str = "preprocess/output";
/// Key of the model input tensor.
pub const KEY_MODEL_INPUT: &str = "model/input";
/// Key of the model output tensor.
pub const KEY_MODEL_OUTPUT: &str = "model/output";

/// Builds the per-layer output key for a node (name-based so that edge and
/// reference pipelines match layers across graph variants).
pub fn layer_output_key(name: &str) -> String {
    format!("layer/{name}/output")
}

/// Builds the per-layer latency key for a node.
pub fn layer_latency_key(name: &str) -> String {
    format!("layer/{name}/latency_ns")
}

/// A peripheral-sensor reading (§3.2's third telemetry class): context that
/// can explain degraded input quality.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SensorReading {
    /// Device orientation in degrees clockwise from upright.
    Orientation {
        /// 0, 90, 180 or 270 for the four device postures.
        degrees: u16,
    },
    /// Linear acceleration magnitude (shake/motion blur proxy).
    Motion {
        /// m/s².
        magnitude: f32,
    },
    /// Ambient light level.
    AmbientLight {
        /// Lux.
        lux: f32,
    },
}

/// The payload of one log record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LogValue {
    /// A full tensor dump (dequantized to f32) — the offline-validation mode.
    TensorFull {
        /// Tensor shape.
        shape: Shape,
        /// Row-major values.
        values: Vec<f32>,
    },
    /// A compact tensor summary — the cheap runtime mode.
    TensorSummary(TensorStats),
    /// A scalar metric.
    Scalar(f64),
    /// Free-form text.
    Text(String),
    /// A latency measurement.
    LatencyNs(u64),
    /// A byte count (memory, storage).
    Bytes(u64),
    /// A peripheral-sensor reading.
    Sensor(SensorReading),
    /// A classification decision, with the ground-truth label when the frame
    /// came from a labelled playback source.
    Decision {
        /// Argmax class.
        predicted: usize,
        /// Ground truth, if known.
        label: Option<usize>,
    },
}

impl LogValue {
    /// Captures a tensor, fully or as a summary. Quantized tensors are
    /// dequantized so edge logs compare directly against float references.
    pub fn of_tensor(tensor: &Tensor, full: bool) -> LogValue {
        let values = tensor.to_f32_vec();
        if full {
            LogValue::TensorFull {
                shape: tensor.shape().clone(),
                values,
            }
        } else {
            LogValue::TensorSummary(TensorStats::of(&values))
        }
    }

    /// The full values, when this record carries them.
    pub fn values(&self) -> Option<&[f32]> {
        match self {
            LogValue::TensorFull { values, .. } => Some(values),
            _ => None,
        }
    }

    /// The tensor statistics, computed on demand for full dumps.
    pub fn stats(&self) -> Option<TensorStats> {
        match self {
            LogValue::TensorFull { values, .. } => Some(TensorStats::of(values)),
            LogValue::TensorSummary(s) => Some(*s),
            _ => None,
        }
    }

    /// Approximate serialized size in bytes (drives the storage accounting
    /// of Tables 2/3/5).
    pub fn byte_size(&self) -> u64 {
        match self {
            LogValue::TensorFull { values, shape } => (values.len() * 4 + shape.rank() * 8) as u64,
            LogValue::TensorSummary(_) => 24,
            LogValue::Scalar(_) | LogValue::LatencyNs(_) | LogValue::Bytes(_) => 8,
            LogValue::Text(t) => t.len() as u64,
            LogValue::Sensor(_) => 8,
            LogValue::Decision { .. } => 16,
        }
    }
}

/// One telemetry record: frame sequence number, key, payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogRecord {
    /// Frame (inference) sequence number.
    pub frame: u64,
    /// Hierarchical key ("layer/conv1/output", "inference/latency_ns", ...).
    pub key: String,
    /// Payload.
    pub value: LogValue,
}

impl LogRecord {
    /// Approximate serialized size in bytes.
    pub fn byte_size(&self) -> u64 {
        self.key.len() as u64 + 12 + self.value.byte_size()
    }
}

/// An in-memory, queryable collection of log records — what the offline
/// validator consumes from either pipeline.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LogSet {
    records: Vec<LogRecord>,
}

impl LogSet {
    /// Wraps a record list.
    pub fn new(records: Vec<LogRecord>) -> Self {
        LogSet { records }
    }

    /// All records.
    pub fn records(&self) -> &[LogRecord] {
        &self.records
    }

    /// Consumes the set, yielding its records (the sharded replay merge
    /// concatenates per-shard records without cloning).
    pub fn into_records(self) -> Vec<LogRecord> {
        self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of distinct frames.
    pub fn frame_count(&self) -> u64 {
        self.records.iter().map(|r| r.frame + 1).max().unwrap_or(0)
    }

    /// Total approximate byte size of all records.
    pub fn byte_size(&self) -> u64 {
        self.records.iter().map(LogRecord::byte_size).sum()
    }

    /// The record with `key` in `frame`, if any.
    pub fn get(&self, frame: u64, key: &str) -> Option<&LogRecord> {
        self.records
            .iter()
            .find(|r| r.frame == frame && r.key == key)
    }

    /// All records with `key`, ordered by frame.
    pub fn all(&self, key: &str) -> Vec<&LogRecord> {
        let mut v: Vec<&LogRecord> = self.records.iter().filter(|r| r.key == key).collect();
        v.sort_by_key(|r| r.frame);
        v
    }

    /// Distinct keys matching a prefix, in first-seen order (e.g. all
    /// `layer/` keys).
    pub fn keys_with_prefix(&self, prefix: &str) -> Vec<&str> {
        let mut seen = Vec::new();
        for r in &self.records {
            if r.key.starts_with(prefix) && !seen.contains(&r.key.as_str()) {
                seen.push(r.key.as_str());
            }
        }
        seen
    }

    /// Per-frame classification decisions `(frame, predicted, label)`.
    pub fn decisions(&self) -> Vec<(u64, usize, Option<usize>)> {
        self.all(KEY_DECISION)
            .into_iter()
            .filter_map(|r| match r.value {
                LogValue::Decision { predicted, label } => Some((r.frame, predicted, label)),
                _ => None,
            })
            .collect()
    }

    /// Top-1 accuracy over decisions carrying labels, or `None` if no
    /// labelled decisions were logged.
    pub fn accuracy(&self) -> Option<f32> {
        let labelled: Vec<(usize, usize)> = self
            .decisions()
            .into_iter()
            .filter_map(|(_, p, l)| l.map(|l| (p, l)))
            .collect();
        if labelled.is_empty() {
            return None;
        }
        let correct = labelled.iter().filter(|(p, l)| p == l).count();
        Some(correct as f32 / labelled.len() as f32)
    }

    /// End-to-end latencies in ns, ordered by frame.
    pub fn inference_latencies(&self) -> Vec<u64> {
        self.all(KEY_INFERENCE_LATENCY)
            .into_iter()
            .filter_map(|r| match r.value {
                LogValue::LatencyNs(ns) => Some(ns),
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(frame: u64, key: &str, value: LogValue) -> LogRecord {
        LogRecord {
            frame,
            key: key.into(),
            value,
        }
    }

    #[test]
    fn logset_queries() {
        let set = LogSet::new(vec![
            record(0, KEY_INFERENCE_LATENCY, LogValue::LatencyNs(100)),
            record(1, KEY_INFERENCE_LATENCY, LogValue::LatencyNs(200)),
            record(0, "layer/conv1/output", LogValue::Scalar(1.0)),
        ]);
        assert_eq!(set.frame_count(), 2);
        assert_eq!(set.inference_latencies(), vec![100, 200]);
        assert_eq!(set.keys_with_prefix("layer/"), vec!["layer/conv1/output"]);
        assert!(set.get(0, "layer/conv1/output").is_some());
        assert!(set.get(1, "layer/conv1/output").is_none());
    }

    #[test]
    fn accuracy_from_decisions() {
        let set = LogSet::new(vec![
            record(
                0,
                KEY_DECISION,
                LogValue::Decision {
                    predicted: 1,
                    label: Some(1),
                },
            ),
            record(
                1,
                KEY_DECISION,
                LogValue::Decision {
                    predicted: 0,
                    label: Some(1),
                },
            ),
            record(
                2,
                KEY_DECISION,
                LogValue::Decision {
                    predicted: 2,
                    label: None,
                },
            ),
        ]);
        assert_eq!(set.accuracy(), Some(0.5));
        assert_eq!(LogSet::default().accuracy(), None);
    }

    #[test]
    fn tensor_capture_modes() {
        let t = Tensor::from_f32(Shape::vector(3), vec![1.0, 2.0, 3.0]).unwrap();
        let big = Tensor::filled_f32(Shape::vector(64), 0.5);
        let full = LogValue::of_tensor(&t, true);
        assert_eq!(full.values(), Some(&[1.0, 2.0, 3.0][..]));
        let summary = LogValue::of_tensor(&t, false);
        assert!(summary.values().is_none());
        assert_eq!(summary.stats().unwrap().max, 3.0);
        // Full dumps dominate summaries for any non-trivial tensor.
        let big_full = LogValue::of_tensor(&big, true);
        let big_summary = LogValue::of_tensor(&big, false);
        assert!(big_full.byte_size() > big_summary.byte_size());
    }

    #[test]
    fn quantized_tensors_log_dequantized() {
        use mlexray_tensor::QuantParams;
        let t = Tensor::from_f32(Shape::vector(2), vec![0.0, 1.0]).unwrap();
        let q = t
            .quantize_to_u8(&QuantParams::from_min_max_u8(0.0, 1.0))
            .unwrap();
        let v = LogValue::of_tensor(&q, true);
        let vals = v.values().unwrap();
        assert!((vals[1] - 1.0).abs() < 0.01);
    }
}
