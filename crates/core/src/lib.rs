//! # ML-EXray: visibility into ML deployment on the edge
//!
//! The paper's contribution, reproduced in Rust: an end-to-end framework
//! that instruments edge ML inference pipelines at layer-level granularity,
//! replays the same data through a known-correct *reference pipeline*, and
//! compares the two log streams to localize deployment bugs.
//!
//! The three components of §3:
//!
//! 1. **Instrumentation & logging** — [`Monitor`] (the EdgeML Monitor) with
//!    `on_inference_start/stop`, `on_sensor_start/stop`, custom tensor/value
//!    logging and a per-layer [`mlexray_nn::LayerObserver`] hook;
//!    [`LogSink`]s buffer in memory or persist JSONL.
//! 2. **Reference pipelines & playback** — [`ReferencePipeline`] replays
//!    frames through canonical preprocessing and a chosen model variant
//!    under debugging-grade reference kernels. The [`replay`] module shards
//!    the replay-validate loop across worker threads (each with its own
//!    interpreter) and merges per-shard logs and reports deterministically;
//!    [`ChannelSink`] moves log persistence off the inference threads
//!    through a bounded channel into a batching writer thread.
//! 3. **Deployment validation** — [`DeploymentValidator`] drives the Fig. 2
//!    flow: accuracy comparison, per-layer normalized-rMSE drift
//!    ([`per_layer_drift`]), per-layer latency analysis, and a suite of
//!    built-in + user-defined [`Assertion`]s for root-cause analysis. The
//!    §4.4 cross-runtime technique is [`diff_backends`] /
//!    [`diff_image_pipelines`]: two [`mlexray_nn::ExecutionBackend`]s
//!    replay the same frames over the sharded engine, the first divergent
//!    layer is localized from per-layer drift, and a bisection pass
//!    confirms whether the defect is op-local ([`DifferentialReport`]).
//!
//! # Instrumenting an app (≤ 5 LoC, Table 1)
//!
//! ```
//! use mlexray_core::{Monitor, MonitorConfig};
//!
//! let monitor = Monitor::new(MonitorConfig::default());
//! monitor.on_inference_start();
//! // interpreter.invoke_observed(&inputs, &mut monitor.layer_observer())
//! monitor.on_inference_stop();
//! assert_eq!(monitor.frames_logged(), 1);
//! ```
//!
//! # Writing an assertion (≤ 10 LoC, §3.2)
//!
//! ```
//! use mlexray_core::{FnAssertion, ValidationContext};
//!
//! let channel_check = FnAssertion::new("my_check", |ctx: &ValidationContext<'_>| {
//!     if ctx.edge.frame_count() == ctx.reference.frame_count() {
//!         FnAssertion::passed("my_check", "frame counts match")
//!     } else {
//!         FnAssertion::failed("my_check", "pipelines saw different frame counts")
//!     }
//! });
//! ```

#![warn(missing_docs)]

pub mod budget;
mod error;
mod log;
mod monitor;
mod parallel;
mod pipeline;
mod reference;
pub mod replay;
mod sink;
pub mod trace;
mod validate;

pub use budget::{available_cores, machine_parallelism, reserve_cores, reserve_up_to, CoreLease};
pub use error::ExrayError;
pub use log::{
    layer_latency_key, layer_output_key, LogRecord, LogSet, LogValue, SensorReading, KEY_DECISION,
    KEY_INFERENCE_LATENCY, KEY_INFERENCE_MEMORY, KEY_MODEL_INPUT, KEY_MODEL_OUTPUT,
    KEY_PREPROCESS_OUTPUT,
};
pub use monitor::{LayerCapture, Monitor, MonitorConfig, MonitorLayerObserver};
pub use parallel::{
    invoke_batch_parallel, InvokeLayerRecord, ParallelInvoke, ParallelInvokeOptions,
};
pub use pipeline::{
    AudioPipeline, AudioRunner, ImagePipeline, ImageRunner, LabeledFrame, TextPipeline, TextRunner,
};
pub use reference::{collect_logs, ReferencePipeline};
pub use replay::{
    replay_sharded, replay_sharded_to_sink, replay_validate_sharded, shard_partition,
    ReplayOptions, ReplayStats, ShardedValidation,
};
pub use sink::{
    ChannelSink, ChannelSinkConfig, JsonlFileSink, LogSink, MemorySink, OverflowPolicy,
    SinkBackpressure, TeeSink,
};
pub use trace::{
    chrome_trace_json, span_id_for, trace_id_for, trace_report, Span, SpanRing, SpanStage,
    StageBreakdown, Trace, TraceContext, TraceCounters, TraceHub, TraceProfiler,
};
pub use validate::{
    compare_layer_latency, diff_backends, diff_image_pipelines, first_drift_jump, layers_above,
    per_layer_drift, per_layer_latency, stragglers, AccuracyComparison, Assertion,
    AssertionOutcome, AssertionStatus, BisectionOutcome, BisectionVerdict,
    ChannelArrangementAssertion, ConstantOutputAssertion, DecisionTally, DeploymentValidator,
    DifferentialOptions, DifferentialReport, DifferentialVerdict, DivergentLayer, DriftAlarm,
    FnAssertion, LatencyBudgetAssertion, LayerDrift, LayerLatency, MemoryBudgetAssertion,
    NormalizationRangeAssertion, OnlineValidator, OnlineValidatorConfig, OnlineValidatorStats,
    OrientationAssertion, QuantizationDriftAssertion, ResizeFunctionAssertion, ShardValidation,
    StragglerLayerAssertion, ValidationContext, ValidationReport, Verdict,
};

/// Result alias used throughout the core crate.
pub type Result<T> = std::result::Result<T, ExrayError>;
