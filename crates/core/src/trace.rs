//! End-to-end request tracing: a lock-free, bounded span pipeline.
//!
//! The aggregate view ([`crate`]'s monitor + the serve crate's bounded
//! histograms) answers *how slow*; this module answers *where* and *why*.
//! A sampled request carries a [`TraceContext`] from admission (or from
//! the wire) through every serving stage, and each stage emits one typed
//! [`Span`] into a fixed-footprint [`SpanRing`] — the same discipline as
//! the bounded latency histograms: relaxed atomics, no allocation on the
//! hot path, overwrite-oldest with an explicit dropped-span counter,
//! never an unbounded buffer and never a silent loss.
//!
//! ```text
//! emitters (workers, admission, RPC threads)
//!    │ SpanRing::push — atomic claim + 8 relaxed word stores
//!    ▼
//! per-thread SpanRing (2^k slots, seqlock-validated, overwrite-oldest)
//!    │ TraceHub::collect — drains every ring, groups by trace_id
//!    ▼
//! pending traces ──terminal span──▶ completed ring ──▶ Chrome-trace JSON
//!                                        │
//!                                        └──▶ TraceProfiler (per-model,
//!                                             per-stage attribution)
//! ```
//!
//! # Determinism
//!
//! Trace ids ([`trace_id_for`]) and span ids ([`span_id_for`]) are pure
//! functions of the model name, the admission id and the stage — never of
//! wall-clock time or thread identity. The *structure* of a sampled trace
//! (its stage set, ids and parent links — [`Trace::structure`]) is
//! therefore byte-identical across runs and across worker counts; only
//! the timestamps differ.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use serde::Value;

/// Spans are 8 little-endian `u64` words in ring slots — fixed size so the
/// ring footprint is a compile-time function of its capacity.
pub const SPAN_WORDS: usize = 8;

/// Default per-ring capacity (slots). Sizing math: a fully traced request
/// on a ~60-layer model emits ~66 spans; at 1/16 sampling a 4096-slot ring
/// absorbs ~1000 requests between collector drains before overwriting.
pub const DEFAULT_RING_CAPACITY: usize = 4096;

/// Default bound on retained completed traces.
pub const DEFAULT_COMPLETED_CAPACITY: usize = 64;

/// Bound on traces waiting for their terminal span; beyond it the oldest
/// pending trace is evicted (counted, never silently lost).
const PENDING_CAPACITY: usize = 1024;

/// The wire-propagated per-request trace identity: minted at admission or
/// received in the `Infer` frame's v3 trace-context extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// Stable trace identity ([`trace_id_for`] when minted locally).
    pub trace_id: u64,
    /// The caller's span this request continues (`0` = root).
    pub parent_span_id: u64,
    /// Whether spans are recorded for this request. Anomalies (sheds,
    /// deadline misses, drift alarms) force this on regardless of the
    /// sampling clock so they are never unobserved.
    pub sampled: bool,
}

impl TraceContext {
    /// An unsampled context (spans are skipped, identity still travels).
    pub fn unsampled(trace_id: u64) -> Self {
        TraceContext {
            trace_id,
            parent_span_id: 0,
            sampled: false,
        }
    }

    /// A sampled root context.
    pub fn sampled(trace_id: u64) -> Self {
        TraceContext {
            trace_id,
            parent_span_id: 0,
            sampled: true,
        }
    }
}

/// The typed stages of the span taxonomy (`docs/tracing.md`). Wire- and
/// structure-stable: values are only ever appended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum SpanStage {
    /// The root span covering the whole request (admission → reply). Its
    /// arrival completes the trace.
    Request = 1,
    /// RPC frame decode (wire-traced requests only).
    RpcDecode = 2,
    /// Admission control: submit entry → queue push decision.
    Admission = 3,
    /// Queue wait: admission → a worker dequeued the request.
    QueueWait = 4,
    /// Batch formation: dequeue → the leader's coalesce window closed.
    /// `arg_a` = batch size, `arg_b` = the batch leader's request id.
    BatchForm = 5,
    /// The batched `invoke`. `arg_a` = batch size.
    Exec = 6,
    /// One kernel, derived from the `LayerObserver` record. `arg_a` =
    /// layer index, `arg_b` = MACs; `flavor` tags the kernel dispatch.
    Layer = 7,
    /// Drift-check offload (validator observe / differential replay).
    /// `arg_a` = 1 when a drift alarm was raised.
    DriftCheck = 8,
    /// Worker-side reply: execution end → response sent.
    Respond = 9,
    /// RPC response encode + socket write (wire-traced requests only).
    RespondEncode = 10,
    /// The request was shed. `arg_a` = shed code (1 queue-full,
    /// 2 deadline, 3 shutdown, 4 failed), `arg_b` = detail (missed-by ns
    /// for deadline sheds, queue depth for queue-full).
    Shed = 11,
}

impl SpanStage {
    /// Stable lowercase name (Chrome-trace event name, metric label).
    pub fn name(self) -> &'static str {
        match self {
            SpanStage::Request => "request",
            SpanStage::RpcDecode => "rpc_decode",
            SpanStage::Admission => "admission",
            SpanStage::QueueWait => "queue_wait",
            SpanStage::BatchForm => "batch_form",
            SpanStage::Exec => "exec",
            SpanStage::Layer => "layer",
            SpanStage::DriftCheck => "drift_check",
            SpanStage::Respond => "respond",
            SpanStage::RespondEncode => "respond_encode",
            SpanStage::Shed => "shed",
        }
    }

    /// Decodes a wire/ring value.
    pub fn from_u8(value: u8) -> Option<Self> {
        Some(match value {
            1 => SpanStage::Request,
            2 => SpanStage::RpcDecode,
            3 => SpanStage::Admission,
            4 => SpanStage::QueueWait,
            5 => SpanStage::BatchForm,
            6 => SpanStage::Exec,
            7 => SpanStage::Layer,
            8 => SpanStage::DriftCheck,
            9 => SpanStage::Respond,
            10 => SpanStage::RespondEncode,
            11 => SpanStage::Shed,
            _ => return None,
        })
    }
}

/// One typed span: plain data, 64 bytes, no heap — what lands in a ring
/// slot and what a completed [`Trace`] is made of.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// The trace this span belongs to.
    pub trace_id: u64,
    /// This span's id ([`span_id_for`]).
    pub span_id: u64,
    /// Parent span (`0` = the trace root's parent, i.e. none).
    pub parent_span_id: u64,
    /// The stage.
    pub stage: SpanStage,
    /// Kernel-flavor tag for [`SpanStage::Layer`]/[`SpanStage::Exec`]
    /// spans (0 reference, 1 optimized, 2 simd, 3 edge); 0 otherwise.
    pub flavor: u8,
    /// Interned model tag ([`TraceHub::intern_model`]).
    pub model: u16,
    /// Start, nanoseconds since the hub's epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Stage-specific argument (see [`SpanStage`]).
    pub arg_a: u64,
    /// Second stage-specific argument.
    pub arg_b: u64,
}

impl Span {
    fn pack(&self) -> [u64; SPAN_WORDS] {
        let meta = (self.stage as u64) | ((self.flavor as u64) << 8) | ((self.model as u64) << 16);
        [
            self.trace_id,
            self.span_id,
            self.parent_span_id,
            meta,
            self.start_ns,
            self.dur_ns,
            self.arg_a,
            self.arg_b,
        ]
    }

    fn unpack(words: &[u64; SPAN_WORDS]) -> Option<Span> {
        let stage = SpanStage::from_u8((words[3] & 0xFF) as u8)?;
        Some(Span {
            trace_id: words[0],
            span_id: words[1],
            parent_span_id: words[2],
            stage,
            flavor: ((words[3] >> 8) & 0xFF) as u8,
            model: ((words[3] >> 16) & 0xFFFF) as u16,
            start_ns: words[4],
            dur_ns: words[5],
            arg_a: words[6],
            arg_b: words[7],
        })
    }
}

/// Deterministic trace identity: a pure function of the model name and
/// the per-model admission id — byte-identical across runs, worker counts
/// and hosts for the same workload.
pub fn trace_id_for(model: &str, request_id: u64) -> u64 {
    // FNV-1a over the model name, finished through splitmix64 with the
    // request id so consecutive ids land far apart.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in model.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    splitmix64(hash ^ request_id.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Deterministic span identity within a trace: a pure function of the
/// trace id, the stage and a per-stage index (the layer index for
/// [`SpanStage::Layer`], 0 elsewhere).
pub fn span_id_for(trace_id: u64, stage: SpanStage, index: u64) -> u64 {
    splitmix64(trace_id ^ ((stage as u64) << 56) ^ index.wrapping_mul(0xD134_2543_DE82_EF95))
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

struct Slot {
    /// Publication sequence: `index + 1` once the slot holds the span
    /// pushed at `index`; 0 while a writer is mid-store. Readers validate
    /// before *and* after copying the words, so a torn read is detected
    /// and counted dropped instead of surfacing garbage.
    seq: AtomicU64,
    words: [AtomicU64; SPAN_WORDS],
}

/// A fixed-footprint span ring: `2^k` slots, lock-free push (one atomic
/// claim + nine relaxed stores), overwrite-oldest when full. Readers
/// ([`TraceHub::collect`]) detect overwritten and torn slots via the slot
/// sequence and account them to the dropped-span counter — spans are
/// bounded in memory and *counted* when lost, never silently gone.
pub struct SpanRing {
    slots: Box<[Slot]>,
    mask: u64,
    /// Total spans ever pushed (the claim counter).
    head: AtomicU64,
}

impl std::fmt::Debug for SpanRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanRing")
            .field("capacity", &self.slots.len())
            .field("pushed", &self.head.load(Ordering::Acquire))
            .finish()
    }
}

impl SpanRing {
    /// A ring with `capacity` slots (rounded up to a power of two, min 8).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(8).next_power_of_two();
        let slots = (0..capacity)
            .map(|_| Slot {
                seq: AtomicU64::new(0),
                words: std::array::from_fn(|_| AtomicU64::new(0)),
            })
            .collect();
        SpanRing {
            slots,
            mask: capacity as u64 - 1,
            head: AtomicU64::new(0),
        }
    }

    /// Slot count.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total spans ever pushed.
    pub fn pushed(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// The ring's constant memory footprint in bytes — independent of how
    /// many spans have passed through (the serve figure asserts this stays
    /// byte-identical across 100k+ requests).
    pub fn footprint_bytes(&self) -> usize {
        size_of::<Self>() + self.slots.len() * size_of::<Slot>()
    }

    /// Pushes one span; never blocks, never allocates, never fails — when
    /// the ring is full the oldest un-drained span is overwritten and the
    /// collector accounts it dropped.
    pub fn push(&self, span: &Span) {
        let index = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(index & self.mask) as usize];
        // Claim: readers seeing 0 skip the slot.
        slot.seq.store(0, Ordering::Release);
        for (word, value) in slot.words.iter().zip(span.pack()) {
            word.store(value, Ordering::Relaxed);
        }
        // Publish.
        slot.seq.store(index + 1, Ordering::Release);
    }

    /// Drains spans pushed since `cursor` into `out`. Returns the new
    /// cursor and how many spans were dropped (overwritten before this
    /// drain, or torn by a concurrent wrap-around writer).
    pub fn drain_from(&self, cursor: u64, out: &mut Vec<Span>) -> (u64, u64) {
        let head = self.head.load(Ordering::Acquire);
        let capacity = self.slots.len() as u64;
        let start = cursor.max(head.saturating_sub(capacity));
        let mut dropped = start - cursor;
        for index in start..head {
            let slot = &self.slots[(index & self.mask) as usize];
            if slot.seq.load(Ordering::Acquire) != index + 1 {
                dropped += 1;
                continue;
            }
            let mut words = [0u64; SPAN_WORDS];
            for (value, word) in words.iter_mut().zip(slot.words.iter()) {
                *value = word.load(Ordering::Relaxed);
            }
            // Re-validate: a writer lapping us mid-copy bumps (or zeroes)
            // the sequence, exposing the tear.
            if slot.seq.load(Ordering::Acquire) != index + 1 {
                dropped += 1;
                continue;
            }
            match Span::unpack(&words) {
                Some(span) => out.push(span),
                None => dropped += 1,
            }
        }
        (head, dropped)
    }
}

/// A completed trace: every span observed for one `trace_id`, sorted by
/// deterministic span id (structure order, not time order).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// The trace identity.
    pub trace_id: u64,
    /// Model name (resolved from the interned tag of the root span).
    pub model: String,
    /// The spans, sorted by `(stage, span_id)`.
    pub spans: Vec<Span>,
}

impl Trace {
    /// The root [`SpanStage::Request`] span.
    pub fn root(&self) -> Option<&Span> {
        self.spans.iter().find(|s| s.stage == SpanStage::Request)
    }

    /// The first span of `stage`, if present.
    pub fn stage(&self, stage: SpanStage) -> Option<&Span> {
        self.spans.iter().find(|s| s.stage == stage)
    }

    /// Sum of durations over spans of `stage`.
    pub fn stage_ns(&self, stage: SpanStage) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.stage == stage)
            .map(|s| s.dur_ns)
            .sum()
    }

    /// The timestamp-free structural rendering the determinism suite
    /// compares byte-for-byte: stage names, ids, parent links, model and
    /// flavor tags and the stage args that are workload-determined (layer
    /// index / MACs) — everything except wall-clock timestamps and
    /// scheduling-dependent batch geometry.
    pub fn structure(&self) -> String {
        let mut out = format!("trace {:016x} model {}\n", self.trace_id, self.model);
        for span in &self.spans {
            let (arg_a, arg_b) = match span.stage {
                // Batch size and leader id depend on how requests happened
                // to coalesce — scheduling, not structure.
                SpanStage::BatchForm | SpanStage::Exec | SpanStage::Request => (0, 0),
                // Missed-by ns / queue depth are timing artifacts.
                SpanStage::Shed => (span.arg_a, 0),
                _ => (span.arg_a, span.arg_b),
            };
            out.push_str(&format!(
                "  {} id {:016x} parent {:016x} flavor {} arg_a {} arg_b {}\n",
                span.stage.name(),
                span.span_id,
                span.parent_span_id,
                span.flavor,
                arg_a,
                arg_b,
            ));
        }
        out
    }
}

/// Per-model, per-stage latency attribution folded from completed traces
/// — the online answer to "where did the p99 go": queue wait vs batch
/// formation vs execution vs per-layer kernels.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StageBreakdown {
    /// Completed request traces folded in.
    pub traces: u64,
    /// Shed traces folded in.
    pub sheds: u64,
    /// Total admission-span nanoseconds.
    pub admission_ns: u64,
    /// Total queue-wait nanoseconds.
    pub queue_ns: u64,
    /// Total batch-formation nanoseconds.
    pub batch_wait_ns: u64,
    /// Total execution nanoseconds.
    pub exec_ns: u64,
    /// Total worker-respond nanoseconds.
    pub respond_ns: u64,
    /// Total root-span (end-to-end) nanoseconds.
    pub total_ns: u64,
    /// Per-layer kernel nanoseconds, by layer index.
    pub per_layer_ns: BTreeMap<u32, u64>,
}

impl StageBreakdown {
    fn fold(&mut self, trace: &Trace) {
        if trace.stage(SpanStage::Shed).is_some() {
            self.sheds += 1;
        } else {
            self.traces += 1;
        }
        self.admission_ns += trace.stage_ns(SpanStage::Admission);
        self.queue_ns += trace.stage_ns(SpanStage::QueueWait);
        self.batch_wait_ns += trace.stage_ns(SpanStage::BatchForm);
        self.exec_ns += trace.stage_ns(SpanStage::Exec);
        self.respond_ns += trace.stage_ns(SpanStage::Respond);
        self.total_ns += trace.stage_ns(SpanStage::Request);
        for span in trace.spans.iter().filter(|s| s.stage == SpanStage::Layer) {
            *self.per_layer_ns.entry(span.arg_a as u32).or_insert(0) += span.dur_ns;
        }
    }

    /// The `k` hottest layers as `(layer_index, total_ns)`, hottest first.
    pub fn top_layers(&self, k: usize) -> Vec<(u32, u64)> {
        let mut layers: Vec<(u32, u64)> = self
            .per_layer_ns
            .iter()
            .map(|(index, ns)| (*index, *ns))
            .collect();
        layers.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        layers.truncate(k);
        layers
    }
}

/// The latency-attribution profiler: folds every completed trace into a
/// per-model [`StageBreakdown`].
#[derive(Debug, Clone, Default)]
pub struct TraceProfiler {
    per_model: BTreeMap<String, StageBreakdown>,
}

impl TraceProfiler {
    /// Folds one completed trace.
    pub fn fold(&mut self, trace: &Trace) {
        self.per_model
            .entry(trace.model.clone())
            .or_default()
            .fold(trace);
    }

    /// The per-model breakdowns, sorted by model name.
    pub fn breakdowns(&self) -> impl Iterator<Item = (&str, &StageBreakdown)> {
        self.per_model.iter().map(|(name, b)| (name.as_str(), b))
    }

    /// One model's breakdown.
    pub fn model(&self, name: &str) -> Option<&StageBreakdown> {
        self.per_model.get(name)
    }
}

/// Renders a profiler as the `trace_report` attribution table: one row
/// per model with mean per-stage latencies and the top-`k` layers.
pub fn trace_report(profiler: &TraceProfiler, top_k: usize) -> String {
    let mut out = String::from(
        "model                        traces  sheds  queue(ms)  batch(ms)  exec(ms)  total(ms)  top layers (idx:ms)\n",
    );
    for (model, b) in profiler.breakdowns() {
        let n = b.traces.max(1) as f64;
        let ms = |ns: u64| ns as f64 / n / 1e6;
        let layers = b
            .top_layers(top_k)
            .iter()
            .map(|(idx, ns)| format!("{idx}:{:.3}", *ns as f64 / n / 1e6))
            .collect::<Vec<_>>()
            .join(" ");
        out.push_str(&format!(
            "{model:<28} {:>6} {:>6} {:>10.3} {:>10.3} {:>9.3} {:>10.3}  {layers}\n",
            b.traces,
            b.sheds,
            ms(b.queue_ns),
            ms(b.batch_wait_ns),
            ms(b.exec_ns),
            ms(b.total_ns),
        ));
    }
    out
}

struct CollectorState {
    /// Drain cursor per registered ring (parallel to `TraceHub::rings`).
    cursors: Vec<u64>,
    pending: BTreeMap<u64, Vec<Span>>,
    /// First-seen order of pending trace ids, for bounded eviction.
    order: VecDeque<u64>,
    completed: VecDeque<Trace>,
    profiler: TraceProfiler,
    scratch: Vec<Span>,
}

/// Counter snapshot of a hub ([`TraceHub::counters`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceCounters {
    /// Requests sampled by the every-Nth clock.
    pub sampled: u64,
    /// Anomalies force-sampled (sheds, deadline misses, drift alarms).
    pub forced: u64,
    /// Traces completed (terminal span observed).
    pub completed: u64,
    /// Spans dropped: overwritten in a ring before collection, torn by a
    /// wrap-around race, or evicted with an incomplete pending trace.
    pub dropped_spans: u64,
    /// Pending traces evicted before their terminal span arrived.
    pub evicted_traces: u64,
}

/// The span pipeline's shared half: hands emitters their rings, drains
/// them into complete traces, folds the profiler and exports Chrome-trace
/// JSON. One hub per [`InferenceService`](../../mlexray_serve) instance.
pub struct TraceHub {
    epoch: Instant,
    ring_capacity: usize,
    completed_capacity: usize,
    rings: Mutex<Vec<Arc<SpanRing>>>,
    /// Ring 0, shared by threads that emit rarely (admission sheds, RPC
    /// decode/encode, drift checks) — multi-writer pushes are safe, the
    /// claim counter serializes slot ownership.
    shared: Arc<SpanRing>,
    models: Mutex<Vec<String>>,
    state: Mutex<CollectorState>,
    sampled: AtomicU64,
    forced: AtomicU64,
    completed_total: AtomicU64,
    dropped: AtomicU64,
    evicted: AtomicU64,
}

impl std::fmt::Debug for TraceHub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceHub")
            .field("rings", &self.rings.lock().len())
            .field("counters", &self.counters())
            .finish_non_exhaustive()
    }
}

impl TraceHub {
    /// A hub whose rings hold `ring_capacity` spans each and whose
    /// completed-trace store holds `completed_capacity` traces.
    pub fn new(ring_capacity: usize, completed_capacity: usize) -> Self {
        let shared = Arc::new(SpanRing::new(ring_capacity));
        TraceHub {
            epoch: Instant::now(),
            ring_capacity,
            completed_capacity: completed_capacity.max(1),
            rings: Mutex::new(vec![shared.clone()]),
            shared,
            models: Mutex::new(Vec::new()),
            state: Mutex::new(CollectorState {
                cursors: Vec::new(),
                pending: BTreeMap::new(),
                order: VecDeque::new(),
                completed: VecDeque::new(),
                profiler: TraceProfiler::default(),
                scratch: Vec::new(),
            }),
            sampled: AtomicU64::new(0),
            forced: AtomicU64::new(0),
            completed_total: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
        }
    }

    /// Nanoseconds from the hub's epoch to `instant` (saturating at 0 for
    /// instants before the epoch).
    pub fn ns_of(&self, instant: Instant) -> u64 {
        instant
            .checked_duration_since(self.epoch)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0)
    }

    /// Nanoseconds from the hub's epoch to now.
    pub fn now_ns(&self) -> u64 {
        self.ns_of(Instant::now())
    }

    /// Registers a fresh per-thread ring (worker threads call this once at
    /// spawn; registration allocates, pushes never do).
    pub fn register_ring(&self) -> Arc<SpanRing> {
        let ring = Arc::new(SpanRing::new(self.ring_capacity));
        self.rings.lock().push(ring.clone());
        ring
    }

    /// The shared ring for threads that emit rarely (admission-shed,
    /// RPC decode/encode, drift-check spans).
    pub fn shared_ring(&self) -> &Arc<SpanRing> {
        &self.shared
    }

    /// Interns a model name, returning its stable span tag. Tag order
    /// follows interning order (model-map order at service start), so
    /// tags are deterministic for a deterministic model set.
    pub fn intern_model(&self, name: &str) -> u16 {
        let mut models = self.models.lock();
        if let Some(index) = models.iter().position(|m| m == name) {
            return index as u16;
        }
        models.push(name.to_string());
        (models.len() - 1) as u16
    }

    /// Resolves an interned tag back to the model name.
    pub fn model_name(&self, tag: u16) -> String {
        self.models
            .lock()
            .get(tag as usize)
            .cloned()
            .unwrap_or_else(|| format!("model#{tag}"))
    }

    /// Account one sampling-clock hit.
    pub fn note_sampled(&self) {
        self.sampled.fetch_add(1, Ordering::Relaxed);
    }

    /// Account one force-sampled anomaly.
    pub fn note_forced(&self) {
        self.forced.fetch_add(1, Ordering::Relaxed);
    }

    /// Counter snapshot.
    pub fn counters(&self) -> TraceCounters {
        TraceCounters {
            sampled: self.sampled.load(Ordering::Acquire),
            forced: self.forced.load(Ordering::Acquire),
            completed: self.completed_total.load(Ordering::Acquire),
            dropped_spans: self.dropped.load(Ordering::Acquire),
            evicted_traces: self.evicted.load(Ordering::Acquire),
        }
    }

    /// The pipeline's total ring footprint in bytes: constant once every
    /// emitter thread has registered, however many spans flow through.
    pub fn footprint_bytes(&self) -> usize {
        self.rings.lock().iter().map(|r| r.footprint_bytes()).sum()
    }

    /// Drains every ring, groups spans into pending traces, and promotes
    /// traces whose terminal [`SpanStage::Request`] span arrived into the
    /// bounded completed store. All spans drained in one pass attach
    /// before completion is decided, so intra-pass arrival order does not
    /// matter.
    pub fn collect(&self) {
        let rings: Vec<Arc<SpanRing>> = self.rings.lock().clone();
        let mut state = self.state.lock();
        state.cursors.resize(rings.len(), 0);
        let mut spans = std::mem::take(&mut state.scratch);
        spans.clear();
        let mut dropped = 0u64;
        for (ring, cursor) in rings.iter().zip(state.cursors.iter_mut()) {
            let (next, lost) = ring.drain_from(*cursor, &mut spans);
            *cursor = next;
            dropped += lost;
        }
        if dropped > 0 {
            self.dropped.fetch_add(dropped, Ordering::AcqRel);
        }
        let mut terminal: Vec<u64> = Vec::new();
        for span in spans.drain(..) {
            let id = span.trace_id;
            let fresh = !state.pending.contains_key(&id);
            if fresh {
                state.order.push_back(id);
            }
            state.pending.entry(id).or_default().push(span);
            if span.stage == SpanStage::Request {
                terminal.push(id);
            }
        }
        state.scratch = spans;
        for id in terminal {
            let Some(mut trace_spans) = state.pending.remove(&id) else {
                continue;
            };
            state.order.retain(|t| *t != id);
            trace_spans.sort_by_key(|s| (s.stage, s.span_id, s.start_ns));
            trace_spans.dedup_by_key(|s| (s.stage, s.span_id, s.start_ns, s.dur_ns));
            let model_tag = trace_spans
                .iter()
                .find(|s| s.stage == SpanStage::Request)
                .map(|s| s.model)
                .unwrap_or(0);
            let trace = Trace {
                trace_id: id,
                model: self.model_name(model_tag),
                spans: trace_spans,
            };
            state.profiler.fold(&trace);
            state.completed.push_back(trace);
            self.completed_total.fetch_add(1, Ordering::AcqRel);
            while state.completed.len() > self.completed_capacity {
                state.completed.pop_front();
            }
        }
        // Bound the pending store: a trace that never terminates (its
        // terminal span was overwritten) must not leak — evict oldest,
        // counting both the trace and its spans as dropped.
        while state.pending.len() > PENDING_CAPACITY {
            let Some(oldest) = state.order.pop_front() else {
                break;
            };
            if let Some(spans) = state.pending.remove(&oldest) {
                self.evicted.fetch_add(1, Ordering::AcqRel);
                self.dropped.fetch_add(spans.len() as u64, Ordering::AcqRel);
            }
        }
    }

    /// Collects, then takes up to `max` most-recent completed traces
    /// (oldest first; `max == 0` means all currently retained).
    pub fn take_completed(&self, max: usize) -> Vec<Trace> {
        self.collect();
        let mut state = self.state.lock();
        let keep = if max == 0 {
            0
        } else {
            state.completed.len().saturating_sub(max)
        };
        let taken: Vec<Trace> = state.completed.drain(keep..).collect();
        taken
    }

    /// Collects, then clones the per-model attribution profiler.
    pub fn profile(&self) -> TraceProfiler {
        self.collect();
        self.state.lock().profiler.clone()
    }
}

/// Renders traces as Chrome-trace-format JSON (the "JSON Array Format"
/// with a `traceEvents` wrapper) loadable by `chrome://tracing` and
/// Perfetto. Timestamps are microseconds (`ts`/`dur` floats), events are
/// complete (`"ph":"X"`); the trace id becomes the `tid` so one request's
/// spans share a track, and the model name the `pid` row.
pub fn chrome_trace_json(traces: &[Trace]) -> String {
    let mut events = Vec::new();
    for trace in traces {
        for span in &trace.spans {
            let mut args = vec![
                (
                    "trace_id".to_string(),
                    Value::String(format!("{:016x}", span.trace_id)),
                ),
                (
                    "span_id".to_string(),
                    Value::String(format!("{:016x}", span.span_id)),
                ),
                (
                    "parent_span_id".to_string(),
                    Value::String(format!("{:016x}", span.parent_span_id)),
                ),
                ("flavor".to_string(), Value::UInt(u64::from(span.flavor))),
                ("arg_a".to_string(), Value::UInt(span.arg_a)),
                ("arg_b".to_string(), Value::UInt(span.arg_b)),
            ];
            if span.stage == SpanStage::Layer {
                args.push(("layer".to_string(), Value::UInt(span.arg_a)));
            }
            events.push(Value::Object(vec![
                ("name".to_string(), Value::String(span.stage.name().into())),
                ("cat".to_string(), Value::String("serve".into())),
                ("ph".to_string(), Value::String("X".into())),
                (
                    "ts".to_string(),
                    Value::Float(span.start_ns as f64 / 1_000.0),
                ),
                (
                    "dur".to_string(),
                    Value::Float(span.dur_ns as f64 / 1_000.0),
                ),
                ("pid".to_string(), Value::String(trace.model.clone())),
                (
                    "tid".to_string(),
                    Value::String(format!("{:016x}", span.trace_id)),
                ),
                ("args".to_string(), Value::Object(args)),
            ]));
        }
    }
    let document = Value::Object(vec![
        ("traceEvents".to_string(), Value::Array(events)),
        (
            "displayTimeUnit".to_string(),
            Value::String("ms".to_string()),
        ),
    ]);
    serde_json::to_string(&document).expect("trace document serializes")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(trace_id: u64, stage: SpanStage, index: u64) -> Span {
        Span {
            trace_id,
            span_id: span_id_for(trace_id, stage, index),
            parent_span_id: span_id_for(trace_id, SpanStage::Request, 0),
            stage,
            flavor: 1,
            model: 3,
            start_ns: 100 + index,
            dur_ns: 50,
            arg_a: index,
            arg_b: 7,
        }
    }

    #[test]
    fn span_words_round_trip() {
        let original = span(0xDEAD_BEEF, SpanStage::Layer, 12);
        let unpacked = Span::unpack(&original.pack()).expect("valid stage");
        assert_eq!(unpacked, original);
        assert!(Span::unpack(&[0, 0, 0, 0xF0, 0, 0, 0, 0]).is_none());
    }

    #[test]
    fn ids_are_deterministic_and_distinct() {
        assert_eq!(trace_id_for("m", 7), trace_id_for("m", 7));
        assert_ne!(trace_id_for("m", 7), trace_id_for("m", 8));
        assert_ne!(trace_id_for("m", 7), trace_id_for("n", 7));
        let t = trace_id_for("m", 7);
        assert_ne!(
            span_id_for(t, SpanStage::Exec, 0),
            span_id_for(t, SpanStage::Layer, 0)
        );
        assert_ne!(
            span_id_for(t, SpanStage::Layer, 0),
            span_id_for(t, SpanStage::Layer, 1)
        );
    }

    #[test]
    fn ring_drains_in_order() {
        let ring = SpanRing::new(16);
        for i in 0..10 {
            ring.push(&span(1, SpanStage::Layer, i));
        }
        let mut out = Vec::new();
        let (cursor, dropped) = ring.drain_from(0, &mut out);
        assert_eq!(cursor, 10);
        assert_eq!(dropped, 0);
        assert_eq!(out.len(), 10);
        assert_eq!(out[3].arg_a, 3);
        // Nothing new: a second drain is empty.
        let (cursor, dropped) = ring.drain_from(cursor, &mut out);
        assert_eq!((cursor, dropped), (10, 0));
        assert_eq!(out.len(), 10);
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let ring = SpanRing::new(8);
        let before = ring.footprint_bytes();
        for i in 0..100 {
            ring.push(&span(1, SpanStage::Layer, i));
        }
        assert_eq!(
            ring.footprint_bytes(),
            before,
            "ring footprint must not grow with span count"
        );
        let mut out = Vec::new();
        let (cursor, dropped) = ring.drain_from(0, &mut out);
        assert_eq!(cursor, 100);
        assert_eq!(dropped, 92, "100 pushed into 8 slots → 92 overwritten");
        assert_eq!(out.len(), 8);
        // The survivors are the newest 8, in push order.
        assert_eq!(out[0].arg_a, 92);
        assert_eq!(out[7].arg_a, 99);
        assert_eq!(out.len() as u64 + dropped, ring.pushed());
    }

    #[test]
    fn ring_capacity_rounds_to_power_of_two() {
        assert_eq!(SpanRing::new(0).capacity(), 8);
        assert_eq!(SpanRing::new(100).capacity(), 128);
        assert_eq!(SpanRing::new(4096).capacity(), 4096);
    }

    fn emit_request_chain(hub: &TraceHub, ring: &SpanRing, model: &str, request_id: u64) -> u64 {
        let trace_id = trace_id_for(model, request_id);
        let tag = hub.intern_model(model);
        let root = span_id_for(trace_id, SpanStage::Request, 0);
        for (stage, dur) in [
            (SpanStage::Admission, 10),
            (SpanStage::QueueWait, 1000),
            (SpanStage::BatchForm, 300),
            (SpanStage::Exec, 5000),
            (SpanStage::Respond, 20),
        ] {
            ring.push(&Span {
                trace_id,
                span_id: span_id_for(trace_id, stage, 0),
                parent_span_id: root,
                stage,
                flavor: 1,
                model: tag,
                start_ns: 0,
                dur_ns: dur,
                arg_a: 0,
                arg_b: 0,
            });
        }
        ring.push(&Span {
            trace_id,
            span_id: root,
            parent_span_id: 0,
            stage: SpanStage::Request,
            flavor: 0,
            model: tag,
            start_ns: 0,
            dur_ns: 6330,
            arg_a: 0,
            arg_b: 0,
        });
        trace_id
    }

    #[test]
    fn hub_assembles_completed_traces_and_profiles() {
        let hub = TraceHub::new(64, 8);
        let ring = hub.register_ring();
        let t1 = emit_request_chain(&hub, &ring, "m", 1);
        let t2 = emit_request_chain(&hub, &ring, "m", 2);
        // An incomplete trace (no terminal span) stays pending.
        ring.push(&span(trace_id_for("m", 3), SpanStage::QueueWait, 0));
        let traces = hub.take_completed(0);
        assert_eq!(traces.len(), 2);
        assert_eq!(traces[0].trace_id, t1);
        assert_eq!(traces[1].trace_id, t2);
        assert_eq!(traces[0].model, "m");
        assert_eq!(traces[0].spans.len(), 6);
        assert_eq!(traces[0].stage_ns(SpanStage::Exec), 5000);
        let profile = hub.profile();
        let breakdown = profile.model("m").expect("model profiled");
        assert_eq!(breakdown.traces, 2);
        assert_eq!(breakdown.queue_ns, 2000);
        assert_eq!(breakdown.exec_ns, 10000);
        assert_eq!(breakdown.total_ns, 12660);
        assert_eq!(hub.counters().completed, 2);
        // take_completed drains: a second take returns nothing new.
        assert!(hub.take_completed(0).is_empty());
    }

    #[test]
    fn hub_counts_ring_overwrites_as_dropped() {
        let hub = TraceHub::new(8, 4);
        let ring = hub.register_ring();
        for i in 0..50 {
            ring.push(&span(trace_id_for("m", i), SpanStage::QueueWait, 0));
        }
        hub.collect();
        assert_eq!(hub.counters().dropped_spans, 42);
    }

    #[test]
    fn completed_store_is_bounded() {
        let hub = TraceHub::new(1 << 12, 4);
        let ring = hub.register_ring();
        for i in 0..20 {
            emit_request_chain(&hub, &ring, "m", i);
        }
        let traces = hub.take_completed(0);
        assert_eq!(traces.len(), 4, "completed store keeps the newest 4");
        assert_eq!(hub.counters().completed, 20);
        assert_eq!(traces[3].trace_id, trace_id_for("m", 19));
    }

    #[test]
    fn take_completed_respects_max() {
        let hub = TraceHub::new(1 << 12, 16);
        let ring = hub.register_ring();
        for i in 0..10 {
            emit_request_chain(&hub, &ring, "m", i);
        }
        let traces = hub.take_completed(3);
        assert_eq!(traces.len(), 3);
        assert_eq!(traces[2].trace_id, trace_id_for("m", 9));
        // The untaken 7 remain for the next take.
        assert_eq!(hub.take_completed(0).len(), 7);
    }

    #[test]
    fn structure_is_timestamp_free() {
        let hub = TraceHub::new(64, 8);
        let ring = hub.register_ring();
        emit_request_chain(&hub, &ring, "m", 1);
        let a = hub.take_completed(0).remove(0);
        // Same chain, different timestamps.
        let hub2 = TraceHub::new(64, 8);
        let ring2 = hub2.register_ring();
        let trace_id = trace_id_for("m", 1);
        let tag = hub2.intern_model("m");
        let root = span_id_for(trace_id, SpanStage::Request, 0);
        for (stage, dur, start) in [
            (SpanStage::Admission, 99, 7),
            (SpanStage::QueueWait, 1, 70),
            (SpanStage::BatchForm, 2, 700),
            (SpanStage::Exec, 3, 7000),
            (SpanStage::Respond, 4, 70000),
            (SpanStage::Request, 5, 0),
        ] {
            ring2.push(&Span {
                trace_id,
                span_id: span_id_for(trace_id, stage, 0),
                parent_span_id: if stage == SpanStage::Request { 0 } else { root },
                stage,
                flavor: if stage == SpanStage::Request { 0 } else { 1 },
                model: tag,
                start_ns: start,
                dur_ns: dur,
                arg_a: 0,
                arg_b: 0,
            });
        }
        let b = hub2.take_completed(0).remove(0);
        assert_eq!(a.structure(), b.structure());
    }

    #[test]
    fn chrome_export_parses_and_carries_every_span() {
        let hub = TraceHub::new(64, 8);
        let ring = hub.register_ring();
        emit_request_chain(&hub, &ring, "mini_mobilenet_v2", 1);
        let traces = hub.take_completed(0);
        let json = chrome_trace_json(&traces);
        let value: Value = serde_json::parse_value(&json).expect("chrome trace JSON parses");
        let events = match value.get("traceEvents") {
            Some(Value::Array(events)) => events,
            other => panic!("expected traceEvents array, got {other:?}"),
        };
        assert_eq!(events.len(), 6);
        for event in events {
            for key in ["name", "cat", "ph", "ts", "dur", "pid", "tid", "args"] {
                assert!(event.get(key).is_some(), "event missing {key}: {event:?}");
            }
            assert_eq!(event.get("ph"), Some(&Value::String("X".into())));
        }
        let names: Vec<&Value> = events.iter().filter_map(|e| e.get("name")).collect();
        assert!(names.contains(&&Value::String("queue_wait".into())));
        assert!(names.contains(&&Value::String("request".into())));
    }

    #[test]
    fn trace_report_renders_per_model_rows() {
        let hub = TraceHub::new(1 << 10, 8);
        let ring = hub.register_ring();
        emit_request_chain(&hub, &ring, "m", 1);
        let profile = hub.profile();
        let report = trace_report(&profile, 3);
        assert!(report.contains("m"));
        assert!(report.lines().count() >= 2);
    }

    #[test]
    fn concurrent_pushes_never_lose_accounting() {
        let hub = Arc::new(TraceHub::new(256, 8));
        let mut handles = Vec::new();
        for thread in 0..4u64 {
            let hub = hub.clone();
            handles.push(std::thread::spawn(move || {
                let ring = hub.register_ring();
                for i in 0..5_000u64 {
                    ring.push(&Span {
                        trace_id: trace_id_for("m", thread * 10_000 + i),
                        span_id: 1,
                        parent_span_id: 0,
                        stage: SpanStage::QueueWait,
                        flavor: 0,
                        model: 0,
                        start_ns: i,
                        dur_ns: 1,
                        arg_a: 0,
                        arg_b: 0,
                    });
                }
            }));
        }
        for handle in handles {
            handle.join().unwrap();
        }
        hub.collect();
        let counters = hub.counters();
        // Pending traces hold the drained spans (bounded): eviction keeps
        // the pending store at its cap, and drained + dropped accounts for
        // every push.
        let pending_spans: u64 = {
            // 20k pushes, 4 rings of 256: most are overwritten.
            counters.dropped_spans
        };
        assert!(pending_spans >= 20_000 - 4 * 256 - 1024);
    }
}
