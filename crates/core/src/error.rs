use std::fmt;

use mlexray_nn::NnError;
use mlexray_preprocess::PreprocessError;
use mlexray_tensor::TensorError;

/// Errors produced by the ML-EXray framework.
#[derive(Debug)]
pub enum ExrayError {
    /// Preprocessing failed.
    Preprocess(PreprocessError),
    /// Model execution failed.
    Nn(NnError),
    /// Tensor-level failure.
    Tensor(TensorError),
    /// Validation was asked to compare incompatible logs.
    Validation(String),
    /// I/O failure (log persistence).
    Io(std::io::Error),
    /// Log (de)serialization failure.
    Format(String),
}

impl fmt::Display for ExrayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExrayError::Preprocess(e) => write!(f, "preprocess: {e}"),
            ExrayError::Nn(e) => write!(f, "model execution: {e}"),
            ExrayError::Tensor(e) => write!(f, "tensor: {e}"),
            ExrayError::Validation(msg) => write!(f, "validation: {msg}"),
            ExrayError::Io(e) => write!(f, "i/o: {e}"),
            ExrayError::Format(msg) => write!(f, "format: {msg}"),
        }
    }
}

impl std::error::Error for ExrayError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExrayError::Preprocess(e) => Some(e),
            ExrayError::Nn(e) => Some(e),
            ExrayError::Tensor(e) => Some(e),
            ExrayError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PreprocessError> for ExrayError {
    fn from(e: PreprocessError) -> Self {
        ExrayError::Preprocess(e)
    }
}

impl From<NnError> for ExrayError {
    fn from(e: NnError) -> Self {
        ExrayError::Nn(e)
    }
}

impl From<TensorError> for ExrayError {
    fn from(e: TensorError) -> Self {
        ExrayError::Tensor(e)
    }
}
