//! Sharded parallel replay-validate: the monitor-replay-validate loop of
//! the paper, scaled across cores.
//!
//! The single-threaded flow ([`crate::ReferencePipeline::replay`] +
//! [`crate::DeploymentValidator::validate`]) costs N sequential inferences
//! for an N-frame playback set. This module partitions the playback source
//! into fixed-size frame shards, feeds them through a small bounded SPMC
//! work queue to `std::thread` workers — each owning its *own*
//! [`mlexray_nn::Interpreter`] instances, so no kernel state is shared —
//! and merges the per-shard results deterministically.
//!
//! # Determinism
//!
//! The shard partition depends only on the frame count and
//! [`ReplayOptions::shard_frames`], never on the worker count. Workers pull
//! shards dynamically, but every shard's result carries its start frame and
//! the merge sorts by it, so the merged [`LogSet`] (excluding wall-clock
//! latency values) and the merged [`ValidationReport`] are identical for
//! `workers = 1, 2, 4, ...` over the same partition.

use std::collections::VecDeque;
use std::ops::Range;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::log::{LogRecord, LogSet};
use crate::monitor::{Monitor, MonitorConfig};
use crate::pipeline::{ImagePipeline, ImageRunner, LabeledFrame};
use crate::reference::ReferencePipeline;
use crate::sink::LogSink;
use crate::validate::{DeploymentValidator, ShardValidation, ValidationReport};
use crate::Result;

/// Tuning for a sharded replay run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayOptions {
    /// Worker threads. `0` sizes the pool elastically from the global
    /// [`crate::budget`] ledger (machine parallelism minus whatever other
    /// pools have reserved); an explicit count is honored verbatim and
    /// recorded in the ledger for the run's duration.
    pub workers: usize,
    /// Frames per shard. Fixes the shard partition — keep it constant when
    /// comparing runs across worker counts, or the merged drift/report
    /// arithmetic changes with it.
    pub shard_frames: usize,
    /// Bounded work-queue depth. `0` means `2 × workers`.
    pub queue_depth: usize,
    /// Frames stacked into one batched interpreter invoke *within* a shard
    /// (intra-shard micro-batching). `0` or `1` runs frame by frame; larger
    /// values execute each shard in chunks of this many frames through
    /// [`crate::ImageRunner::classify_batch`]. Logged tensor values are
    /// bitwise-identical either way; only wall-clock-derived records
    /// (latency, per-frame memory attribution) change shape.
    pub micro_batch: usize,
    /// Monitor configuration each worker instruments its frames with.
    pub monitor: MonitorConfig,
}

impl Default for ReplayOptions {
    fn default() -> Self {
        ReplayOptions {
            workers: 0,
            shard_frames: 8,
            queue_depth: 0,
            micro_batch: 1,
            monitor: MonitorConfig::offline_validation(),
        }
    }
}

impl ReplayOptions {
    /// A run with an explicit worker count and otherwise default tuning.
    pub fn with_workers(workers: usize) -> Self {
        ReplayOptions {
            workers,
            ..Default::default()
        }
    }

    /// Takes the run's core lease and derives the worker count from it:
    /// elastic against the global [`crate::budget`] ledger for
    /// `workers == 0`, an exact (ledger-recorded) claim otherwise, never
    /// more workers than shards. Callers hold the lease for the run's
    /// duration so concurrent pools size themselves around it.
    pub(crate) fn lease_workers(&self, shards: usize) -> crate::budget::CoreLease {
        let cap = shards.max(1);
        if self.workers == 0 {
            crate::budget::reserve_up_to(cap)
        } else {
            crate::budget::reserve_cores(self.workers.min(cap))
        }
    }

    pub(crate) fn effective_queue_depth(&self, workers: usize) -> usize {
        if self.queue_depth == 0 {
            workers * 2
        } else {
            self.queue_depth
        }
    }
}

/// Wall-clock accounting of one sharded replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayStats {
    /// Frames replayed (frame *pairs* for the validate flow, which runs the
    /// edge and reference pipelines per frame).
    pub frames: usize,
    /// Shards in the partition.
    pub shards: usize,
    /// Worker threads actually spawned.
    pub workers: usize,
    /// End-to-end wall-clock time, including the merge.
    pub elapsed: Duration,
}

impl ReplayStats {
    /// Replay throughput in frames per second.
    pub fn frames_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.frames as f64 / secs
        }
    }
}

/// Drives one worker's shard through its runner, frame by frame or in
/// micro-batches of `micro_batch` stacked frames per interpreter invoke.
fn run_frames(
    runner: &mut ImageRunner<'_>,
    frames: &[LabeledFrame],
    monitor: &Monitor,
    micro_batch: usize,
) -> Result<()> {
    if micro_batch > 1 {
        for chunk in frames.chunks(micro_batch) {
            runner.classify_batch(chunk, monitor)?;
        }
    } else {
        for frame in frames {
            runner.classify(frame, monitor)?;
        }
    }
    Ok(())
}

/// The contiguous frame ranges `[0, n)` is split into: every shard holds
/// `shard_frames` frames except a shorter tail. This partition is the unit
/// of work distribution *and* of per-shard validation.
pub fn shard_partition(frames: usize, shard_frames: usize) -> Vec<Range<usize>> {
    let size = shard_frames.max(1);
    (0..frames.div_ceil(size))
        .map(|i| i * size..((i + 1) * size).min(frames))
        .collect()
}

/// A small bounded SPMC work queue: one producer pushes shards (blocking
/// when the queue is full, which bounds memory no matter how large the
/// playback set is), many workers pop. Closing wakes everyone; workers close
/// the queue on every exit path (error *and* panic, via a drop guard) so the
/// producer never deadlocks on a full queue with no consumers left.
struct ShardQueue<T> {
    state: Mutex<ShardQueueState<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

struct ShardQueueState<T> {
    items: VecDeque<T>,
    capacity: usize,
    closed: bool,
}

impl<T> ShardQueue<T> {
    fn new(capacity: usize) -> Self {
        ShardQueue {
            state: Mutex::new(ShardQueueState {
                items: VecDeque::new(),
                capacity: capacity.max(1),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// Blocks while full; returns `false` (dropping the item) once closed.
    fn push(&self, item: T) -> bool {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if state.closed {
                return false;
            }
            if state.items.len() < state.capacity {
                state.items.push_back(item);
                self.not_empty.notify_one();
                return true;
            }
            state = self.not_full.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Blocks until an item is available; `None` once closed and drained.
    fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(item) = state.items.pop_front() {
                self.not_full.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self
                .not_empty
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    fn close(&self) {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

/// Runs `work` over the shard partition on `workers` threads and collects
/// each shard's output, sorted by start frame. Each worker lazily builds its
/// own state (interpreter instances) via `init` on the first shard it claims,
/// so workers that never win a shard never pay for construction.
pub(crate) fn run_sharded<T: Send, S>(
    partition: &[Range<usize>],
    workers: usize,
    queue_depth: usize,
    init: impl Fn() -> Result<S> + Sync,
    work: impl Fn(&mut S, Range<usize>) -> Result<T> + Sync,
) -> Result<Vec<(usize, T)>> {
    let queue: ShardQueue<Range<usize>> = ShardQueue::new(queue_depth);
    let mut chunks: Vec<(usize, T)> = std::thread::scope(|scope| {
        let queue = &queue;
        let init = &init;
        let work = &work;
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(move || -> Result<Vec<(usize, T)>> {
                    // Close the queue however this worker exits — Err return
                    // *or* panic inside init/work. Without this, a panicking
                    // worker leaves the producer parked forever on a full
                    // queue instead of letting the scope propagate the
                    // panic. (Closing after a normal drain is a no-op.)
                    struct CloseOnExit<'q, Q>(&'q ShardQueue<Q>);
                    impl<Q> Drop for CloseOnExit<'_, Q> {
                        fn drop(&mut self) {
                            self.0.close();
                        }
                    }
                    let _guard = CloseOnExit(queue);
                    let mut state: Option<S> = None;
                    let mut produced = Vec::new();
                    while let Some(shard) = queue.pop() {
                        let start = shard.start;
                        if state.is_none() {
                            state = Some(init()?);
                        }
                        match work(state.as_mut().expect("state built above"), shard) {
                            Ok(value) => produced.push((start, value)),
                            // The CloseOnExit guard unblocks the producer
                            // and the other workers on the way out.
                            Err(e) => return Err(e),
                        }
                    }
                    Ok(produced)
                })
            })
            .collect();
        for shard in partition {
            if !queue.push(shard.clone()) {
                break; // A worker failed and closed the queue.
            }
        }
        queue.close();
        let mut all = Vec::new();
        let mut first_err = None;
        for handle in handles {
            match handle.join().expect("replay worker panicked") {
                Ok(produced) => all.extend(produced),
                Err(e) => first_err = first_err.or(Some(e)),
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(all),
        }
    })?;
    chunks.sort_by_key(|(start, _)| *start);
    Ok(chunks)
}

/// Replays `frames` through `pipeline` on a sharded worker pool, returning
/// the merged log set (frames globally numbered, in frame order) and the
/// run's throughput accounting.
///
/// # Errors
///
/// Propagates the first pipeline error any worker hits.
pub fn replay_sharded(
    pipeline: &ImagePipeline,
    frames: &[LabeledFrame],
    options: &ReplayOptions,
) -> Result<(LogSet, ReplayStats)> {
    let started = Instant::now();
    let partition = shard_partition(frames.len(), options.shard_frames);
    let lease = options.lease_workers(partition.len());
    let workers = lease.cores();
    let monitor_config = options.monitor;
    let micro_batch = options.micro_batch;
    let chunks = run_sharded(
        &partition,
        workers,
        options.effective_queue_depth(workers),
        || pipeline.runner(),
        |runner, shard| -> Result<Vec<LogRecord>> {
            let monitor = Monitor::new(monitor_config).starting_at(shard.start as u64);
            run_frames(runner, &frames[shard], &monitor, micro_batch)?;
            Ok(monitor.take_logs().into_records())
        },
    )?;
    let records: Vec<LogRecord> = chunks.into_iter().flat_map(|(_, r)| r).collect();
    let stats = ReplayStats {
        frames: frames.len(),
        shards: partition.len(),
        workers,
        elapsed: started.elapsed(),
    };
    Ok((LogSet::new(records), stats))
}

/// Like [`replay_sharded`], but streams records into `sink` instead of
/// buffering per-shard log sets — the fleet-telemetry shape, where a
/// [`crate::ChannelSink`] moves persistence off all worker threads at once.
/// Records arrive at the sink in worker interleaving order (their `frame`
/// fields are still globally numbered).
///
/// # Errors
///
/// Propagates the first pipeline error any worker hits.
pub fn replay_sharded_to_sink(
    pipeline: &ImagePipeline,
    frames: &[LabeledFrame],
    options: &ReplayOptions,
    sink: Arc<dyn LogSink>,
) -> Result<ReplayStats> {
    let started = Instant::now();
    let partition = shard_partition(frames.len(), options.shard_frames);
    let lease = options.lease_workers(partition.len());
    let workers = lease.cores();
    let monitor_config = options.monitor;
    let micro_batch = options.micro_batch;
    run_sharded(
        &partition,
        workers,
        options.effective_queue_depth(workers),
        || pipeline.runner(),
        |runner, shard| -> Result<()> {
            let monitor =
                Monitor::with_sink(monitor_config, sink.clone()).starting_at(shard.start as u64);
            run_frames(runner, &frames[shard], &monitor, micro_batch)?;
            Ok(())
        },
    )?;
    Ok(ReplayStats {
        frames: frames.len(),
        shards: partition.len(),
        workers,
        elapsed: started.elapsed(),
    })
}

/// Everything a sharded replay-validate run produces.
#[derive(Debug, Clone)]
pub struct ShardedValidation {
    /// The deterministic merge of all per-shard reports.
    pub report: ValidationReport,
    /// Per-shard validations, sorted by start frame (shard-level triage:
    /// which stretch of the playback set tripped which assertion).
    pub shards: Vec<ShardValidation>,
    /// Merged edge logs, globally frame-numbered.
    pub edge_logs: LogSet,
    /// Merged reference logs, globally frame-numbered.
    pub reference_logs: LogSet,
    /// Throughput accounting (frame pairs: each frame ran both pipelines).
    pub stats: ReplayStats,
}

/// The paper's full loop, sharded: replays every frame through both the
/// edge pipeline and the reference pipeline, validates each shard locally,
/// and merges logs and reports deterministically (see the module docs).
///
/// Each worker owns one edge interpreter and one reference interpreter for
/// its whole lifetime; per-shard assertion checks run against shard-local
/// frame numbering, so every shard gets first-frame assertion coverage.
///
/// # Errors
///
/// Propagates the first pipeline error any worker hits.
pub fn replay_validate_sharded(
    edge: &ImagePipeline,
    reference: &ReferencePipeline,
    frames: &[LabeledFrame],
    validator: &DeploymentValidator,
    options: &ReplayOptions,
) -> Result<ShardedValidation> {
    struct ShardOutput {
        validation: ShardValidation,
        edge_records: Vec<LogRecord>,
        reference_records: Vec<LogRecord>,
    }

    let started = Instant::now();
    let partition = shard_partition(frames.len(), options.shard_frames);
    let lease = options.lease_workers(partition.len());
    let workers = lease.cores();
    let monitor_config = options.monitor;
    let micro_batch = options.micro_batch;
    let reference_pipeline = reference.pipeline();
    let chunks = run_sharded(
        &partition,
        workers,
        options.effective_queue_depth(workers),
        || Ok((edge.runner()?, reference_pipeline.runner()?)),
        |(edge_runner, reference_runner), shard| -> Result<ShardOutput> {
            let start = shard.start as u64;
            // Shard-local frame numbering (0..len) so assertions that
            // inspect frame 0 run against every shard, not just the first.
            let edge_monitor = Monitor::new(monitor_config);
            let reference_monitor = Monitor::new(monitor_config);
            run_frames(
                edge_runner,
                &frames[shard.clone()],
                &edge_monitor,
                micro_batch,
            )?;
            run_frames(
                reference_runner,
                &frames[shard],
                &reference_monitor,
                micro_batch,
            )?;
            let edge_logs = edge_monitor.take_logs();
            let reference_logs = reference_monitor.take_logs();
            let validation = validator.validate_shard(start, &edge_logs, &reference_logs);
            let rebase = |logs: LogSet| -> Vec<LogRecord> {
                logs.into_records()
                    .into_iter()
                    .map(|mut r| {
                        r.frame += start;
                        r
                    })
                    .collect()
            };
            Ok(ShardOutput {
                validation,
                edge_records: rebase(edge_logs),
                reference_records: rebase(reference_logs),
            })
        },
    )?;

    let mut shards = Vec::with_capacity(chunks.len());
    let mut edge_records = Vec::new();
    let mut reference_records = Vec::new();
    for (_, output) in chunks {
        shards.push(output.validation);
        edge_records.extend(output.edge_records);
        reference_records.extend(output.reference_records);
    }
    let report = validator.merge_shards(&shards);
    let stats = ReplayStats {
        frames: frames.len(),
        shards: partition.len(),
        workers,
        elapsed: started.elapsed(),
    };
    Ok(ShardedValidation {
        report,
        shards,
        edge_logs: LogSet::new(edge_records),
        reference_logs: LogSet::new(reference_records),
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_covers_all_frames_without_overlap() {
        for (n, size) in [(0usize, 4usize), (1, 4), (7, 4), (8, 4), (9, 4), (10, 1)] {
            let shards = shard_partition(n, size);
            let covered: usize = shards.iter().map(|s| s.len()).sum();
            assert_eq!(covered, n, "n={n} size={size}");
            for pair in shards.windows(2) {
                assert_eq!(pair[0].end, pair[1].start);
            }
            if n > 0 {
                assert_eq!(shards[0].start, 0);
                assert_eq!(shards.last().unwrap().end, n);
            }
        }
    }

    #[test]
    fn queue_is_bounded_and_fifo() {
        let queue = ShardQueue::new(2);
        assert!(queue.push(1));
        assert!(queue.push(2));
        assert_eq!(queue.pop(), Some(1));
        assert_eq!(queue.pop(), Some(2));
        queue.close();
        assert_eq!(queue.pop(), None);
        assert!(!queue.push(3), "push after close must be rejected");
    }

    #[test]
    fn queue_blocks_producer_at_capacity() {
        let queue = Arc::new(ShardQueue::new(1));
        assert!(queue.push(0));
        let q = queue.clone();
        let producer = std::thread::spawn(move || q.push(1));
        // The producer must be parked on the full queue until we pop.
        std::thread::sleep(Duration::from_millis(20));
        assert!(!producer.is_finished(), "bounded queue failed to block");
        assert_eq!(queue.pop(), Some(0));
        assert!(producer.join().unwrap());
        assert_eq!(queue.pop(), Some(1));
    }
}
