//! Replay/equivalence suite for the differential debugger: a differential
//! run over the sharded replay engine must produce a `DifferentialReport`
//! that is **byte-identical** across worker counts and micro-batch settings
//! — both the structured value and its rendered form. Layer tensors are
//! batching-invariant (pinned by the nn `batch_equivalence` suite) and the
//! shard merge is ordered, so the report is a pure function of (backends,
//! frames, partition).

use mlexray_core::{
    diff_backends, diff_image_pipelines, BisectionVerdict, DifferentialOptions, DifferentialReport,
    ImagePipeline, LabeledFrame, ReplayOptions,
};
use mlexray_nn::{
    calibrate, quantize_model, Activation, BackendSpec, EdgeNumerics, Graph, GraphBuilder,
    InterpreterOptions, KernelBugs, KernelFlavor, Model, ModelVariant, Padding,
    QuantizationOptions,
};
use mlexray_preprocess::{Image, ImagePreprocessConfig};
use mlexray_tensor::{Shape, Tensor};

/// Deterministic pseudo-random values (no RNG dependency in this crate's
/// dev-deps; mirrors the golden generator's xorshift).
fn det(n: usize, seed: u64, lo: f32, hi: f32) -> Vec<f32> {
    let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..n)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            lo + ((s >> 40) as f32 / (1u64 << 24) as f32) * (hi - lo)
        })
        .collect()
}

/// A small but multi-op float graph: conv -> depthwise -> add(shift) ->
/// pool -> mean -> fc head.
fn float_graph() -> (Graph, Shape) {
    let in_shape = Shape::nhwc(1, 6, 6, 3);
    let mut b = GraphBuilder::new("diffgraph");
    let x = b.input("x", in_shape.clone());
    let w1 = b.constant(
        "w1",
        Tensor::from_f32(Shape::new(vec![4, 3, 3, 3]), det(108, 11, -0.5, 0.5)).unwrap(),
    );
    let c1 = b
        .conv2d("conv1", x, w1, None, 1, Padding::Same, Activation::Relu)
        .unwrap();
    let wd = b.constant(
        "wd",
        Tensor::from_f32(Shape::new(vec![1, 3, 3, 4]), det(36, 12, -0.5, 0.5)).unwrap(),
    );
    let d = b
        .depthwise_conv2d("dw", c1, wd, None, 1, Padding::Same, Activation::HardSwish)
        .unwrap();
    let shift = b.constant(
        "shift",
        Tensor::from_f32(Shape::vector(4), det(4, 13, -0.2, 0.2)).unwrap(),
    );
    let a = b.add("add", d, shift, Activation::None).unwrap();
    let p = b.avg_pool2d("pool", a, 2, 2, 2, Padding::Same).unwrap();
    let m = b.mean("gap", p).unwrap();
    let wf = b.constant(
        "wf",
        Tensor::from_f32(Shape::matrix(3, 4), det(12, 14, -0.6, 0.6)).unwrap(),
    );
    let f = b
        .fully_connected("fc", m, wf, None, Activation::None)
        .unwrap();
    b.output(f);
    (b.finish().unwrap(), in_shape)
}

fn float_frames(shape: &Shape, n: usize) -> Vec<Vec<Tensor>> {
    (0..n)
        .map(|i| {
            vec![Tensor::from_f32(
                shape.clone(),
                det(shape.num_elements(), 100 + i as u64, -1.0, 1.0),
            )
            .unwrap()]
        })
        .collect()
}

/// The (workers, micro_batch) grid every report must be invariant over.
const GRID: [(usize, usize); 5] = [(1, 1), (2, 1), (4, 1), (2, 3), (4, 8)];

fn reports_over_grid(
    graph: &Graph,
    baseline: BackendSpec,
    candidate: BackendSpec,
    frames: &[Vec<Tensor>],
    threshold: f32,
) -> Vec<DifferentialReport> {
    GRID.iter()
        .map(|&(workers, micro_batch)| {
            let options = DifferentialOptions {
                threshold,
                bisect: true,
                replay: ReplayOptions {
                    workers,
                    shard_frames: 4,
                    micro_batch,
                    ..Default::default()
                },
            };
            diff_backends(graph, baseline, candidate, frames, &options).unwrap()
        })
        .collect()
}

fn assert_all_identical(reports: &[DifferentialReport]) {
    let rendered: Vec<String> = reports.iter().map(|r| r.to_string()).collect();
    for (i, (report, text)) in reports.iter().zip(&rendered).enumerate().skip(1) {
        assert_eq!(
            report, &reports[0],
            "report {i} (workers/micro-batch grid) differs structurally"
        );
        assert_eq!(
            text, &rendered[0],
            "report {i} differs byte-wise in rendered form"
        );
    }
}

/// Clean cross-flavor run: equivalent at reassociation tolerance, and the
/// report (including every drift value) is identical across the grid.
#[test]
fn clean_report_identical_across_workers_and_micro_batch() {
    let (graph, shape) = float_graph();
    let frames = float_frames(&shape, 13);
    let reports = reports_over_grid(
        &graph,
        BackendSpec::reference(),
        BackendSpec::optimized(),
        &frames,
        1e-4,
    );
    assert!(reports[0].is_equivalent(), "{}", reports[0]);
    assert_all_identical(&reports);
}

/// Emulated-numerics divergence: localization and bisection outcomes are
/// identical across the grid, bitwise.
#[test]
fn diverged_report_identical_across_workers_and_micro_batch() {
    let (graph, shape) = float_graph();
    let frames = float_frames(&shape, 13);
    let numerics = EdgeNumerics {
        accumulation: mlexray_nn::AccumOrder::Lanes8,
        fused_multiply_add: true,
        ..EdgeNumerics::faithful()
    };
    let reports = reports_over_grid(
        &graph,
        BackendSpec::reference(),
        BackendSpec::emulator(numerics),
        &frames,
        0.0,
    );
    assert!(!reports[0].is_equivalent());
    assert_eq!(
        reports[0].divergent_layer(),
        Some("conv1"),
        "reassociation must first surface at the first GEMM reduction:\n{}",
        reports[0]
    );
    assert!(reports[0].bisection.is_some());
    assert_all_identical(&reports);
}

/// Quantized graph with the injected optimized-dwconv defect: the
/// differential run localizes the buggy layer, bisection confirms it
/// op-local, and the whole report is grid-invariant.
#[test]
fn injected_bug_report_identical_across_workers_and_micro_batch() {
    let (graph, shape) = float_graph();
    let frames = float_frames(&shape, 9);
    let calib = calibrate(&graph, frames.iter().map(Vec::as_slice)).unwrap();
    let model = Model {
        graph,
        family: "diff".into(),
        variant: ModelVariant::MobileFloat,
    };
    let quant = quantize_model(&model, &calib, QuantizationOptions::default()).unwrap();
    let reports = reports_over_grid(
        &quant.graph,
        BackendSpec::reference(),
        BackendSpec::Optimized {
            bugs: KernelBugs {
                optimized_dwconv_i16_accumulator: true,
                ..KernelBugs::none()
            },
        },
        &frames,
        0.0,
    );
    let report = &reports[0];
    assert_eq!(
        report.divergent_layer(),
        Some("dw"),
        "the injected dwconv defect must localize to the dwconv layer:\n{report}"
    );
    assert_eq!(
        report.bisection.as_ref().unwrap().verdict,
        BisectionVerdict::OpLocal
    );
    assert_all_identical(&reports);
}

/// The pipeline-level entry point (over the real replay engine and image
/// preprocessing) is grid-invariant too.
#[test]
fn pipeline_differential_identical_across_workers() {
    let (graph, _) = float_graph();
    // Re-home the graph behind a 6x6 RGB preprocessing pipeline.
    let model = Model::checkpoint(graph, "diff");
    let canonical = ImagePreprocessConfig::mobilenet_style(6, 6);
    let baseline = ImagePipeline::new(model.clone(), canonical.clone());
    let candidate = ImagePipeline::new(model, canonical).with_options(InterpreterOptions {
        flavor: KernelFlavor::Reference,
        bugs: KernelBugs::none(),
        numerics: Some(EdgeNumerics {
            accumulation: mlexray_nn::AccumOrder::Reversed,
            ..EdgeNumerics::faithful()
        }),
    });
    let frames: Vec<LabeledFrame> = (0..11)
        .map(|i| {
            LabeledFrame::new(
                Image::solid(8, 8, [(i * 23 % 256) as u8, (i * 57 % 256) as u8, 200]),
                Some(0),
            )
        })
        .collect();
    let reports: Vec<DifferentialReport> = GRID
        .iter()
        .map(|&(workers, micro_batch)| {
            let options = DifferentialOptions {
                threshold: 0.0,
                bisect: true,
                replay: ReplayOptions {
                    workers,
                    shard_frames: 4,
                    micro_batch,
                    ..Default::default()
                },
            };
            diff_image_pipelines(&baseline, &candidate, &frames, &options).unwrap()
        })
        .collect();
    assert!(!reports[0].is_equivalent());
    assert_eq!(reports[0].divergent_layer(), Some("conv1"));
    assert!(
        reports[0].bisection.is_some(),
        "same-graph pipelines must bisect"
    );
    assert_all_identical(&reports);
}
