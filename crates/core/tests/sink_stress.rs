//! Backpressure-accounting stress for [`ChannelSink`] under a deliberately
//! slow consumer.
//!
//! The offline replay path drains a sink after the run; the serving monitor
//! writes through it *while* inference threads are hot, so the
//! [`SinkBackpressure`] invariants have to hold exactly under sustained
//! contention, not just in the single-threaded unit tests:
//!
//! * `enqueued + dropped == write calls` — no write is ever unaccounted;
//! * after `close`, `persisted == enqueued` — every admitted record reaches
//!   the wrapped sink, none is destroyed in flight;
//! * `Block` overflow is lossless (`dropped == 0`) and records the stalls;
//! * `DropNewest` overflow shields the writers and counts every shed.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use mlexray_core::{
    ChannelSink, ChannelSinkConfig, LogRecord, LogSink, LogValue, MemorySink, OverflowPolicy,
    SinkBackpressure,
};

/// Wraps a [`MemorySink`] with a fixed per-batch stall — the "slow SD card"
/// the serving monitor must absorb without losing accounting.
struct SlowSink {
    inner: MemorySink,
    stall: Duration,
    batches_seen: AtomicU64,
}

impl SlowSink {
    fn new(stall: Duration) -> Self {
        SlowSink {
            inner: MemorySink::new(),
            stall,
            batches_seen: AtomicU64::new(0),
        }
    }
}

impl LogSink for SlowSink {
    fn write(&self, record: LogRecord) {
        std::thread::sleep(self.stall);
        self.batches_seen.fetch_add(1, Ordering::AcqRel);
        self.inner.write(record);
    }

    fn write_batch(&self, records: Vec<LogRecord>) {
        std::thread::sleep(self.stall);
        self.batches_seen.fetch_add(1, Ordering::AcqRel);
        self.inner.write_batch(records);
    }

    fn bytes_written(&self) -> u64 {
        self.inner.bytes_written()
    }
}

fn rec(frame: u64) -> LogRecord {
    LogRecord {
        frame,
        key: "stress".into(),
        value: LogValue::Scalar(frame as f64),
    }
}

/// Hammers `sink` from `writers` threads, `per_writer` records each.
fn hammer(sink: &ChannelSink, writers: u64, per_writer: u64) {
    std::thread::scope(|scope| {
        for w in 0..writers {
            scope.spawn(move || {
                for i in 0..per_writer {
                    sink.write(rec(w * per_writer + i));
                }
            });
        }
    });
}

fn assert_exact(stats: &SinkBackpressure, writes: u64) {
    assert_eq!(
        stats.enqueued + stats.dropped,
        writes,
        "every write must be counted exactly once: {stats:?}"
    );
    assert_eq!(
        stats.persisted, stats.enqueued,
        "after close, every admitted record must be persisted: {stats:?}"
    );
}

#[test]
fn blocking_overflow_is_lossless_and_exact_under_a_slow_consumer() {
    let slow = Arc::new(SlowSink::new(Duration::from_millis(2)));
    let sink = ChannelSink::new(
        slow.clone(),
        ChannelSinkConfig {
            capacity: 8,
            batch_records: 4,
            overflow: OverflowPolicy::Block,
            ..Default::default()
        },
    );
    let (writers, per_writer) = (4u64, 200u64);
    let writes = writers * per_writer;
    hammer(&sink, writers, per_writer);
    let stats = sink.close();
    assert_exact(&stats, writes);
    assert_eq!(
        stats.dropped, 0,
        "Block overflow must never shed: {stats:?}"
    );
    assert_eq!(stats.enqueued, writes);
    assert!(
        stats.blocked > 0,
        "a 2ms/batch consumer behind an 8-slot channel must have stalled \
         writers at least once: {stats:?}"
    );
    let (len, _) = slow.inner.len_and_bytes();
    assert_eq!(len as u64, writes, "inner sink must hold every record");
    assert!(slow.batches_seen.load(Ordering::Acquire) > 0);
}

#[test]
fn drop_newest_overflow_sheds_but_never_miscounts() {
    let slow = Arc::new(SlowSink::new(Duration::from_millis(3)));
    let sink = ChannelSink::new(
        slow.clone(),
        ChannelSinkConfig {
            capacity: 4,
            batch_records: 2,
            overflow: OverflowPolicy::DropNewest,
            ..Default::default()
        },
    );
    let (writers, per_writer) = (4u64, 150u64);
    let writes = writers * per_writer;
    hammer(&sink, writers, per_writer);
    let stats = sink.close();
    assert_exact(&stats, writes);
    assert_eq!(stats.blocked, 0, "DropNewest must never block: {stats:?}");
    assert!(
        stats.dropped > 0,
        "4 writers against a 3ms/batch consumer behind a 4-slot channel \
         must overflow: {stats:?}"
    );
    let (len, _) = slow.inner.len_and_bytes();
    assert_eq!(
        len as u64, stats.persisted,
        "inner sink must hold exactly the persisted records"
    );
}

#[test]
fn close_racing_concurrent_writers_keeps_the_books_balanced() {
    // Repeat the race a few times: close() lands mid-hammer, and whatever
    // interleaving occurs, enqueued + dropped == writes and persisted ==
    // enqueued must hold — a record is persisted or counted shed, never
    // silently destroyed.
    for round in 0..5u64 {
        let slow = Arc::new(SlowSink::new(Duration::from_micros(200)));
        let sink = Arc::new(ChannelSink::new(
            slow.clone(),
            ChannelSinkConfig {
                capacity: 8,
                batch_records: 4,
                overflow: OverflowPolicy::Block,
                ..Default::default()
            },
        ));
        let (writers, per_writer) = (4u64, 50u64);
        let writes = writers * per_writer;
        let stats = std::thread::scope(|scope| {
            for w in 0..writers {
                let sink = sink.clone();
                scope.spawn(move || {
                    for i in 0..per_writer {
                        sink.write(rec(w * per_writer + i));
                    }
                });
            }
            let closer = sink.clone();
            scope
                .spawn(move || {
                    std::thread::sleep(Duration::from_millis(round));
                    closer.close()
                })
                .join()
                .expect("closer thread")
        });
        // The scope joined every writer, so the mid-run snapshot from the
        // closer thread may predate late writes — re-read the frozen books.
        let _ = stats;
        let finals = sink.close();
        assert_exact(&finals, writes);
        let (len, _) = slow.inner.len_and_bytes();
        assert_eq!(len as u64, finals.persisted, "round {round}: {finals:?}");
    }
}
