//! Integration coverage for the new concurrency surface: the sharded
//! replay-validate engine's determinism guarantee and the `ChannelSink`'s
//! losslessness under multi-writer contention.

use std::sync::Arc;

use mlexray_core::{
    replay_sharded, replay_sharded_to_sink, replay_validate_sharded, ChannelSink,
    ChannelSinkConfig, DeploymentValidator, ImagePipeline, LabeledFrame, LogRecord, LogSink,
    LogValue, MemorySink, MonitorConfig, ReferencePipeline, ReplayOptions,
};
use mlexray_nn::{Activation, GraphBuilder, Model, Padding};
use mlexray_preprocess::{Image, ImagePreprocessConfig};
use mlexray_tensor::{Shape, Tensor};

fn tiny_model() -> Model {
    let mut b = GraphBuilder::new("tiny");
    let x = b.input("image", Shape::nhwc(1, 6, 6, 3));
    let w = b.constant("w", Tensor::filled_f32(Shape::new(vec![4, 3, 3, 3]), 0.11));
    let c = b
        .conv2d("conv", x, w, None, 1, Padding::Same, Activation::Relu)
        .unwrap();
    let m = b.mean("gap", c).unwrap();
    let s = b.softmax("softmax", m).unwrap();
    b.output(s);
    Model::checkpoint(b.finish().unwrap(), "tiny")
}

fn frames(n: usize) -> Vec<LabeledFrame> {
    (0..n)
        .map(|i| {
            let rgb = [
                (i * 23 % 256) as u8,
                (i * 91 % 256) as u8,
                (255 - i * 17 % 256) as u8,
            ];
            LabeledFrame::new(Image::solid(12, 12, rgb), Some(i % 4))
        })
        .collect()
}

fn pipeline() -> ImagePipeline {
    ImagePipeline::new(tiny_model(), ImagePreprocessConfig::mobilenet_style(6, 6))
}

/// Strips wall-clock-dependent records so log sets from different runs can
/// be compared for semantic equality.
fn deterministic_records(records: &[LogRecord]) -> Vec<LogRecord> {
    records
        .iter()
        .filter(|r| !r.key.ends_with("latency_ns"))
        .cloned()
        .collect()
}

#[test]
fn sharded_replay_matches_worker_counts_and_frame_order() {
    let pipeline = pipeline();
    let frames = frames(13);
    let mut baseline: Option<Vec<LogRecord>> = None;
    for workers in [1usize, 2, 4] {
        let options = ReplayOptions {
            workers,
            shard_frames: 3,
            ..Default::default()
        };
        let (logs, stats) = replay_sharded(&pipeline, &frames, &options).unwrap();
        assert_eq!(logs.frame_count(), 13);
        assert_eq!(stats.frames, 13);
        assert_eq!(stats.shards, 5);
        // Merged records must be globally frame-ordered regardless of which
        // worker replayed which shard.
        let frames_seen: Vec<u64> = logs.records().iter().map(|r| r.frame).collect();
        let mut sorted = frames_seen.clone();
        sorted.sort();
        assert_eq!(frames_seen, sorted, "workers={workers}");
        let stripped = deterministic_records(logs.records());
        match &baseline {
            None => baseline = Some(stripped),
            Some(expected) => assert_eq!(expected, &stripped, "workers={workers}"),
        }
    }
}

#[test]
fn sharded_validation_report_is_identical_across_worker_counts() {
    let pipeline = pipeline();
    let reference = ReferencePipeline::with_optimized_kernels(
        tiny_model(),
        ImagePreprocessConfig::mobilenet_style(6, 6),
    );
    let validator = DeploymentValidator::new();
    let frames = frames(10);
    let mut rendered: Option<String> = None;
    for workers in [1usize, 2, 4] {
        let options = ReplayOptions {
            workers,
            shard_frames: 4,
            ..Default::default()
        };
        let result =
            replay_validate_sharded(&pipeline, &reference, &frames, &validator, &options).unwrap();
        assert_eq!(result.shards.len(), 3);
        assert_eq!(result.edge_logs.frame_count(), 10);
        let text = result.report.to_string();
        match &rendered {
            None => rendered = Some(text),
            Some(expected) => assert_eq!(
                expected, &text,
                "merged report must be byte-identical at workers={workers}"
            ),
        }
    }
}

#[test]
fn sharded_replay_propagates_worker_errors() {
    // A pipeline whose preprocess target mismatches the model input shape
    // fails inside the workers; the error must surface, not hang the queue.
    let broken = ImagePipeline::new(tiny_model(), ImagePreprocessConfig::mobilenet_style(5, 5));
    let err = replay_sharded(&broken, &frames(8), &ReplayOptions::with_workers(2));
    assert!(err.is_err());
}

#[test]
fn channel_sink_loses_nothing_under_multiwriter_contention() {
    let inner = Arc::new(MemorySink::new());
    let sink = Arc::new(ChannelSink::new(
        inner.clone(),
        ChannelSinkConfig {
            capacity: 16, // small on purpose: force blocking backpressure
            batch_records: 8,
            ..Default::default()
        },
    ));
    let writers = 8usize;
    let per_writer = 400u64;
    std::thread::scope(|scope| {
        for w in 0..writers {
            let sink = sink.clone();
            scope.spawn(move || {
                for i in 0..per_writer {
                    sink.write(LogRecord {
                        frame: w as u64 * per_writer + i,
                        key: format!("writer/{w}"),
                        value: LogValue::Scalar(i as f64),
                    });
                }
            });
        }
    });
    let stats = sink.close();
    let expected = writers as u64 * per_writer;
    assert_eq!(stats.enqueued, expected);
    assert_eq!(stats.dropped, 0);
    assert_eq!(stats.persisted, expected);
    // Every record made it through exactly once: no loss, no duplication.
    let records = inner.snapshot();
    assert_eq!(records.len(), expected as usize);
    let mut seen: Vec<u64> = records.iter().map(|r| r.frame).collect();
    seen.sort();
    seen.dedup();
    assert_eq!(seen.len(), expected as usize, "duplicated records detected");
}

#[test]
fn sharded_replay_streams_through_channel_sink() {
    let pipeline = pipeline();
    let frames = frames(9);
    let inner = Arc::new(MemorySink::new());
    let sink = Arc::new(ChannelSink::new(
        inner.clone(),
        ChannelSinkConfig {
            capacity: 8,
            batch_records: 4,
            ..Default::default()
        },
    ));
    let options = ReplayOptions {
        workers: 3,
        shard_frames: 2,
        monitor: MonitorConfig::runtime(),
        ..Default::default()
    };
    let stats = replay_sharded_to_sink(
        &pipeline,
        &frames,
        &options,
        sink.clone() as Arc<dyn LogSink>,
    )
    .unwrap();
    assert_eq!(stats.frames, 9);
    let sink_stats = sink.close();
    assert_eq!(sink_stats.dropped, 0);
    assert_eq!(sink_stats.enqueued, sink_stats.persisted);
    // All 9 frames are represented in the persisted stream, each exactly
    // once per record key (runtime config logs latency + decision per frame).
    let records = inner.snapshot();
    let mut decision_frames: Vec<u64> = records
        .iter()
        .filter(|r| r.key == mlexray_core::KEY_DECISION)
        .map(|r| r.frame)
        .collect();
    decision_frames.sort();
    assert_eq!(decision_frames, (0..9).collect::<Vec<u64>>());
}

/// Intra-shard micro-batching must not change what gets logged: the merged
/// log set of a micro-batched replay equals the frame-by-frame replay
/// record for record (modulo wall-clock latency values), and the merged
/// validation report renders byte-identically.
#[test]
fn micro_batched_replay_is_bitwise_equivalent_to_per_frame() {
    let pipeline = pipeline();
    let frames = frames(13);
    let baseline_options = ReplayOptions {
        workers: 2,
        shard_frames: 4,
        micro_batch: 1,
        ..Default::default()
    };
    let (baseline_logs, _) = replay_sharded(&pipeline, &frames, &baseline_options).unwrap();
    for micro_batch in [2usize, 4, 8] {
        let options = ReplayOptions {
            micro_batch,
            ..baseline_options
        };
        let (logs, stats) = replay_sharded(&pipeline, &frames, &options).unwrap();
        assert_eq!(stats.frames, frames.len());
        assert_eq!(
            deterministic_records(logs.records()),
            deterministic_records(baseline_logs.records()),
            "micro_batch={micro_batch} changed logged values"
        );
    }
}

/// The full replay-validate loop with micro-batching: merged report must be
/// byte-identical to the per-frame run (drift math sees the same bits).
#[test]
fn micro_batched_validate_report_matches_per_frame() {
    let model = tiny_model();
    let preprocess = ImagePreprocessConfig::mobilenet_style(6, 6);
    let edge = ImagePipeline::new(model.clone(), preprocess.clone());
    let reference = ReferencePipeline::with_optimized_kernels(model, preprocess);
    let validator = DeploymentValidator::new();
    let frames = frames(10);
    let mut rendered: Option<String> = None;
    for micro_batch in [1usize, 4] {
        let options = ReplayOptions {
            workers: 2,
            shard_frames: 4,
            micro_batch,
            ..Default::default()
        };
        let result =
            replay_validate_sharded(&edge, &reference, &frames, &validator, &options).unwrap();
        let text = result.report.to_string();
        match &rendered {
            None => rendered = Some(text),
            Some(expected) => assert_eq!(
                expected, &text,
                "micro_batch={micro_batch} changed the merged report"
            ),
        }
    }
}
