//! Determinism suite for the parallel batched invoke: splitting one
//! `invoke_batch` across workers drawn from the global core budget must
//! change *nothing* but wall-clock — outputs and captured layer records
//! are identical across worker counts (1/2/4), identical to the
//! sequential single-shard path, and identical to invoking each frame
//! alone — for every execution backend, including the SIMD backend whose
//! conv path runs whole-batch im2col GEMM.

use mlexray_core::{
    available_cores, invoke_batch_parallel, machine_parallelism, reserve_cores, InvokeLayerRecord,
    ParallelInvokeOptions,
};
use mlexray_nn::{
    calibrate, quantize_model, Activation, BackendSpec, Graph, GraphBuilder, Model, ModelVariant,
    Padding, QuantizationOptions,
};
use mlexray_tensor::{Shape, Tensor};

/// Deterministic pseudo-random values (mirrors the golden generator's
/// xorshift; no RNG dep in this crate's dev-deps).
fn det(n: usize, seed: u64, lo: f32, hi: f32) -> Vec<f32> {
    let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..n)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            lo + ((s >> 40) as f32 / (1u64 << 24) as f32) * (hi - lo)
        })
        .collect()
}

/// Multi-op float graph exercising every GEMM-family path: conv (K = 27,
/// not lane-aligned), depthwise, 1x1 conv (the copy-free direct arm) and
/// an fc head.
fn float_graph() -> (Graph, Shape) {
    let in_shape = Shape::nhwc(1, 6, 6, 3);
    let mut b = GraphBuilder::new("pinv");
    let x = b.input("x", in_shape.clone());
    let w1 = b.constant(
        "w1",
        Tensor::from_f32(Shape::new(vec![4, 3, 3, 3]), det(108, 21, -0.5, 0.5)).unwrap(),
    );
    let c1 = b
        .conv2d("conv1", x, w1, None, 1, Padding::Same, Activation::Relu)
        .unwrap();
    let wd = b.constant(
        "wd",
        Tensor::from_f32(Shape::new(vec![1, 3, 3, 4]), det(36, 22, -0.5, 0.5)).unwrap(),
    );
    let d = b
        .depthwise_conv2d("dw", c1, wd, None, 1, Padding::Same, Activation::Relu6)
        .unwrap();
    let w2 = b.constant(
        "w2",
        Tensor::from_f32(Shape::new(vec![5, 1, 1, 4]), det(20, 23, -0.6, 0.6)).unwrap(),
    );
    let c2 = b
        .conv2d("conv1x1", d, w2, None, 1, Padding::Same, Activation::None)
        .unwrap();
    let m = b.mean("gap", c2).unwrap();
    let wf = b.constant(
        "wf",
        Tensor::from_f32(Shape::matrix(3, 5), det(15, 24, -0.6, 0.6)).unwrap(),
    );
    let f = b
        .fully_connected("fc", m, wf, None, Activation::None)
        .unwrap();
    b.output(f);
    (b.finish().unwrap(), in_shape)
}

fn float_frames(shape: &Shape, n: usize) -> Vec<Vec<Tensor>> {
    (0..n)
        .map(|i| {
            vec![Tensor::from_f32(
                shape.clone(),
                det(shape.num_elements(), 300 + i as u64, -1.0, 1.0),
            )
            .unwrap()]
        })
        .collect()
}

fn quantized(graph: Graph, samples: &[Vec<Tensor>]) -> Graph {
    let calib = calibrate(&graph, samples.iter().map(Vec::as_slice)).unwrap();
    let model = Model {
        graph,
        family: "pinv".into(),
        variant: ModelVariant::MobileFloat,
    };
    quantize_model(&model, &calib, QuantizationOptions::default())
        .unwrap()
        .graph
}

/// The wall-clock-free projection of captured records.
fn record_contents(
    records: &[InvokeLayerRecord],
) -> Vec<(usize, usize, String, String, Tensor, u64)> {
    records
        .iter()
        .map(|r| {
            (
                r.frame,
                r.index,
                r.name.clone(),
                r.op.to_string(),
                r.output.clone(),
                r.macs,
            )
        })
        .collect()
}

fn options(workers: usize, shard_frames: usize) -> ParallelInvokeOptions {
    ParallelInvokeOptions {
        workers,
        shard_frames,
        queue_depth: 0,
        capture_layers: true,
    }
}

/// Outputs and merged layer records are identical across worker counts,
/// identical to the single-shard sequential path, and outputs match
/// per-frame solo invokes — for all four backends.
#[test]
fn parallel_invoke_identical_across_workers_and_to_sequential() {
    let (graph, shape) = float_graph();
    let frames = float_frames(&shape, 13);
    for spec in [
        BackendSpec::reference(),
        BackendSpec::optimized(),
        BackendSpec::simd(),
        BackendSpec::emulator(mlexray_nn::EdgeNumerics::faithful()),
    ] {
        // Sequential baseline: one worker, one shard = one plain
        // `invoke_batch` with the sequential observer's record stream.
        let sequential =
            invoke_batch_parallel(&graph, &spec, &frames, &options(1, frames.len())).unwrap();
        assert_eq!(sequential.workers, 1);
        assert_eq!(sequential.shards, 1);

        // Per-frame solo invokes pin batching-invariance end to end.
        let mut backend = spec.build(&graph).unwrap();
        for (frame, outputs) in frames.iter().zip(&sequential.outputs) {
            let solo = backend.invoke(frame).unwrap();
            assert_eq!(&solo, outputs, "batched != solo under {}", spec.label());
        }

        let expected_records = record_contents(&sequential.records);
        assert!(
            !expected_records.is_empty(),
            "capture_layers must produce records"
        );
        for workers in [1usize, 2, 4] {
            let run = invoke_batch_parallel(&graph, &spec, &frames, &options(workers, 3)).unwrap();
            assert_eq!(run.shards, 5);
            assert_eq!(
                run.outputs,
                sequential.outputs,
                "outputs diverged at workers={workers} under {}",
                spec.label()
            );
            assert_eq!(
                record_contents(&run.records),
                expected_records,
                "merged records diverged at workers={workers} under {}",
                spec.label()
            );
        }
    }
}

/// Quantized graphs: the SIMD backend's i8×i8→i32 path is exact, so its
/// parallel invoke is bitwise-identical to the reference backend at every
/// worker count.
#[test]
fn quantized_simd_parallel_invoke_matches_reference_bitwise() {
    let (graph, shape) = float_graph();
    let frames = float_frames(&shape, 9);
    let graph = quantized(graph, &frames);
    let reference =
        invoke_batch_parallel(&graph, &BackendSpec::reference(), &frames, &options(1, 9)).unwrap();
    for workers in [1usize, 2, 4] {
        let simd =
            invoke_batch_parallel(&graph, &BackendSpec::simd(), &frames, &options(workers, 2))
                .unwrap();
        assert_eq!(
            simd.outputs, reference.outputs,
            "quantized SIMD != reference at workers={workers}"
        );
    }
}

/// The auto-sized pool (workers = 0) draws from the global core budget:
/// it never exceeds the ledger headroom or the shard count, and a
/// concurrent reservation visibly shrinks what a new run may take.
#[test]
fn auto_sized_pool_respects_core_budget() {
    let (graph, shape) = float_graph();
    let frames = float_frames(&shape, 6);
    let auto = ParallelInvokeOptions {
        shard_frames: 2,
        capture_layers: false,
        ..Default::default()
    };
    let run = invoke_batch_parallel(&graph, &BackendSpec::simd(), &frames, &auto).unwrap();
    assert!(run.workers >= 1);
    assert!(run.workers <= 3, "never more workers than shards");
    assert!(run.workers <= machine_parallelism());
    assert_eq!(run.outputs.len(), 6);

    // Hog the whole ledger: an elastic run must squeeze to one worker.
    let hog = reserve_cores(machine_parallelism() * 2);
    assert_eq!(available_cores(), 1);
    let squeezed = invoke_batch_parallel(&graph, &BackendSpec::simd(), &frames, &auto).unwrap();
    assert_eq!(squeezed.workers, 1, "no headroom left under the hog lease");
    assert_eq!(
        squeezed.outputs, run.outputs,
        "pressure must not change bits"
    );
    drop(hog);
}

/// Degenerate inputs stay well-formed: zero frames produce an empty run.
#[test]
fn empty_batch_is_a_clean_no_op() {
    let (graph, _) = float_graph();
    let run = invoke_batch_parallel(
        &graph,
        &BackendSpec::simd(),
        &[],
        &ParallelInvokeOptions::default(),
    )
    .unwrap();
    assert!(run.outputs.is_empty());
    assert!(run.records.is_empty());
    assert_eq!(run.shards, 0);
}
