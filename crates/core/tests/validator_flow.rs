//! Integration tests for the Figure-2 validation flow at the core-crate
//! level, using hand-built log sets (no models required): report rendering,
//! verdict logic, and latency comparison across pipelines.

use mlexray_core::{
    compare_layer_latency, per_layer_latency, stragglers, Assertion, DeploymentValidator,
    LatencyBudgetAssertion, LogRecord, LogSet, LogValue, MemoryBudgetAssertion, ValidationContext,
    Verdict, KEY_DECISION, KEY_INFERENCE_LATENCY, KEY_INFERENCE_MEMORY,
};
use mlexray_tensor::Shape;

fn decision(frame: u64, predicted: usize, label: usize) -> LogRecord {
    LogRecord {
        frame,
        key: KEY_DECISION.into(),
        value: LogValue::Decision {
            predicted,
            label: Some(label),
        },
    }
}

fn latency(frame: u64, ns: u64) -> LogRecord {
    LogRecord {
        frame,
        key: KEY_INFERENCE_LATENCY.into(),
        value: LogValue::LatencyNs(ns),
    }
}

fn layer(frame: u64, name: &str, values: Vec<f32>, lat_ns: u64) -> Vec<LogRecord> {
    vec![
        LogRecord {
            frame,
            key: format!("layer/{name}/output"),
            value: LogValue::TensorFull {
                shape: Shape::vector(values.len()),
                values,
            },
        },
        LogRecord {
            frame,
            key: format!("layer/{name}/latency_ns"),
            value: LogValue::LatencyNs(lat_ns),
        },
    ]
}

#[test]
fn report_renders_all_sections() {
    let mut edge_records = vec![decision(0, 0, 1), decision(1, 1, 1), latency(0, 2_000_000)];
    edge_records.extend(layer(0, "conv1", vec![1.0, 2.0], 500_000));
    edge_records.extend(layer(0, "broken", vec![9.0, -9.0], 1_500_000));
    let edge = LogSet::new(edge_records);

    let mut ref_records = vec![decision(0, 1, 1), decision(1, 1, 1), latency(0, 1_000_000)];
    ref_records.extend(layer(0, "conv1", vec![1.0, 2.0], 400_000));
    ref_records.extend(layer(0, "broken", vec![0.5, 0.6], 300_000));
    let reference = LogSet::new(ref_records);

    let report = DeploymentValidator::new().validate(&edge, &reference);
    assert_eq!(report.verdict, Verdict::Degraded);
    assert_eq!(report.suspect_layers, vec!["broken".to_string()]);
    let text = report.to_string();
    assert!(
        text.contains("accuracy: edge 50.0% vs reference 100.0%"),
        "{text}"
    );
    assert!(text.contains("error-prone layers: broken"), "{text}");
    assert!(text.contains("verdict: Degraded"), "{text}");
}

#[test]
fn latency_and_memory_budget_assertions() {
    let edge = LogSet::new(vec![
        latency(0, 80_000_000),
        LogRecord {
            frame: 0,
            key: KEY_INFERENCE_MEMORY.into(),
            value: LogValue::Bytes(10_000_000),
        },
    ]);
    let reference = LogSet::default();
    let ctx = ValidationContext {
        edge: &edge,
        reference: &reference,
    };

    let tight = LatencyBudgetAssertion { budget_ms: 50.0 }.check(&ctx);
    assert_eq!(tight.status, mlexray_core::AssertionStatus::Fail);
    let loose = LatencyBudgetAssertion { budget_ms: 100.0 }.check(&ctx);
    assert_eq!(loose.status, mlexray_core::AssertionStatus::Pass);

    let mem_fail = MemoryBudgetAssertion {
        budget_bytes: 1_000_000,
    }
    .check(&ctx);
    assert_eq!(mem_fail.status, mlexray_core::AssertionStatus::Fail);
    let mem_ok = MemoryBudgetAssertion {
        budget_bytes: 100_000_000,
    }
    .check(&ctx);
    assert_eq!(mem_ok.status, mlexray_core::AssertionStatus::Pass);
}

#[test]
fn cross_pipeline_latency_comparison_finds_slow_kernels() {
    // The §4.5 scenario: the same layers, two devices/resolvers.
    let mut edge_records = Vec::new();
    let mut ref_records = Vec::new();
    for f in 0..3 {
        edge_records.extend(layer(f, "conv", vec![0.0], 200_000_000));
        edge_records.extend(layer(f, "mean", vec![0.0], 1_000_000));
        ref_records.extend(layer(f, "conv", vec![0.0], 1_000_000));
        ref_records.extend(layer(f, "mean", vec![0.0], 900_000));
    }
    let edge = LogSet::new(edge_records);
    let reference = LogSet::new(ref_records);

    let cmp = compare_layer_latency(&edge, &reference);
    let conv = cmp.iter().find(|(n, _, _, _)| n == "conv").unwrap();
    assert!(
        conv.3 > 100.0,
        "conv should be flagged as ~200x slower, ratio {}",
        conv.3
    );
    let mean = cmp.iter().find(|(n, _, _, _)| n == "mean").unwrap();
    assert!(mean.3 < 2.0);

    let lat = per_layer_latency(&edge);
    let s = stragglers(&lat, 0.5);
    assert_eq!(s.len(), 1);
    assert_eq!(s[0].layer_name(), "conv");
}

#[test]
fn validator_without_accuracy_still_uses_assertions() {
    // No decisions logged anywhere: the verdict must come from assertions.
    let edge = LogSet::new(vec![latency(0, 1_000_000)]);
    let reference = LogSet::new(vec![latency(0, 1_000_000)]);
    let report = DeploymentValidator::new().validate(&edge, &reference);
    assert_eq!(report.accuracy.edge, None);
    assert_eq!(report.verdict, Verdict::Healthy);
    let text = report.to_string();
    assert!(text.contains("not available"), "{text}");
}
