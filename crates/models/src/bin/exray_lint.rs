//! `exray-lint` — static analysis over zoo models and serialized graphs.
//!
//! ```text
//! exray-lint [--json] [--deny-warn] [--zoo] [--goldens] [TARGET...]
//! ```
//!
//! Each `TARGET` is either a zoo family name (`mobilenet_v2`,
//! `mini_resnet`, ...) or a path to a JSON artifact holding a serialized
//! `Model` or bare `Graph`. `--zoo` lints every family's checkpoint *and*
//! converted graph; `--goldens` lints the golden kernel suite's graphs.
//! Artifacts are deserialized without the loader's validation step, so a
//! broken file is linted (and its defects reported) rather than refused.
//!
//! Exit status: `0` all targets clean, `1` some target carries a Deny
//! diagnostic (or a Warn under `--deny-warn`), `2` usage error.

use std::process::ExitCode;

use mlexray_models::{by_name, FullFamily, MiniFamily};
use mlexray_nn::analysis::{analyze, LintReport, Severity};
use mlexray_nn::{convert_to_mobile, golden, Graph, Model};

/// Zoo build parameters: small resolutions keep a full sweep under a few
/// seconds while exercising every family's graph-construction path.
const MINI_INPUT: usize = 32;
const FULL_INPUT: usize = 64;
const FULL_WIDTH: f32 = 0.25;
const CLASSES: usize = 10;
const SEED: u64 = 1;

struct Options {
    json: bool,
    deny_warn: bool,
    zoo: bool,
    goldens: bool,
    targets: Vec<String>,
}

fn usage() -> &'static str {
    "usage: exray-lint [--json] [--deny-warn] [--zoo] [--goldens] [TARGET...]\n\
     TARGET: a zoo family name (e.g. mobilenet_v2, mini_resnet) or a path to\n\
     a JSON-serialized Model or Graph"
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        json: false,
        deny_warn: false,
        zoo: false,
        goldens: false,
        targets: Vec::new(),
    };
    for arg in args {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--deny-warn" => opts.deny_warn = true,
            "--zoo" => opts.zoo = true,
            "--goldens" => opts.goldens = true,
            "--help" | "-h" => return Err(String::new()),
            flag if flag.starts_with('-') => return Err(format!("unknown flag '{flag}'")),
            target => opts.targets.push(target.to_string()),
        }
    }
    if !opts.zoo && !opts.goldens && opts.targets.is_empty() {
        return Err("no targets given".into());
    }
    Ok(opts)
}

/// Builds a family's checkpoint and converted graphs (named for reporting).
fn family_graphs(name: &str) -> Result<Vec<(String, Graph)>, String> {
    let zoo = by_name(name).ok_or_else(|| format!("unknown zoo family '{name}'"))?;
    let (input, width) = if name.starts_with("mini_") {
        (MINI_INPUT, 1.0)
    } else {
        (FULL_INPUT, FULL_WIDTH)
    };
    let checkpoint = zoo
        .build_scaled(input, CLASSES, width, SEED)
        .map_err(|e| format!("building '{name}': {e}"))?;
    let mobile = convert_to_mobile(&checkpoint).map_err(|e| format!("converting '{name}': {e}"))?;
    Ok(vec![
        (format!("{name} (checkpoint)"), checkpoint.graph),
        (format!("{name} (converted)"), mobile.graph),
    ])
}

/// Reads a serialized artifact as a `Model`, falling back to a bare
/// `Graph`. Deliberately skips `Model::load_json`'s validation: the linter
/// exists to explain broken artifacts, not to refuse to look at them.
fn load_graph(path: &str) -> Result<(String, Graph), String> {
    let data = std::fs::read_to_string(path).map_err(|e| format!("reading '{path}': {e}"))?;
    if let Ok(model) = serde_json::from_str::<Model>(&data) {
        return Ok((path.to_string(), model.graph));
    }
    match serde_json::from_str::<Graph>(&data) {
        Ok(graph) => Ok((path.to_string(), graph)),
        Err(e) => Err(format!("parsing '{path}' as Model or Graph: {e}")),
    }
}

fn collect_graphs(opts: &Options) -> Result<Vec<(String, Graph)>, String> {
    let mut graphs = Vec::new();
    if opts.zoo {
        for f in FullFamily::ALL {
            graphs.extend(family_graphs(f.name())?);
        }
        for f in MiniFamily::ALL {
            graphs.extend(family_graphs(f.name())?);
        }
    }
    if opts.goldens {
        for case in golden::cases() {
            graphs.push((format!("golden '{}'", case.name), case.graph));
        }
    }
    for target in &opts.targets {
        if target.ends_with(".json") || std::path::Path::new(target).exists() {
            graphs.push(load_graph(target)?);
        } else {
            graphs.extend(family_graphs(target)?);
        }
    }
    Ok(graphs)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("exray-lint: {msg}");
            }
            eprintln!("{}", usage());
            return ExitCode::from(2);
        }
    };
    let graphs = match collect_graphs(&opts) {
        Ok(graphs) => graphs,
        Err(msg) => {
            eprintln!("exray-lint: {msg}");
            return ExitCode::from(2);
        }
    };

    let mut failed = false;
    let mut reports: Vec<(String, LintReport)> = Vec::new();
    for (label, graph) in graphs {
        let report = analyze(&graph);
        let deny = report.count(Severity::Deny);
        let warn = report.count(Severity::Warn);
        if deny > 0 || (opts.deny_warn && warn > 0) {
            failed = true;
        }
        reports.push((label, report));
    }

    if opts.json {
        let body: Vec<String> = reports.iter().map(|(_, r)| r.to_json()).collect();
        println!("[{}]", body.join(","));
    } else {
        for (label, report) in &reports {
            println!("{label}: {report}");
        }
        let denies: usize = reports.iter().map(|(_, r)| r.count(Severity::Deny)).sum();
        let warns: usize = reports.iter().map(|(_, r)| r.count(Severity::Warn)).sum();
        println!(
            "exray-lint: {} graphs, {} deny, {} warn -> {}",
            reports.len(),
            denies,
            warns,
            if failed { "FAIL" } else { "ok" }
        );
    }
    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
