//! Inception v3 (full, checkpoint-style, square-kernel approximation) and a
//! mini multi-branch network.
//!
//! The original's 1x7/7x1 factorized convolutions are approximated with
//! square 3x3 stacks (our kernel inventory is square); branch structure,
//! in-branch average pooling and concatenation are preserved — those are the
//! features the paper's experiments exercise.

use mlexray_nn::{Activation, Model, Padding, Result, TensorId};
use mlexray_tensor::Shape;

use crate::blocks::NetBuilder;

fn scaled(c: usize, width: f32) -> usize {
    ((c as f32 * width).round() as usize).max(4)
}

/// Inception-A style module: 1x1, 5x5, double-3x3 and pooled branches.
fn inception_a(nb: &mut NetBuilder, tag: &str, x: TensorId, width: f32) -> Result<TensorId> {
    let b1 = nb.conv_bn_act(
        &format!("{tag}/b1"),
        x,
        scaled(64, width),
        1,
        1,
        Padding::Same,
        Activation::Relu,
    )?;
    let b2a = nb.conv_bn_act(
        &format!("{tag}/b2a"),
        x,
        scaled(48, width),
        1,
        1,
        Padding::Same,
        Activation::Relu,
    )?;
    let b2 = nb.conv_bn_act(
        &format!("{tag}/b2b"),
        b2a,
        scaled(64, width),
        5,
        1,
        Padding::Same,
        Activation::Relu,
    )?;
    let b3a = nb.conv_bn_act(
        &format!("{tag}/b3a"),
        x,
        scaled(64, width),
        1,
        1,
        Padding::Same,
        Activation::Relu,
    )?;
    let b3b = nb.conv_bn_act(
        &format!("{tag}/b3b"),
        b3a,
        scaled(96, width),
        3,
        1,
        Padding::Same,
        Activation::Relu,
    )?;
    let b3 = nb.conv_bn_act(
        &format!("{tag}/b3c"),
        b3b,
        scaled(96, width),
        3,
        1,
        Padding::Same,
        Activation::Relu,
    )?;
    let pool =
        nb.b.avg_pool2d(format!("{tag}/pool"), x, 3, 3, 1, Padding::Same)?;
    let b4 = nb.conv_bn_act(
        &format!("{tag}/b4"),
        pool,
        scaled(64, width),
        1,
        1,
        Padding::Same,
        Activation::Relu,
    )?;
    nb.b.concat(format!("{tag}/concat"), &[b1, b2, b3, b4], 3)
}

/// Inception-B style module (square-kernel approximation of the 7x1/1x7
/// factorized branches).
fn inception_b(nb: &mut NetBuilder, tag: &str, x: TensorId, width: f32) -> Result<TensorId> {
    let b1 = nb.conv_bn_act(
        &format!("{tag}/b1"),
        x,
        scaled(192, width),
        1,
        1,
        Padding::Same,
        Activation::Relu,
    )?;
    let b2a = nb.conv_bn_act(
        &format!("{tag}/b2a"),
        x,
        scaled(128, width),
        1,
        1,
        Padding::Same,
        Activation::Relu,
    )?;
    let b2 = nb.conv_bn_act(
        &format!("{tag}/b2b"),
        b2a,
        scaled(192, width),
        3,
        1,
        Padding::Same,
        Activation::Relu,
    )?;
    let b3a = nb.conv_bn_act(
        &format!("{tag}/b3a"),
        x,
        scaled(128, width),
        1,
        1,
        Padding::Same,
        Activation::Relu,
    )?;
    let b3b = nb.conv_bn_act(
        &format!("{tag}/b3b"),
        b3a,
        scaled(128, width),
        3,
        1,
        Padding::Same,
        Activation::Relu,
    )?;
    let b3 = nb.conv_bn_act(
        &format!("{tag}/b3c"),
        b3b,
        scaled(192, width),
        3,
        1,
        Padding::Same,
        Activation::Relu,
    )?;
    let pool =
        nb.b.avg_pool2d(format!("{tag}/pool"), x, 3, 3, 1, Padding::Same)?;
    let b4 = nb.conv_bn_act(
        &format!("{tag}/b4"),
        pool,
        scaled(192, width),
        1,
        1,
        Padding::Same,
        Activation::Relu,
    )?;
    nb.b.concat(format!("{tag}/concat"), &[b1, b2, b3, b4], 3)
}

/// Inception-C style module.
fn inception_c(nb: &mut NetBuilder, tag: &str, x: TensorId, width: f32) -> Result<TensorId> {
    let b1 = nb.conv_bn_act(
        &format!("{tag}/b1"),
        x,
        scaled(320, width),
        1,
        1,
        Padding::Same,
        Activation::Relu,
    )?;
    let b2a = nb.conv_bn_act(
        &format!("{tag}/b2a"),
        x,
        scaled(384, width),
        1,
        1,
        Padding::Same,
        Activation::Relu,
    )?;
    let b2 = nb.conv_bn_act(
        &format!("{tag}/b2b"),
        b2a,
        scaled(768, width),
        3,
        1,
        Padding::Same,
        Activation::Relu,
    )?;
    let b3a = nb.conv_bn_act(
        &format!("{tag}/b3a"),
        x,
        scaled(448, width),
        1,
        1,
        Padding::Same,
        Activation::Relu,
    )?;
    let b3b = nb.conv_bn_act(
        &format!("{tag}/b3b"),
        b3a,
        scaled(384, width),
        3,
        1,
        Padding::Same,
        Activation::Relu,
    )?;
    let b3 = nb.conv_bn_act(
        &format!("{tag}/b3c"),
        b3b,
        scaled(768, width),
        3,
        1,
        Padding::Same,
        Activation::Relu,
    )?;
    let pool =
        nb.b.avg_pool2d(format!("{tag}/pool"), x, 3, 3, 1, Padding::Same)?;
    let b4 = nb.conv_bn_act(
        &format!("{tag}/b4"),
        pool,
        scaled(192, width),
        1,
        1,
        Padding::Same,
        Activation::Relu,
    )?;
    nb.b.concat(format!("{tag}/concat"), &[b1, b2, b3, b4], 3)
}

fn reduction(
    nb: &mut NetBuilder,
    tag: &str,
    x: TensorId,
    a: usize,
    b: usize,
    width: f32,
) -> Result<TensorId> {
    let r1 = nb.conv_bn_act(
        &format!("{tag}/r1"),
        x,
        scaled(a, width),
        3,
        2,
        Padding::Same,
        Activation::Relu,
    )?;
    let r2a = nb.conv_bn_act(
        &format!("{tag}/r2a"),
        x,
        scaled(b, width),
        1,
        1,
        Padding::Same,
        Activation::Relu,
    )?;
    let r2b = nb.conv_bn_act(
        &format!("{tag}/r2b"),
        r2a,
        scaled(b, width),
        3,
        1,
        Padding::Same,
        Activation::Relu,
    )?;
    let r2 = nb.conv_bn_act(
        &format!("{tag}/r2c"),
        r2b,
        scaled(b, width),
        3,
        2,
        Padding::Same,
        Activation::Relu,
    )?;
    let pool =
        nb.b.max_pool2d(format!("{tag}/pool"), x, 3, 3, 2, Padding::Same)?;
    nb.b.concat(format!("{tag}/concat"), &[r1, r2, pool], 3)
}

/// Full-size Inception v3 (square-kernel approximation).
///
/// # Errors
///
/// Propagates graph-construction errors (`input` must be ≥ 64).
pub fn inception_v3(input: usize, classes: usize, width: f32, seed: u64) -> Result<Model> {
    let mut nb = NetBuilder::new("inception_v3", seed);
    let x = nb.b.input("image", Shape::nhwc(1, input, input, 3));
    let mut y = nb.conv_bn_act(
        "stem/c1",
        x,
        scaled(32, width),
        3,
        2,
        Padding::Same,
        Activation::Relu,
    )?;
    y = nb.conv_bn_act(
        "stem/c2",
        y,
        scaled(32, width),
        3,
        1,
        Padding::Same,
        Activation::Relu,
    )?;
    y = nb.conv_bn_act(
        "stem/c3",
        y,
        scaled(64, width),
        3,
        1,
        Padding::Same,
        Activation::Relu,
    )?;
    y = nb.b.max_pool2d("stem/pool1", y, 3, 3, 2, Padding::Same)?;
    y = nb.conv_bn_act(
        "stem/c4",
        y,
        scaled(80, width),
        1,
        1,
        Padding::Same,
        Activation::Relu,
    )?;
    y = nb.conv_bn_act(
        "stem/c5",
        y,
        scaled(192, width),
        3,
        1,
        Padding::Same,
        Activation::Relu,
    )?;
    y = nb.b.max_pool2d("stem/pool2", y, 3, 3, 2, Padding::Same)?;
    for i in 0..3 {
        y = inception_a(&mut nb, &format!("mixedA{i}"), y, width)?;
    }
    y = reduction(&mut nb, "reductionA", y, 384, 96, width)?;
    for i in 0..4 {
        y = inception_b(&mut nb, &format!("mixedB{i}"), y, width)?;
    }
    y = reduction(&mut nb, "reductionB", y, 320, 192, width)?;
    for i in 0..2 {
        y = inception_c(&mut nb, &format!("mixedC{i}"), y, width)?;
    }
    let out = nb.mean_fc_softmax(y, classes)?;
    nb.b.output(out);
    Ok(Model::checkpoint(nb.b.finish()?, "inception_v3"))
}

/// Mini multi-branch network with an in-branch average pool and concat.
///
/// # Errors
///
/// Propagates graph-construction errors.
pub fn mini_inception(input: usize, classes: usize, seed: u64) -> Result<Model> {
    let mut nb = NetBuilder::new("mini_inception", seed);
    let x = nb.b.input("image", Shape::nhwc(1, input, input, 3));
    let y = nb.conv_act("stem", x, 8, 3, 2, Padding::Same, Activation::Relu)?;
    let b1 = nb.conv_act("mixed/b1", y, 8, 1, 1, Padding::Same, Activation::Relu)?;
    let b2a = nb.conv_act("mixed/b2a", y, 4, 1, 1, Padding::Same, Activation::Relu)?;
    let b2 = nb.conv_act("mixed/b2b", b2a, 8, 3, 1, Padding::Same, Activation::Relu)?;
    let pool = nb.b.avg_pool2d("mixed/pool", y, 3, 3, 1, Padding::Same)?;
    let b3 = nb.conv_act("mixed/b3", pool, 4, 1, 1, Padding::Same, Activation::Relu)?;
    let cat = nb.b.concat("mixed/concat", &[b1, b2, b3], 3)?;
    let head = nb.conv_act("head", cat, 16, 3, 2, Padding::Same, Activation::Relu)?;
    let out = nb.mean_fc_softmax(head, classes)?;
    nb.b.output(out);
    Ok(Model::checkpoint(nb.b.finish()?, "mini_inception"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlexray_nn::{Interpreter, InterpreterOptions, OpKind};
    use mlexray_tensor::Tensor;

    #[test]
    fn full_inception_scale() {
        let m = inception_v3(64, 1000, 1.0, 1).unwrap();
        let params = m.graph.param_count();
        // Paper Table 3: 23.9M; our square-kernel approximation lands nearby.
        assert!((15_000_000..32_000_000).contains(&params), "{params}");
        assert!(m.graph.layer_count() > 200, "{}", m.graph.layer_count());
    }

    #[test]
    fn inception_has_branch_avgpools() {
        let m = inception_v3(64, 10, 0.25, 1).unwrap();
        let pools = m
            .graph
            .nodes()
            .iter()
            .filter(|n| matches!(n.op, OpKind::AveragePool2d { pool_h: 3, .. }))
            .count();
        assert_eq!(pools, 9, "A(3) + B(4) + C(2) branch pools");
    }

    #[test]
    fn mini_inception_runs() {
        let m = mini_inception(32, 8, 4).unwrap();
        let mut interp = Interpreter::new(&m.graph, InterpreterOptions::optimized()).unwrap();
        let p = interp
            .invoke(&[Tensor::filled_f32(Shape::nhwc(1, 32, 32, 3), 0.1)])
            .unwrap();
        let v = p[0].as_f32().unwrap();
        assert!((v.iter().sum::<f32>() - 1.0).abs() < 1e-4);
    }
}
