//! MobileNet v1 / v2 / v3-small, full-size (checkpoint-style) and mini
//! (trainable) variants.
//!
//! The architectural details that matter to the paper's experiments are kept
//! faithful:
//!
//! * v1/v2 end in the **`Mean`** op; v3 ends in (and its squeeze-excite
//!   blocks contain) the **`AveragePool2d`** op. These are different TFLite
//!   ops, which is exactly why v1/v2 survive quantization in Fig. 5 while v3
//!   collapses under the broken quantized average pool.
//! * v2/v3 use inverted residual blocks with `Add`; v3 adds SE gates
//!   (`Mul`) and hard-swish.

use mlexray_nn::{Activation, Model, Padding, Result, TensorId};
use mlexray_tensor::Shape;

use crate::blocks::NetBuilder;

fn scaled(c: usize, width: f32) -> usize {
    ((c as f32 * width).round() as usize).max(4)
}

/// Full-size MobileNet v1 (checkpoint-style: conv + BN + ReLU6 units).
///
/// # Errors
///
/// Propagates graph-construction errors (e.g. `input` too small).
pub fn mobilenet_v1(input: usize, classes: usize, width: f32, seed: u64) -> Result<Model> {
    let mut nb = NetBuilder::new("mobilenet_v1", seed);
    let x = nb.b.input("image", Shape::nhwc(1, input, input, 3));
    let mut y = nb.conv_bn_act(
        "stem",
        x,
        scaled(32, width),
        3,
        2,
        Padding::Same,
        Activation::Relu6,
    )?;
    // (stride, out_channels) of the 13 depthwise-separable blocks.
    let blocks: [(usize, usize); 13] = [
        (1, 64),
        (2, 128),
        (1, 128),
        (2, 256),
        (1, 256),
        (2, 512),
        (1, 512),
        (1, 512),
        (1, 512),
        (1, 512),
        (1, 512),
        (2, 1024),
        (1, 1024),
    ];
    for (i, &(stride, out_c)) in blocks.iter().enumerate() {
        y = nb.dwconv_bn_act(&format!("block{i}/dw"), y, 3, stride, Activation::Relu6)?;
        y = nb.conv_bn_act(
            &format!("block{i}/pw"),
            y,
            scaled(out_c, width),
            1,
            1,
            Padding::Same,
            Activation::Relu6,
        )?;
    }
    let out = nb.mean_fc_softmax(y, classes)?;
    nb.b.output(out);
    Ok(Model::checkpoint(nb.b.finish()?, "mobilenet_v1"))
}

/// One v2 inverted-residual bottleneck (checkpoint-style).
fn inverted_residual(
    nb: &mut NetBuilder,
    tag: &str,
    x: TensorId,
    expand: usize,
    out_c: usize,
    stride: usize,
) -> Result<TensorId> {
    let in_c = nb.b.shape_of(x).dims()[3];
    let mut y = x;
    if expand != in_c {
        y = nb.conv_bn_act(
            &format!("{tag}/expand"),
            y,
            expand,
            1,
            1,
            Padding::Same,
            Activation::Relu6,
        )?;
    }
    y = nb.dwconv_bn_act(&format!("{tag}/dw"), y, 3, stride, Activation::Relu6)?;
    y = nb.conv_bn_act(
        &format!("{tag}/project"),
        y,
        out_c,
        1,
        1,
        Padding::Same,
        Activation::None,
    )?;
    if stride == 1 && in_c == out_c {
        y = nb.b.add(format!("{tag}/add"), x, y, Activation::None)?;
    }
    Ok(y)
}

/// Full-size MobileNet v2.
///
/// # Errors
///
/// Propagates graph-construction errors.
pub fn mobilenet_v2(input: usize, classes: usize, width: f32, seed: u64) -> Result<Model> {
    let mut nb = NetBuilder::new("mobilenet_v2", seed);
    let x = nb.b.input("image", Shape::nhwc(1, input, input, 3));
    let mut y = nb.conv_bn_act(
        "stem",
        x,
        scaled(32, width),
        3,
        2,
        Padding::Same,
        Activation::Relu6,
    )?;
    // (expansion factor, out_channels, repeats, first stride).
    let settings: [(usize, usize, usize, usize); 7] = [
        (1, 16, 1, 1),
        (6, 24, 2, 2),
        (6, 32, 3, 2),
        (6, 64, 4, 2),
        (6, 96, 3, 1),
        (6, 160, 3, 2),
        (6, 320, 1, 1),
    ];
    let mut idx = 0;
    for &(t, c, n, s) in &settings {
        for r in 0..n {
            let in_c = nb.b.shape_of(y).dims()[3];
            let stride = if r == 0 { s } else { 1 };
            y = inverted_residual(
                &mut nb,
                &format!("bneck{idx}"),
                y,
                t * in_c,
                scaled(c, width),
                stride,
            )?;
            idx += 1;
        }
    }
    y = nb.conv_bn_act(
        "head",
        y,
        scaled(1280, width),
        1,
        1,
        Padding::Same,
        Activation::Relu6,
    )?;
    let out = nb.mean_fc_softmax(y, classes)?;
    nb.b.output(out);
    Ok(Model::checkpoint(nb.b.finish()?, "mobilenet_v2"))
}

/// Squeeze-excite gate built around the `AveragePool2d` op (§4.4's culprit).
fn squeeze_excite(nb: &mut NetBuilder, tag: &str, x: TensorId) -> Result<TensorId> {
    let c = nb.b.shape_of(x).dims()[3];
    let pooled = nb.b.avg_pool_global(format!("{tag}/se/pool"), x)?;
    let reduced = nb.conv_act(
        &format!("{tag}/se/reduce"),
        pooled,
        (c / 4).max(2),
        1,
        1,
        Padding::Same,
        Activation::Relu,
    )?;
    let gate = nb.conv_act(
        &format!("{tag}/se/expand"),
        reduced,
        c,
        1,
        1,
        Padding::Same,
        Activation::HardSigmoid,
    )?;
    nb.b.mul(format!("{tag}/se/scale"), x, gate)
}

/// One v3 bottleneck with optional squeeze-excite.
#[allow(clippy::too_many_arguments)]
fn v3_bneck(
    nb: &mut NetBuilder,
    tag: &str,
    x: TensorId,
    k: usize,
    expand: usize,
    out_c: usize,
    se: bool,
    act: Activation,
    stride: usize,
) -> Result<TensorId> {
    let in_c = nb.b.shape_of(x).dims()[3];
    let mut y = x;
    if expand != in_c {
        y = nb.conv_bn_act(
            &format!("{tag}/expand"),
            y,
            expand,
            1,
            1,
            Padding::Same,
            act,
        )?;
    }
    y = nb.dwconv_bn_act(&format!("{tag}/dw"), y, k, stride, act)?;
    if se {
        y = squeeze_excite(nb, tag, y)?;
    }
    y = nb.conv_bn_act(
        &format!("{tag}/project"),
        y,
        out_c,
        1,
        1,
        Padding::Same,
        Activation::None,
    )?;
    if stride == 1 && in_c == out_c {
        y = nb.b.add(format!("{tag}/add"), x, y, Activation::None)?;
    }
    Ok(y)
}

/// Full-size MobileNet v3-small.
///
/// # Errors
///
/// Propagates graph-construction errors.
pub fn mobilenet_v3_small(input: usize, classes: usize, width: f32, seed: u64) -> Result<Model> {
    use Activation::{HardSwish as HS, Relu as RE};
    let mut nb = NetBuilder::new("mobilenet_v3_small", seed);
    let x = nb.b.input("image", Shape::nhwc(1, input, input, 3));
    let mut y = nb.conv_bn_act("stem", x, scaled(16, width), 3, 2, Padding::Same, HS)?;
    // (kernel, expansion, out, SE?, activation, stride) — the v3-small table.
    let blocks: [(usize, usize, usize, bool, Activation, usize); 11] = [
        (3, 16, 16, true, RE, 2),
        (3, 72, 24, false, RE, 2),
        (3, 88, 24, false, RE, 1),
        (5, 96, 40, true, HS, 2),
        (5, 240, 40, true, HS, 1),
        (5, 240, 40, true, HS, 1),
        (5, 120, 48, true, HS, 1),
        (5, 144, 48, true, HS, 1),
        (5, 288, 96, true, HS, 2),
        (5, 576, 96, true, HS, 1),
        (5, 576, 96, true, HS, 1),
    ];
    for (i, &(k, e, c, se, act, s)) in blocks.iter().enumerate() {
        y = v3_bneck(
            &mut nb,
            &format!("bneck{i}"),
            y,
            k,
            scaled(e, width),
            scaled(c, width),
            se,
            act,
            s,
        )?;
    }
    y = nb.conv_bn_act("head", y, scaled(576, width), 1, 1, Padding::Same, HS)?;
    // v3 pools with AveragePool2d, not Mean.
    let pooled = nb.b.avg_pool_global("final_pool", y)?;
    let pre = nb.conv_act(
        "pre_logits",
        pooled,
        scaled(1024, width),
        1,
        1,
        Padding::Same,
        HS,
    )?;
    let flat_c = nb.b.shape_of(pre).dims()[3];
    let flat = nb.b.reshape("flatten", pre, vec![1, flat_c])?;
    let logits = nb.fc("classifier", flat, classes, Activation::None)?;
    let out = nb.b.softmax("softmax", logits)?;
    nb.b.output(out);
    Ok(Model::checkpoint(nb.b.finish()?, "mobilenet_v3_small"))
}

/// Mini MobileNet v1: the depthwise-separable stack at trainable scale
/// (no batch-norm; fused activations).
///
/// # Errors
///
/// Propagates graph-construction errors.
pub fn mini_v1(input: usize, classes: usize, seed: u64) -> Result<Model> {
    let mut nb = NetBuilder::new("mini_mobilenet_v1", seed);
    let x = nb.b.input("image", Shape::nhwc(1, input, input, 3));
    let mut y = nb.conv_act("stem", x, 8, 3, 2, Padding::Same, Activation::Relu6)?;
    for (i, &(stride, out_c)) in [(1usize, 16usize), (2, 24), (1, 24)].iter().enumerate() {
        y = nb.dwconv_act(&format!("block{i}/dw"), y, 3, stride, Activation::Relu6)?;
        y = nb.conv_act(
            &format!("block{i}/pw"),
            y,
            out_c,
            1,
            1,
            Padding::Same,
            Activation::Relu6,
        )?;
    }
    let out = nb.mean_fc_softmax(y, classes)?;
    nb.b.output(out);
    Ok(Model::checkpoint(nb.b.finish()?, "mini_mobilenet_v1"))
}

fn mini_inverted_residual(
    nb: &mut NetBuilder,
    tag: &str,
    x: TensorId,
    expand: usize,
    out_c: usize,
    stride: usize,
) -> Result<TensorId> {
    let in_c = nb.b.shape_of(x).dims()[3];
    let mut y = nb.conv_act(
        &format!("{tag}/expand"),
        x,
        expand,
        1,
        1,
        Padding::Same,
        Activation::Relu6,
    )?;
    y = nb.dwconv_act(&format!("{tag}/dw"), y, 3, stride, Activation::Relu6)?;
    y = nb.conv_act(
        &format!("{tag}/project"),
        y,
        out_c,
        1,
        1,
        Padding::Same,
        Activation::None,
    )?;
    if stride == 1 && in_c == out_c {
        y = nb.b.add(format!("{tag}/add"), x, y, Activation::None)?;
    }
    Ok(y)
}

/// Mini MobileNet v2: inverted residuals with `Add` and a `Mean` head.
///
/// # Errors
///
/// Propagates graph-construction errors.
pub fn mini_v2(input: usize, classes: usize, seed: u64) -> Result<Model> {
    let mut nb = NetBuilder::new("mini_mobilenet_v2", seed);
    let x = nb.b.input("image", Shape::nhwc(1, input, input, 3));
    let mut y = nb.conv_act("stem", x, 8, 3, 2, Padding::Same, Activation::Relu6)?;
    y = mini_inverted_residual(&mut nb, "bneck0", y, 16, 8, 1)?;
    y = mini_inverted_residual(&mut nb, "bneck1", y, 24, 12, 2)?;
    y = mini_inverted_residual(&mut nb, "bneck2", y, 24, 12, 1)?;
    y = nb.conv_act("head", y, 32, 1, 1, Padding::Same, Activation::Relu6)?;
    let out = nb.mean_fc_softmax(y, classes)?;
    nb.b.output(out);
    Ok(Model::checkpoint(nb.b.finish()?, "mini_mobilenet_v2"))
}

/// Mini MobileNet v3: SE blocks (`AveragePool2d` + `Mul` gates), hard-swish,
/// and an `AveragePool2d` head — the quantization victim of Fig. 5/6.
///
/// # Errors
///
/// Propagates graph-construction errors.
pub fn mini_v3(input: usize, classes: usize, seed: u64) -> Result<Model> {
    use Activation::HardSwish as HS;
    let mut nb = NetBuilder::new("mini_mobilenet_v3", seed);
    let x = nb.b.input("image", Shape::nhwc(1, input, input, 3));
    let mut y = nb.conv_act("stem", x, 8, 3, 2, Padding::Same, HS)?;

    // Two SE bottlenecks.
    for (i, &(expand, out_c, stride)) in
        [(16usize, 12usize, 2usize), (24, 12, 1)].iter().enumerate()
    {
        let tag = format!("bneck{i}");
        let in_c = nb.b.shape_of(y).dims()[3];
        let mut z = nb.conv_act(&format!("{tag}/expand"), y, expand, 1, 1, Padding::Same, HS)?;
        z = nb.dwconv_act(&format!("{tag}/dw"), z, 3, stride, Activation::Relu)?;
        z = squeeze_excite(&mut nb, &tag, z)?;
        z = nb.conv_act(
            &format!("{tag}/project"),
            z,
            out_c,
            1,
            1,
            Padding::Same,
            Activation::None,
        )?;
        if stride == 1 && in_c == out_c {
            z = nb.b.add(format!("{tag}/add"), y, z, Activation::None)?;
        }
        y = z;
    }
    y = nb.conv_act("head", y, 32, 1, 1, Padding::Same, HS)?;
    let pooled = nb.b.avg_pool_global("final_pool", y)?;
    let flat = nb.b.reshape("flatten", pooled, vec![1, 32])?;
    let logits = nb.fc("classifier", flat, classes, Activation::None)?;
    let out = nb.b.softmax("softmax", logits)?;
    nb.b.output(out);
    Ok(Model::checkpoint(nb.b.finish()?, "mini_mobilenet_v3"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlexray_nn::{Interpreter, InterpreterOptions, OpKind};
    use mlexray_tensor::Tensor;

    fn run(model: &Model, input: usize) -> Vec<f32> {
        let mut interp = Interpreter::new(&model.graph, InterpreterOptions::optimized()).unwrap();
        let x = Tensor::filled_f32(Shape::nhwc(1, input, input, 3), 0.1);
        interp.invoke(&[x]).unwrap()[0].as_f32().unwrap().to_vec()
    }

    #[test]
    fn v1_structure() {
        let m = mobilenet_v1(64, 10, 0.25, 1).unwrap();
        // 27 conv units * 3 nodes + mean + fc + softmax.
        assert_eq!(m.graph.layer_count(), 27 * 3 + 3);
        let p = run(&m, 64);
        assert_eq!(p.len(), 10);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn v1_full_width_params_match_paper_scale() {
        let m = mobilenet_v1(32, 1000, 1.0, 1).unwrap();
        let params = m.graph.param_count();
        // Paper Table 3: 4.2M.
        assert!((3_500_000..5_500_000).contains(&params), "{params}");
    }

    #[test]
    fn v2_has_more_layers_than_v1_and_uses_mean() {
        let v1 = mobilenet_v1(64, 10, 0.25, 1).unwrap();
        let v2 = mobilenet_v2(64, 10, 0.25, 1).unwrap();
        assert!(v2.graph.layer_count() > v1.graph.layer_count());
        assert!(v2
            .graph
            .nodes()
            .iter()
            .any(|n| matches!(n.op, OpKind::Mean)));
        assert!(!v2
            .graph
            .nodes()
            .iter()
            .any(|n| matches!(n.op, OpKind::AveragePool2d { .. })));
    }

    #[test]
    fn v3_uses_avgpool_not_only_mean() {
        let v3 = mobilenet_v3_small(64, 10, 0.25, 1).unwrap();
        let avgpools = v3
            .graph
            .nodes()
            .iter()
            .filter(|n| matches!(n.op, OpKind::AveragePool2d { .. }))
            .count();
        // 9 SE blocks + the final pool.
        assert!(avgpools >= 9, "found {avgpools} AveragePool2d nodes");
        let p = run(&v3, 64);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn minis_run_and_are_small() {
        for m in [
            mini_v1(32, 8, 1).unwrap(),
            mini_v2(32, 8, 1).unwrap(),
            mini_v3(32, 8, 1).unwrap(),
        ] {
            assert!(m.graph.param_count() < 60_000, "{} too big", m.family);
            let p = run(&m, 32);
            assert_eq!(p.len(), 8);
            assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn mini_v3_contains_se_avgpool() {
        let m = mini_v3(32, 8, 1).unwrap();
        let avgpools = m
            .graph
            .nodes()
            .iter()
            .filter(|n| matches!(n.op, OpKind::AveragePool2d { .. }))
            .count();
        assert_eq!(avgpools, 3, "two SE pools + final pool");
    }

    #[test]
    fn full_models_convert_and_shrink() {
        let m = mobilenet_v2(64, 10, 0.25, 1).unwrap();
        let mobile = mlexray_nn::convert_to_mobile(&m).unwrap();
        assert!(mobile.graph.layer_count() < m.graph.layer_count() / 2);
    }
}
