//! Registry of model families and their canonical preprocessing.
//!
//! The per-family preprocessing differences are intentional and faithful to
//! the paper's §1 example: "a MobileNet model takes an RGB image of
//! `[-1.0, 1.0]` as input, whereas a VGG model takes a BGR image, and a
//! DenseNet model takes `[0.0, 1.0]` inputs" — the information that gets
//! lost in the hand-off from training to deployment.

use mlexray_nn::{Model, Result};
use mlexray_preprocess::{ImagePreprocessConfig, NormalizationScheme};

use crate::{densenet, inception, mobilenet, resnet};

/// Full-size architecture families (Tables 2–5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FullFamily {
    /// MobileNet v1.
    MobileNetV1,
    /// MobileNet v2.
    MobileNetV2,
    /// MobileNet v3-small.
    MobileNetV3Small,
    /// ResNet-50 v2.
    ResNet50V2,
    /// Inception v3.
    InceptionV3,
    /// DenseNet-121.
    DenseNet121,
}

impl FullFamily {
    /// The five models of Tables 3/5, in the paper's row order, plus v3.
    pub const ALL: [FullFamily; 6] = [
        FullFamily::MobileNetV1,
        FullFamily::MobileNetV2,
        FullFamily::ResNet50V2,
        FullFamily::InceptionV3,
        FullFamily::DenseNet121,
        FullFamily::MobileNetV3Small,
    ];

    /// Family name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            FullFamily::MobileNetV1 => "mobilenet_v1",
            FullFamily::MobileNetV2 => "mobilenet_v2",
            FullFamily::MobileNetV3Small => "mobilenet_v3_small",
            FullFamily::ResNet50V2 => "resnet50_v2",
            FullFamily::InceptionV3 => "inception_v3",
            FullFamily::DenseNet121 => "densenet121",
        }
    }
}

/// Builds a full-size checkpoint model.
///
/// # Errors
///
/// Propagates graph-construction errors (input resolutions below ~32 are
/// rejected by the deeper families).
pub fn full_model(
    family: FullFamily,
    input: usize,
    classes: usize,
    width: f32,
    seed: u64,
) -> Result<Model> {
    match family {
        FullFamily::MobileNetV1 => mobilenet::mobilenet_v1(input, classes, width, seed),
        FullFamily::MobileNetV2 => mobilenet::mobilenet_v2(input, classes, width, seed),
        FullFamily::MobileNetV3Small => mobilenet::mobilenet_v3_small(input, classes, width, seed),
        FullFamily::ResNet50V2 => resnet::resnet50_v2(input, classes, width, seed),
        FullFamily::InceptionV3 => inception::inception_v3(input, classes, width, seed),
        FullFamily::DenseNet121 => densenet::densenet121(input, classes, width, seed),
    }
}

/// Mini (trainable) architecture families (Figs. 4–6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MiniFamily {
    /// Depthwise-separable stack (MobileNet v1 signature).
    MiniV1,
    /// Inverted residuals + `Mean` head (v2 signature).
    MiniV2,
    /// SE blocks + `AveragePool2d` head (v3 signature).
    MiniV3,
    /// Residual blocks (ResNet signature).
    MiniResNet,
    /// Parallel branches + in-branch pooling (Inception signature).
    MiniInception,
    /// Dense concatenation (DenseNet signature).
    MiniDenseNet,
}

impl MiniFamily {
    /// All mini families, in the Fig. 4(a)/Fig. 5 order.
    pub const ALL: [MiniFamily; 6] = [
        MiniFamily::MiniV1,
        MiniFamily::MiniV2,
        MiniFamily::MiniV3,
        MiniFamily::MiniResNet,
        MiniFamily::MiniInception,
        MiniFamily::MiniDenseNet,
    ];

    /// Family name.
    pub fn name(self) -> &'static str {
        match self {
            MiniFamily::MiniV1 => "mini_mobilenet_v1",
            MiniFamily::MiniV2 => "mini_mobilenet_v2",
            MiniFamily::MiniV3 => "mini_mobilenet_v3",
            MiniFamily::MiniResNet => "mini_resnet",
            MiniFamily::MiniInception => "mini_inception",
            MiniFamily::MiniDenseNet => "mini_densenet",
        }
    }

    /// Short label for figure rows.
    pub fn label(self) -> &'static str {
        match self {
            MiniFamily::MiniV1 => "MobileNetv1",
            MiniFamily::MiniV2 => "MobileNetv2",
            MiniFamily::MiniV3 => "MobileNetv3",
            MiniFamily::MiniResNet => "Resnet50v2",
            MiniFamily::MiniInception => "Inceptionv3",
            MiniFamily::MiniDenseNet => "Densenet121",
        }
    }
}

/// Builds a mini (trainable) model with fresh random weights.
///
/// # Errors
///
/// Propagates graph-construction errors.
pub fn mini_model(family: MiniFamily, input: usize, classes: usize, seed: u64) -> Result<Model> {
    match family {
        MiniFamily::MiniV1 => mobilenet::mini_v1(input, classes, seed),
        MiniFamily::MiniV2 => mobilenet::mini_v2(input, classes, seed),
        MiniFamily::MiniV3 => mobilenet::mini_v3(input, classes, seed),
        MiniFamily::MiniResNet => resnet::mini_resnet(input, classes, seed),
        MiniFamily::MiniInception => inception::mini_inception(input, classes, seed),
        MiniFamily::MiniDenseNet => densenet::mini_densenet(input, classes, seed),
    }
}

/// Either tier of the zoo, resolved from a family-name string — what lets
/// the serving registry and CLI-style configs name models (`"mobilenet_v2"`,
/// `"mini_resnet"`) without matching on the tier enums at every call site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ZooModel {
    /// A full-size checkpoint architecture.
    Full(FullFamily),
    /// A mini (trainable) architecture.
    Mini(MiniFamily),
}

impl ZooModel {
    /// The family name this entry resolves back to (`by_name` round-trips).
    pub fn name(self) -> &'static str {
        match self {
            ZooModel::Full(f) => f.name(),
            ZooModel::Mini(f) => f.name(),
        }
    }

    /// Builds the model at an explicit width multiplier (full-size tiers
    /// only; minis have fixed width and ignore it).
    ///
    /// # Errors
    ///
    /// Propagates graph-construction errors.
    pub fn build_scaled(
        self,
        input: usize,
        classes: usize,
        width: f32,
        seed: u64,
    ) -> Result<Model> {
        match self {
            ZooModel::Full(f) => full_model(f, input, classes, width, seed),
            ZooModel::Mini(f) => mini_model(f, input, classes, seed),
        }
    }

    /// Builds the model at its canonical width (1.0 for full-size tiers).
    ///
    /// # Errors
    ///
    /// Propagates graph-construction errors.
    pub fn build(self, input: usize, classes: usize, seed: u64) -> Result<Model> {
        self.build_scaled(input, classes, 1.0, seed)
    }

    /// This family's canonical preprocessing at the given input resolution.
    pub fn canonical_preprocess(self, input: usize) -> ImagePreprocessConfig {
        canonical_preprocess(self.name(), input)
    }
}

/// Looks a zoo family up by its table name (`FullFamily::name` /
/// `MiniFamily::name` spelling, e.g. `"mobilenet_v2"` or
/// `"mini_densenet"`). Returns `None` for unknown names.
pub fn by_name(name: &str) -> Option<ZooModel> {
    FullFamily::ALL
        .into_iter()
        .find(|f| f.name() == name)
        .map(ZooModel::Full)
        .or_else(|| {
            MiniFamily::ALL
                .into_iter()
                .find(|f| f.name() == name)
                .map(ZooModel::Mini)
        })
}

/// Canonical preprocessing of a model family: what the training pipeline
/// used and what the reference pipeline replays. Deployments that deviate
/// from this configuration are, by definition, carrying a §4.3 bug.
pub fn canonical_preprocess(family: &str, input: usize) -> ImagePreprocessConfig {
    if family.contains("densenet") {
        // DenseNet family: [0, 1] inputs.
        ImagePreprocessConfig::densenet_style(input, input)
    } else if family.contains("resnet") {
        // ResNet family: ImageNet mean/std.
        ImagePreprocessConfig {
            normalization: NormalizationScheme::MeanStd {
                mean: [0.485, 0.456, 0.406],
                std: [0.229, 0.224, 0.225],
            },
            ..ImagePreprocessConfig::mobilenet_style(input, input)
        }
    } else {
        // MobileNet/Inception family: [-1, 1] inputs.
        ImagePreprocessConfig::mobilenet_style(input, input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlexray_preprocess::ChannelOrder;

    #[test]
    fn every_mini_family_builds() {
        for f in MiniFamily::ALL {
            let m = mini_model(f, 32, 8, 1).unwrap();
            assert_eq!(m.family, f.name());
            assert!(m.graph.param_count() < 60_000, "{}", f.name());
        }
    }

    #[test]
    fn every_full_family_builds_small() {
        for f in FullFamily::ALL {
            let m = full_model(f, 64, 10, 0.25, 1).unwrap();
            assert_eq!(m.family, f.name());
        }
    }

    #[test]
    fn by_name_round_trips_every_family_and_rejects_unknowns() {
        for f in FullFamily::ALL {
            let entry = by_name(f.name()).unwrap_or_else(|| panic!("{} missing", f.name()));
            assert_eq!(entry, ZooModel::Full(f));
            assert_eq!(entry.name(), f.name());
        }
        for f in MiniFamily::ALL {
            let entry = by_name(f.name()).unwrap_or_else(|| panic!("{} missing", f.name()));
            assert_eq!(entry, ZooModel::Mini(f));
            assert_eq!(entry.name(), f.name());
        }
        assert_eq!(by_name("mobilenet_v9"), None);
        assert_eq!(by_name(""), None);
        assert_eq!(by_name("MobileNet_V2"), None, "lookups are exact-case");
    }

    #[test]
    fn by_name_entries_build_models_with_their_canonical_preprocess() {
        let full = by_name("mobilenet_v2").unwrap();
        let m = full.build_scaled(64, 10, 0.25, 1).unwrap();
        assert_eq!(m.family, "mobilenet_v2");
        let mini = by_name("mini_densenet").unwrap();
        let m = mini.build(32, 8, 1).unwrap();
        assert_eq!(m.family, "mini_densenet");
        assert_eq!(
            mini.canonical_preprocess(32).normalization,
            canonical_preprocess("mini_densenet", 32).normalization
        );
    }

    #[test]
    fn canonical_preprocess_differs_by_family() {
        let mobile = canonical_preprocess("mini_mobilenet_v2", 32);
        let dense = canonical_preprocess("mini_densenet", 32);
        let res = canonical_preprocess("mini_resnet", 32);
        assert_ne!(mobile.normalization, dense.normalization);
        assert_ne!(mobile.normalization, res.normalization);
        assert_eq!(mobile.channel_order, ChannelOrder::Rgb);
    }
}
