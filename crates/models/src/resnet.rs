//! ResNet-50 v2 (full, checkpoint-style) and a mini residual network.
//!
//! Full-size blocks use the conv→BN→ReLU ordering so that every batch-norm
//! has a foldable convolution producer (see DESIGN.md: the pre-activation
//! ordering of the original v2 paper is not foldable by TFLite-style
//! conversion either; deployed graphs look like this one).

use mlexray_nn::{Activation, Model, Padding, Result, TensorId};
use mlexray_tensor::Shape;

use crate::blocks::NetBuilder;

fn scaled(c: usize, width: f32) -> usize {
    ((c as f32 * width).round() as usize).max(4)
}

fn bottleneck(
    nb: &mut NetBuilder,
    tag: &str,
    x: TensorId,
    mid: usize,
    out_c: usize,
    stride: usize,
) -> Result<TensorId> {
    let in_c = nb.b.shape_of(x).dims()[3];
    let mut y = nb.conv_bn_act(
        &format!("{tag}/a"),
        x,
        mid,
        1,
        1,
        Padding::Same,
        Activation::Relu,
    )?;
    y = nb.conv_bn_act(
        &format!("{tag}/b"),
        y,
        mid,
        3,
        stride,
        Padding::Same,
        Activation::Relu,
    )?;
    y = nb.conv_bn_act(
        &format!("{tag}/c"),
        y,
        out_c,
        1,
        1,
        Padding::Same,
        Activation::None,
    )?;
    let shortcut = if stride != 1 || in_c != out_c {
        nb.conv_bn_act(
            &format!("{tag}/sc"),
            x,
            out_c,
            1,
            stride,
            Padding::Same,
            Activation::None,
        )?
    } else {
        x
    };
    let sum =
        nb.b.add(format!("{tag}/add"), y, shortcut, Activation::None)?;
    nb.b.activation(format!("{tag}/relu"), sum, Activation::Relu)
}

/// Full-size ResNet-50 v2.
///
/// # Errors
///
/// Propagates graph-construction errors (`input` must be ≥ 32).
pub fn resnet50_v2(input: usize, classes: usize, width: f32, seed: u64) -> Result<Model> {
    let mut nb = NetBuilder::new("resnet50_v2", seed);
    let x = nb.b.input("image", Shape::nhwc(1, input, input, 3));
    let mut y = nb.conv_bn_act(
        "stem",
        x,
        scaled(64, width),
        7,
        2,
        Padding::Same,
        Activation::Relu,
    )?;
    y = nb.b.max_pool2d("stem/pool", y, 3, 3, 2, Padding::Same)?;
    // (mid, out, blocks, first stride) per stage.
    let stages: [(usize, usize, usize, usize); 4] = [
        (64, 256, 3, 1),
        (128, 512, 4, 2),
        (256, 1024, 6, 2),
        (512, 2048, 3, 2),
    ];
    for (s, &(mid, out_c, blocks, stride)) in stages.iter().enumerate() {
        for b in 0..blocks {
            y = bottleneck(
                &mut nb,
                &format!("stage{s}/block{b}"),
                y,
                scaled(mid, width),
                scaled(out_c, width),
                if b == 0 { stride } else { 1 },
            )?;
        }
    }
    let out = nb.mean_fc_softmax(y, classes)?;
    nb.b.output(out);
    Ok(Model::checkpoint(nb.b.finish()?, "resnet50_v2"))
}

/// Mini residual network: two residual blocks with fused-ReLU adds.
///
/// # Errors
///
/// Propagates graph-construction errors.
pub fn mini_resnet(input: usize, classes: usize, seed: u64) -> Result<Model> {
    let mut nb = NetBuilder::new("mini_resnet", seed);
    let x = nb.b.input("image", Shape::nhwc(1, input, input, 3));
    let mut y = nb.conv_act("stem", x, 16, 3, 2, Padding::Same, Activation::Relu)?;
    for i in 0..2 {
        let tag = format!("block{i}");
        let a = nb.conv_act(
            &format!("{tag}/a"),
            y,
            16,
            3,
            1,
            Padding::Same,
            Activation::Relu,
        )?;
        let b2 = nb.conv_act(
            &format!("{tag}/b"),
            a,
            16,
            3,
            1,
            Padding::Same,
            Activation::None,
        )?;
        y = nb.b.add(format!("{tag}/add"), b2, y, Activation::Relu)?;
    }
    let out = nb.mean_fc_softmax(y, classes)?;
    nb.b.output(out);
    Ok(Model::checkpoint(nb.b.finish()?, "mini_resnet"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlexray_nn::{Interpreter, InterpreterOptions};
    use mlexray_tensor::Tensor;

    #[test]
    fn full_resnet_scale_matches_paper() {
        let m = resnet50_v2(32, 1000, 1.0, 1).unwrap();
        let params = m.graph.param_count();
        // Paper Table 3: 25.6M.
        assert!((20_000_000..30_000_000).contains(&params), "{params}");
        // Layer count in the ~190 region.
        assert!(
            (150..260).contains(&m.graph.layer_count()),
            "{}",
            m.graph.layer_count()
        );
    }

    #[test]
    fn mini_resnet_runs() {
        let m = mini_resnet(32, 8, 3).unwrap();
        let mut interp = Interpreter::new(&m.graph, InterpreterOptions::optimized()).unwrap();
        let p = interp
            .invoke(&[Tensor::filled_f32(Shape::nhwc(1, 32, 32, 3), 0.2)])
            .unwrap();
        let v = p[0].as_f32().unwrap();
        assert_eq!(v.len(), 8);
        assert!((v.iter().sum::<f32>() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn full_resnet_converts() {
        let m = resnet50_v2(64, 10, 0.125, 2).unwrap();
        let mobile = mlexray_nn::convert_to_mobile(&m).unwrap();
        assert!(mobile.graph.layer_count() < m.graph.layer_count());
    }
}
