//! The spectrogram-classification CNN used by the speech-command experiments
//! (Fig. 4c).

use mlexray_nn::{Activation, Model, Padding, Result};
use mlexray_tensor::Shape;

use crate::blocks::NetBuilder;

/// Mini audio CNN over `[1, frames, bins, 1]` spectrograms: two strided
/// convs, global mean, FC, softmax.
///
/// # Errors
///
/// Propagates graph-construction errors.
pub fn mini_audio_cnn(frames: usize, bins: usize, classes: usize, seed: u64) -> Result<Model> {
    let mut nb = NetBuilder::new("mini_audio_cnn", seed);
    let x = nb.b.input("spectrogram", Shape::nhwc(1, frames, bins, 1));
    let c1 = nb.conv_act("conv1", x, 8, 3, 2, Padding::Same, Activation::Relu)?;
    let c2 = nb.conv_act("conv2", c1, 16, 3, 2, Padding::Same, Activation::Relu)?;
    let out = nb.mean_fc_softmax(c2, classes)?;
    nb.b.output(out);
    Ok(Model::checkpoint(nb.b.finish()?, "mini_audio_cnn"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlexray_nn::{Interpreter, InterpreterOptions};
    use mlexray_tensor::Tensor;

    #[test]
    fn runs_on_spectrogram_shape() {
        let m = mini_audio_cnn(32, 33, 8, 1).unwrap();
        let mut interp = Interpreter::new(&m.graph, InterpreterOptions::optimized()).unwrap();
        let x = Tensor::filled_f32(Shape::nhwc(1, 32, 33, 1), 0.3);
        let p = interp.invoke(&[x]).unwrap();
        let v = p[0].as_f32().unwrap();
        assert_eq!(v.len(), 8);
        assert!((v.iter().sum::<f32>() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn is_trainable_scale() {
        let m = mini_audio_cnn(31, 33, 8, 1).unwrap();
        assert!(m.graph.param_count() < 10_000);
    }
}
