//! Shared network-construction helpers.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use mlexray_nn::{Activation, GraphBuilder, Padding, Result, TensorId};
use mlexray_tensor::{he_normal, Shape, Tensor};

/// A [`GraphBuilder`] wrapper carrying a seeded RNG and a name counter, used
/// by every architecture builder in this crate.
///
/// Two construction styles are offered, mirroring the two model stages:
///
/// * `*_bn_act` — checkpoint style: bias-free conv + standalone BatchNorm +
///   standalone activation (what the training framework exports, and what
///   [`mlexray_nn::convert_to_mobile`] folds).
/// * `*_act` — deployment/mini style: conv with bias and fused activation.
#[derive(Debug)]
pub struct NetBuilder {
    /// The underlying graph builder.
    pub b: GraphBuilder,
    rng: SmallRng,
    counter: usize,
}

impl NetBuilder {
    /// Starts a network with a seeded weight RNG.
    pub fn new(name: impl Into<String>, seed: u64) -> Self {
        NetBuilder {
            b: GraphBuilder::new(name),
            rng: SmallRng::seed_from_u64(seed),
            counter: 0,
        }
    }

    fn next_name(&mut self, prefix: &str) -> String {
        self.counter += 1;
        format!("{prefix}_{}", self.counter)
    }

    /// He-normal weight constant.
    ///
    /// # Errors
    ///
    /// Propagates tensor construction errors.
    pub fn weight(&mut self, shape: Shape, fan_in: usize) -> Result<TensorId> {
        let name = self.next_name("w");
        let t = he_normal(shape, fan_in, &mut self.rng)?;
        Ok(self.b.constant(name, t))
    }

    /// Zero bias constant.
    pub fn zero_bias(&mut self, len: usize) -> TensorId {
        let name = self.next_name("b");
        self.b
            .constant(name, Tensor::filled_f32(Shape::vector(len), 0.0))
    }

    fn bn_params(&mut self, c: usize) -> (TensorId, TensorId, TensorId, TensorId) {
        let vec = |lo: f32, hi: f32, rng: &mut SmallRng| -> Vec<f32> {
            (0..c).map(|_| rng.gen_range(lo..hi)).collect()
        };
        let gamma = vec(0.7, 1.3, &mut self.rng);
        let beta = vec(-0.1, 0.1, &mut self.rng);
        let mean = vec(-0.1, 0.1, &mut self.rng);
        let var = vec(0.5, 1.5, &mut self.rng);
        let c_of = |tag: &str, data: Vec<f32>, s: &mut Self| {
            let name = s.next_name(tag);
            s.b.constant(
                name,
                Tensor::from_f32(Shape::vector(c), data).expect("len matches"),
            )
        };
        (
            c_of("gamma", gamma, self),
            c_of("beta", beta, self),
            c_of("mean", mean, self),
            c_of("var", var, self),
        )
    }

    /// Checkpoint-style unit: bias-free conv + BatchNorm + activation
    /// (activation omitted for `Activation::None`).
    ///
    /// # Errors
    ///
    /// Propagates graph-construction errors.
    #[allow(clippy::too_many_arguments)]
    pub fn conv_bn_act(
        &mut self,
        tag: &str,
        x: TensorId,
        out_c: usize,
        k: usize,
        stride: usize,
        padding: Padding,
        act: Activation,
    ) -> Result<TensorId> {
        let in_c = self.b.shape_of(x).dims()[3];
        let w = self.weight(Shape::new(vec![out_c, k, k, in_c]), k * k * in_c)?;
        let conv = self.b.conv2d(
            format!("{tag}/conv"),
            x,
            w,
            None,
            stride,
            padding,
            Activation::None,
        )?;
        let (g, be, m, v) = self.bn_params(out_c);
        let bn = self
            .b
            .batch_norm(format!("{tag}/bn"), conv, g, be, m, v, 1e-3)?;
        if act == Activation::None {
            Ok(bn)
        } else {
            self.b.activation(format!("{tag}/act"), bn, act)
        }
    }

    /// Checkpoint-style depthwise unit: bias-free dwconv + BatchNorm + act.
    ///
    /// # Errors
    ///
    /// Propagates graph-construction errors.
    pub fn dwconv_bn_act(
        &mut self,
        tag: &str,
        x: TensorId,
        k: usize,
        stride: usize,
        act: Activation,
    ) -> Result<TensorId> {
        let c = self.b.shape_of(x).dims()[3];
        let w = self.weight(Shape::new(vec![1, k, k, c]), k * k)?;
        let conv = self.b.depthwise_conv2d(
            format!("{tag}/dwconv"),
            x,
            w,
            None,
            stride,
            Padding::Same,
            Activation::None,
        )?;
        let (g, be, m, v) = self.bn_params(c);
        let bn = self
            .b
            .batch_norm(format!("{tag}/bn"), conv, g, be, m, v, 1e-3)?;
        if act == Activation::None {
            Ok(bn)
        } else {
            self.b.activation(format!("{tag}/act"), bn, act)
        }
    }

    /// Deployment/mini-style conv with bias and fused activation.
    ///
    /// # Errors
    ///
    /// Propagates graph-construction errors.
    #[allow(clippy::too_many_arguments)]
    pub fn conv_act(
        &mut self,
        tag: &str,
        x: TensorId,
        out_c: usize,
        k: usize,
        stride: usize,
        padding: Padding,
        act: Activation,
    ) -> Result<TensorId> {
        let in_c = self.b.shape_of(x).dims()[3];
        let w = self.weight(Shape::new(vec![out_c, k, k, in_c]), k * k * in_c)?;
        let bias = self.zero_bias(out_c);
        self.b.conv2d(tag, x, w, Some(bias), stride, padding, act)
    }

    /// Deployment/mini-style depthwise conv with bias and fused activation.
    ///
    /// # Errors
    ///
    /// Propagates graph-construction errors.
    pub fn dwconv_act(
        &mut self,
        tag: &str,
        x: TensorId,
        k: usize,
        stride: usize,
        act: Activation,
    ) -> Result<TensorId> {
        let c = self.b.shape_of(x).dims()[3];
        let w = self.weight(Shape::new(vec![1, k, k, c]), k * k)?;
        let bias = self.zero_bias(c);
        self.b
            .depthwise_conv2d(tag, x, w, Some(bias), stride, Padding::Same, act)
    }

    /// Fully connected layer with bias.
    ///
    /// # Errors
    ///
    /// Propagates graph-construction errors.
    pub fn fc(&mut self, tag: &str, x: TensorId, out: usize, act: Activation) -> Result<TensorId> {
        let in_f = self.b.shape_of(x).dims()[1];
        let w = self.weight(Shape::matrix(out, in_f), in_f)?;
        let bias = self.zero_bias(out);
        self.b.fully_connected(tag, x, w, Some(bias), act)
    }

    /// Classifier head: global mean → FC → softmax (the MobileNet v1/v2
    /// shape, using the `Mean` op that survives quantization).
    ///
    /// # Errors
    ///
    /// Propagates graph-construction errors.
    pub fn mean_fc_softmax(&mut self, x: TensorId, classes: usize) -> Result<TensorId> {
        let gap = self.b.mean("gap", x)?;
        let logits = self.fc("classifier", gap, classes, Activation::None)?;
        self.b.softmax("softmax", logits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlexray_nn::{Interpreter, InterpreterOptions, Model};

    #[test]
    fn builder_produces_runnable_net() {
        let mut nb = NetBuilder::new("t", 1);
        let x = nb.b.input("x", Shape::nhwc(1, 8, 8, 3));
        let c = nb
            .conv_act("c1", x, 4, 3, 2, Padding::Same, Activation::Relu6)
            .unwrap();
        let out = nb.mean_fc_softmax(c, 5).unwrap();
        nb.b.output(out);
        let model = Model::checkpoint(nb.b.finish().unwrap(), "t");
        let mut interp = Interpreter::new(&model.graph, InterpreterOptions::optimized()).unwrap();
        let y = interp
            .invoke(&[Tensor::filled_f32(Shape::nhwc(1, 8, 8, 3), 0.5)])
            .unwrap();
        let p = y[0].as_f32().unwrap();
        assert_eq!(p.len(), 5);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn checkpoint_units_convert() {
        let mut nb = NetBuilder::new("ckpt", 2);
        let x = nb.b.input("x", Shape::nhwc(1, 8, 8, 3));
        let c = nb
            .conv_bn_act("u1", x, 4, 3, 1, Padding::Same, Activation::Relu6)
            .unwrap();
        let d = nb.dwconv_bn_act("u2", c, 3, 1, Activation::Relu).unwrap();
        let out = nb.mean_fc_softmax(d, 3).unwrap();
        nb.b.output(out);
        let model = Model::checkpoint(nb.b.finish().unwrap(), "ckpt");
        // 2 units * 3 nodes + mean + fc + softmax = 9 nodes pre-conversion.
        assert_eq!(model.graph.layer_count(), 9);
        let mobile = mlexray_nn::convert_to_mobile(&model).unwrap();
        assert_eq!(
            mobile.graph.layer_count(),
            5,
            "BN+act folded into each conv"
        );
    }

    #[test]
    fn same_seed_same_weights() {
        let build = || {
            let mut nb = NetBuilder::new("t", 5);
            let x = nb.b.input("x", Shape::nhwc(1, 4, 4, 1));
            let c = nb
                .conv_act("c", x, 2, 3, 1, Padding::Same, Activation::None)
                .unwrap();
            nb.b.output(c);
            nb.b.finish().unwrap()
        };
        assert_eq!(build(), build());
    }
}
