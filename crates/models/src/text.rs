//! Text models: the NNLM-style average-embedding classifier of Appendix A
//! and a tiny transformer encoder standing in for MobileBert.

use mlexray_nn::{Activation, GraphBuilder, Model, OpKind, Result, TensorId};
use mlexray_tensor::{he_normal, DType, Shape, Tensor};

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::blocks::NetBuilder;

/// NNLM-style sentiment classifier: embedding lookup → mean over tokens →
/// FC → softmax. Trainable by the trainer crate (embedding gradients are
/// supported).
///
/// # Errors
///
/// Propagates graph-construction errors.
pub fn nnlm(
    vocab_size: usize,
    seq_len: usize,
    dim: usize,
    classes: usize,
    seed: u64,
) -> Result<Model> {
    let mut nb = NetBuilder::new("nnlm", seed);
    let ids =
        nb.b.input_typed("ids", Shape::matrix(1, seq_len), DType::I32, None);
    let table = nb.weight(Shape::matrix(vocab_size, dim), dim)?;
    let emb = nb.b.embedding("embedding", ids, table)?;
    let avg = nb.b.mean("avg_embedding", emb)?;
    let logits = nb.fc("classifier", avg, classes, Activation::None)?;
    let out = nb.b.softmax("softmax", logits)?;
    nb.b.output(out);
    Ok(Model::checkpoint(nb.b.finish()?, "nnlm"))
}

fn dense(
    b: &mut GraphBuilder,
    rng: &mut SmallRng,
    tag: &str,
    x: TensorId,
    out_dim: usize,
) -> Result<TensorId> {
    let in_dim = b.shape_of(x).dims()[1];
    let w = b.constant(
        format!("{tag}/w"),
        he_normal(Shape::matrix(in_dim, out_dim), in_dim, rng)?,
    );
    b.matmul(tag, x, w, false)
}

/// Tiny single-head transformer encoder (MobileBert stand-in): embedding +
/// positions → LayerNorm → self-attention → residual → LayerNorm → GELU FFN
/// → residual → LayerNorm → mean → FC → softmax.
///
/// Inference-only (random weights): used for op-coverage, logging and
/// latency experiments, not accuracy.
///
/// # Errors
///
/// Propagates graph-construction errors.
pub fn tiny_bert(
    vocab_size: usize,
    seq_len: usize,
    dim: usize,
    classes: usize,
    seed: u64,
) -> Result<Model> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new("tiny_bert");
    let ids = b.input_typed("ids", Shape::matrix(1, seq_len), DType::I32, None);
    let table = b.constant(
        "embedding_table",
        he_normal(Shape::matrix(vocab_size, dim), dim, &mut rng)?,
    );
    let emb = b.embedding("embedding", ids, table)?;
    let pos = b.constant(
        "positions",
        he_normal(Shape::matrix(seq_len, dim), dim, &mut rng)?,
    );
    let with_pos = b.add("add_positions", emb, pos, Activation::None)?;
    let x2 = b.reshape("to_2d", with_pos, vec![seq_len, dim])?;

    let ones = Tensor::filled_f32(Shape::vector(dim), 1.0);
    let zeros = Tensor::filled_f32(Shape::vector(dim), 0.0);
    let g0 = b.constant("ln0/gamma", ones.clone());
    let b0 = b.constant("ln0/beta", zeros.clone());
    let normed = b.layer_norm("ln0", x2, g0, b0, 1e-5)?;

    // Single-head self-attention.
    let q = dense(&mut b, &mut rng, "attn/q", normed, dim)?;
    let k = dense(&mut b, &mut rng, "attn/k", normed, dim)?;
    let v = dense(&mut b, &mut rng, "attn/v", normed, dim)?;
    let scores = b.matmul("attn/scores", q, k, true)?;
    let scale = b.constant("attn/scale", Tensor::scalar_f32(1.0 / (dim as f32).sqrt()));
    let scaled = b.mul("attn/scaled", scores, scale)?;
    let weights = b.softmax("attn/softmax", scaled)?;
    let ctx = b.matmul("attn/context", weights, v, false)?;
    let proj = dense(&mut b, &mut rng, "attn/proj", ctx, dim)?;
    let res1 = b.add("attn/residual", proj, normed, Activation::None)?;
    let g1 = b.constant("ln1/gamma", ones.clone());
    let b1 = b.constant("ln1/beta", zeros.clone());
    let n1 = b.layer_norm("ln1", res1, g1, b1, 1e-5)?;

    // GELU feed-forward.
    let ff1 = dense(&mut b, &mut rng, "ffn/expand", n1, dim * 4)?;
    let gelu = b.activation("ffn/gelu", ff1, Activation::Gelu)?;
    let ff2 = dense(&mut b, &mut rng, "ffn/project", gelu, dim)?;
    let res2 = b.add("ffn/residual", ff2, n1, Activation::None)?;
    let g2 = b.constant("ln2/gamma", ones);
    let b2 = b.constant("ln2/beta", zeros);
    let n2 = b.layer_norm("ln2", res2, g2, b2, 1e-5)?;

    let back = b.reshape("to_3d", n2, vec![1, seq_len, dim])?;
    let pooled = b.mean("pool", back)?;
    let wc = b.constant(
        "classifier/w",
        he_normal(Shape::matrix(classes, dim), dim, &mut rng)?,
    );
    let bc = b.constant(
        "classifier/b",
        Tensor::filled_f32(Shape::vector(classes), 0.0),
    );
    let logits = b.fully_connected("classifier", pooled, wc, Some(bc), Activation::None)?;
    let out = b.softmax("softmax", logits)?;
    b.output(out);
    Ok(Model::checkpoint(b.finish()?, "tiny_bert"))
}

/// Helper: encode token ids into the i32 tensor the text models expect.
///
/// # Errors
///
/// Propagates tensor construction errors.
pub fn ids_to_tensor(ids: &[usize]) -> Result<Tensor> {
    let data: Vec<i32> = ids.iter().map(|&i| i as i32).collect();
    Ok(Tensor::from_i32(Shape::matrix(1, ids.len()), data, None)?)
}

/// True if the model contains transformer-signature ops (MatMul/LayerNorm).
pub fn is_transformer(model: &Model) -> bool {
    model
        .graph
        .nodes()
        .iter()
        .any(|n| matches!(n.op, OpKind::MatMul { .. } | OpKind::LayerNorm { .. }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlexray_nn::{Interpreter, InterpreterOptions};

    #[test]
    fn nnlm_runs() {
        let m = nnlm(50, 8, 16, 2, 1).unwrap();
        let mut interp = Interpreter::new(&m.graph, InterpreterOptions::optimized()).unwrap();
        let ids = ids_to_tensor(&[2, 3, 4, 0, 0, 0, 0, 0]).unwrap();
        let p = interp.invoke(&[ids]).unwrap();
        let v = p[0].as_f32().unwrap();
        assert_eq!(v.len(), 2);
        assert!((v.iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn nnlm_embeddings_are_case_path_dependent() {
        // Same text through lowercase vs cased id sequences gives different
        // outputs — the Appendix A divergence, at the model level.
        let m = nnlm(50, 4, 8, 2, 2).unwrap();
        let mut interp = Interpreter::new(&m.graph, InterpreterOptions::optimized()).unwrap();
        let lower = interp
            .invoke(&[ids_to_tensor(&[2, 3, 0, 0]).unwrap()])
            .unwrap();
        let cased = interp
            .invoke(&[ids_to_tensor(&[1, 1, 0, 0]).unwrap()])
            .unwrap();
        assert_ne!(lower[0].as_f32().unwrap(), cased[0].as_f32().unwrap());
    }

    #[test]
    fn tiny_bert_runs_and_is_transformer() {
        let m = tiny_bert(50, 8, 16, 2, 3).unwrap();
        assert!(is_transformer(&m));
        let mut interp = Interpreter::new(&m.graph, InterpreterOptions::optimized()).unwrap();
        let ids = ids_to_tensor(&[2, 3, 4, 5, 1, 0, 0, 0]).unwrap();
        let p = interp.invoke(&[ids]).unwrap();
        let v = p[0].as_f32().unwrap();
        assert!((v.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        assert!(v.iter().all(|x| x.is_finite()));
    }
}
