//! Mini-SSD: an analytically-constructed single-shot detector.
//!
//! Detection training is not the paper's contribution, so (per the DESIGN.md
//! substitution table) the backbone filters are hand-set color detectors
//! rather than trained weights: the network computes per-grid-cell class
//! probabilities with a 1x1 color-detector conv, a stride-4 average pool and
//! a 1x1 classification head + softmax. Post-processing (decode + NMS) and
//! the mAP@0.5 evaluation are the same code paths a trained SSD would use —
//! which is what the Fig. 4(b) preprocessing-bug experiment exercises.

use mlexray_nn::{Activation, GraphBuilder, Model, Padding, Result};
use mlexray_tensor::{Shape, Tensor};

/// Grid stride in input pixels.
pub const CELL: usize = 4;

/// Number of classes including background (index 0).
pub const NUM_CLASSES_WITH_BG: usize = 3;

/// A decoded detection in normalized corner coordinates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetBox {
    /// Left edge.
    pub x0: f32,
    /// Top edge.
    pub y0: f32,
    /// Right edge.
    pub x1: f32,
    /// Bottom edge.
    pub y1: f32,
    /// Object class (0-based, background removed).
    pub class: usize,
    /// Confidence score.
    pub score: f32,
}

/// A ground-truth box in normalized corner coordinates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GtBox {
    /// Left edge.
    pub x0: f32,
    /// Top edge.
    pub y0: f32,
    /// Right edge.
    pub x1: f32,
    /// Bottom edge.
    pub y1: f32,
    /// Object class (0-based).
    pub class: usize,
}

#[allow(clippy::too_many_arguments)]
fn iou(ax0: f32, ay0: f32, ax1: f32, ay1: f32, bx0: f32, by0: f32, bx1: f32, by1: f32) -> f32 {
    let ix = (ax1.min(bx1) - ax0.max(bx0)).max(0.0);
    let iy = (ay1.min(by1) - ay0.max(by0)).max(0.0);
    let inter = ix * iy;
    let a = (ax1 - ax0) * (ay1 - ay0);
    let b = (bx1 - bx0) * (by1 - by0);
    if a + b - inter > 0.0 {
        inter / (a + b - inter)
    } else {
        0.0
    }
}

impl DetBox {
    /// IoU with a ground-truth box.
    pub fn iou_gt(&self, gt: &GtBox) -> f32 {
        iou(
            self.x0, self.y0, self.x1, self.y1, gt.x0, gt.y0, gt.x1, gt.y1,
        )
    }

    /// IoU with another detection.
    pub fn iou_det(&self, other: &DetBox) -> f32 {
        iou(
            self.x0, self.y0, self.x1, self.y1, other.x0, other.y0, other.x1, other.y1,
        )
    }
}

/// Builds the mini-SSD model: 1x1 color-detector conv → stride-4 average
/// pool → 1x1 class head → per-cell softmax. Input is a `[-1, 1]`-normalized
/// `[1, input, input, 3]` RGB tensor; output is `[1, g, g, 3]` class
/// probabilities with `g = input / CELL`.
///
/// # Errors
///
/// Propagates graph-construction errors (`input` must be a multiple of
/// [`CELL`]).
pub fn mini_ssd(input: usize) -> Result<Model> {
    let mut b = GraphBuilder::new("mini_ssd");
    let x = b.input("image", Shape::nhwc(1, input, input, 3));
    // Hand-set detectors: rows are output channels [red, green, bright].
    let det_w = Tensor::from_f32(
        Shape::new(vec![3, 1, 1, 3]),
        vec![
            1.5, -0.75, -0.75, // red detector
            -0.75, 1.5, -0.75, // green detector
            0.4, 0.4, 0.4, // brightness context
        ],
    )?;
    let det_b = Tensor::from_f32(Shape::vector(3), vec![-0.2, -0.2, 0.0])?;
    let w = b.constant("detectors", det_w);
    let bias = b.constant("detector_bias", det_b);
    let feats = b.conv2d(
        "color_features",
        x,
        w,
        Some(bias),
        1,
        Padding::Same,
        Activation::Relu,
    )?;
    let pooled = b.avg_pool2d("grid_pool", feats, CELL, CELL, CELL, Padding::Valid)?;
    // Class head: [bg, red, green] logits from [red, green, bright] features.
    let head_w = Tensor::from_f32(
        Shape::new(vec![3, 1, 1, 3]),
        vec![
            -2.0, -2.0, 0.0, // background
            3.0, -1.0, 0.0, // red object
            -1.0, 3.0, 0.0, // green object
        ],
    )?;
    let head_b = Tensor::from_f32(Shape::vector(3), vec![1.0, -1.2, -1.2])?;
    let hw = b.constant("head_w", head_w);
    let hb = b.constant("head_b", head_b);
    let logits = b.conv2d(
        "class_head",
        pooled,
        hw,
        Some(hb),
        1,
        Padding::Same,
        Activation::None,
    )?;
    let probs = b.softmax("class_probs", logits)?;
    b.output(probs);
    Ok(Model::checkpoint(b.finish()?, "mini_ssd"))
}

/// Decodes the `[1, g, g, 3]` probability map into boxes: confident cells
/// are grouped by 4-connectivity and each group becomes one detection whose
/// box is the group's cell extent.
///
/// # Panics
///
/// Panics if `probs` is not a 4-D float tensor with 3 channels.
pub fn decode(probs: &Tensor, threshold: f32) -> Vec<DetBox> {
    let dims = probs.shape().dims();
    assert_eq!(dims.len(), 4);
    assert_eq!(dims[3], NUM_CLASSES_WITH_BG);
    let (g_h, g_w) = (dims[1], dims[2]);
    let p = probs.as_f32().expect("float probabilities");
    let cell_prob = |y: usize, x: usize, c: usize| p[(y * g_w + x) * 3 + c];

    // Confident non-background cells.
    let mut label = vec![usize::MAX; g_h * g_w];
    let mut confident = Vec::new();
    for y in 0..g_h {
        for x in 0..g_w {
            let (red, green) = (cell_prob(y, x, 1), cell_prob(y, x, 2));
            if red.max(green) > threshold {
                confident.push((y, x, if red >= green { 1usize } else { 2 }, red.max(green)));
            }
        }
    }
    // Union by 4-connectivity (same class).
    let mut groups: Vec<Vec<(usize, usize, f32)>> = Vec::new();
    let mut group_class: Vec<usize> = Vec::new();
    for &(y, x, class, score) in &confident {
        let left = x > 0
            && label[y * g_w + x - 1] != usize::MAX
            && group_class[label[y * g_w + x - 1]] == class;
        let up = y > 0
            && label[(y - 1) * g_w + x] != usize::MAX
            && group_class[label[(y - 1) * g_w + x]] == class;
        let gid = match (left, up) {
            (true, _) => label[y * g_w + x - 1],
            (false, true) => label[(y - 1) * g_w + x],
            _ => {
                groups.push(Vec::new());
                group_class.push(class);
                groups.len() - 1
            }
        };
        label[y * g_w + x] = gid;
        groups[gid].push((y, x, score));
    }
    groups
        .iter()
        .zip(&group_class)
        .filter(|(cells, _)| !cells.is_empty())
        .map(|(cells, &class)| {
            let min_x = cells.iter().map(|c| c.1).min().expect("non-empty");
            let max_x = cells.iter().map(|c| c.1).max().expect("non-empty");
            let min_y = cells.iter().map(|c| c.0).min().expect("non-empty");
            let max_y = cells.iter().map(|c| c.0).max().expect("non-empty");
            let score = cells.iter().map(|c| c.2).fold(0.0f32, f32::max);
            DetBox {
                x0: min_x as f32 / g_w as f32,
                y0: min_y as f32 / g_h as f32,
                x1: (max_x + 1) as f32 / g_w as f32,
                y1: (max_y + 1) as f32 / g_h as f32,
                class: class - 1,
                score,
            }
        })
        .collect()
}

/// Greedy non-maximum suppression.
pub fn nms(mut dets: Vec<DetBox>, iou_threshold: f32) -> Vec<DetBox> {
    dets.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut kept: Vec<DetBox> = Vec::new();
    for d in dets {
        if kept
            .iter()
            .all(|k| k.class != d.class || k.iou_det(&d) < iou_threshold)
        {
            kept.push(d);
        }
    }
    kept
}

/// Mean average precision at the given IoU threshold over a set of scenes.
///
/// `detections[i]` and `ground_truth[i]` belong to scene `i`. AP uses
/// all-point interpolation per class; classes with no ground truth are
/// skipped.
pub fn mean_average_precision(
    detections: &[Vec<DetBox>],
    ground_truth: &[Vec<GtBox>],
    iou_threshold: f32,
    num_classes: usize,
) -> f32 {
    assert_eq!(detections.len(), ground_truth.len());
    let mut aps = Vec::new();
    for class in 0..num_classes {
        let total_gt: usize = ground_truth
            .iter()
            .map(|g| g.iter().filter(|b| b.class == class).count())
            .sum();
        if total_gt == 0 {
            continue;
        }
        // Collect detections of this class across scenes, tagged by scene.
        let mut dets: Vec<(usize, DetBox)> = Vec::new();
        for (scene, ds) in detections.iter().enumerate() {
            for d in ds.iter().filter(|d| d.class == class) {
                dets.push((scene, *d));
            }
        }
        dets.sort_by(|a, b| {
            b.1.score
                .partial_cmp(&a.1.score)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut matched: Vec<Vec<bool>> =
            ground_truth.iter().map(|g| vec![false; g.len()]).collect();
        let mut tp = 0usize;
        let mut fp = 0usize;
        let mut curve: Vec<(f32, f32)> = Vec::new();
        for (scene, d) in dets {
            let gts = &ground_truth[scene];
            let best = gts
                .iter()
                .enumerate()
                .filter(|(gi, g)| g.class == class && !matched[scene][*gi])
                .map(|(gi, g)| (gi, d.iou_gt(g)))
                .filter(|(_, i)| *i >= iou_threshold)
                .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
            match best {
                Some((gi, _)) => {
                    matched[scene][gi] = true;
                    tp += 1;
                }
                None => fp += 1,
            }
            curve.push((tp as f32 / total_gt as f32, tp as f32 / (tp + fp) as f32));
        }
        // All-point interpolated AP.
        let mut ap = 0.0f32;
        let mut prev_recall = 0.0f32;
        for i in 0..curve.len() {
            let max_prec = curve[i..].iter().map(|c| c.1).fold(0.0f32, f32::max);
            ap += (curve[i].0 - prev_recall) * max_prec;
            prev_recall = curve[i].0;
        }
        aps.push(ap);
    }
    if aps.is_empty() {
        0.0
    } else {
        aps.iter().sum::<f32>() / aps.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlexray_nn::{Interpreter, InterpreterOptions};

    #[test]
    fn model_shapes() {
        let m = mini_ssd(32).unwrap();
        let out_id = m.graph.outputs()[0];
        assert_eq!(m.graph.tensor(out_id).shape().dims(), &[1, 8, 8, 3]);
    }

    #[test]
    fn detects_a_centered_red_block() {
        let m = mini_ssd(32).unwrap();
        // Build a [-1,1] image: red block covering pixels 12..20.
        let mut data = vec![0.0f32; 32 * 32 * 3];
        for y in 0..32 {
            for x in 0..32 {
                let i = (y * 32 + x) * 3;
                let red = (12..20).contains(&x) && (12..20).contains(&y);
                data[i] = if red { 0.7 } else { -0.7 };
                data[i + 1] = -0.7;
                data[i + 2] = -0.7;
            }
        }
        let input = Tensor::from_f32(Shape::nhwc(1, 32, 32, 3), data).unwrap();
        let mut interp = Interpreter::new(&m.graph, InterpreterOptions::optimized()).unwrap();
        let probs = interp.invoke(&[input]).unwrap();
        let dets = nms(decode(&probs[0], 0.5), 0.5);
        assert_eq!(dets.len(), 1, "{dets:?}");
        assert_eq!(dets[0].class, 0, "red is class 0 after background removal");
        let gt = GtBox {
            x0: 12.0 / 32.0,
            y0: 12.0 / 32.0,
            x1: 20.0 / 32.0,
            y1: 20.0 / 32.0,
            class: 0,
        };
        assert!(dets[0].iou_gt(&gt) >= 0.5, "IoU {}", dets[0].iou_gt(&gt));
    }

    #[test]
    fn nms_suppresses_duplicates() {
        let a = DetBox {
            x0: 0.0,
            y0: 0.0,
            x1: 0.5,
            y1: 0.5,
            class: 0,
            score: 0.9,
        };
        let b = DetBox {
            x0: 0.05,
            y0: 0.05,
            x1: 0.5,
            y1: 0.5,
            class: 0,
            score: 0.8,
        };
        let c = DetBox {
            x0: 0.6,
            y0: 0.6,
            x1: 0.9,
            y1: 0.9,
            class: 0,
            score: 0.7,
        };
        let kept = nms(vec![a, b, c], 0.5);
        assert_eq!(kept.len(), 2);
        assert_eq!(kept[0].score, 0.9);
    }

    #[test]
    fn map_perfect_and_empty() {
        let gt = vec![vec![GtBox {
            x0: 0.1,
            y0: 0.1,
            x1: 0.3,
            y1: 0.3,
            class: 0,
        }]];
        let perfect = vec![vec![DetBox {
            x0: 0.1,
            y0: 0.1,
            x1: 0.3,
            y1: 0.3,
            class: 0,
            score: 0.9,
        }]];
        assert!((mean_average_precision(&perfect, &gt, 0.5, 2) - 1.0).abs() < 1e-6);
        let nothing: Vec<Vec<DetBox>> = vec![vec![]];
        assert_eq!(mean_average_precision(&nothing, &gt, 0.5, 2), 0.0);
    }

    #[test]
    fn map_penalizes_false_positives() {
        let gt = vec![vec![GtBox {
            x0: 0.1,
            y0: 0.1,
            x1: 0.3,
            y1: 0.3,
            class: 0,
        }]];
        let noisy = vec![vec![
            DetBox {
                x0: 0.1,
                y0: 0.1,
                x1: 0.3,
                y1: 0.3,
                class: 0,
                score: 0.6,
            },
            DetBox {
                x0: 0.6,
                y0: 0.6,
                x1: 0.8,
                y1: 0.8,
                class: 0,
                score: 0.9,
            },
        ]];
        let map = mean_average_precision(&noisy, &gt, 0.5, 2);
        assert!(map < 1.0 && map > 0.3, "{map}");
    }
}
