//! The model zoo of the ML-EXray reproduction.
//!
//! Two tiers of models are provided:
//!
//! * **Full-size architectures** (`mobilenet_v1/v2/v3`, `resnet50_v2`,
//!   `inception_v3`, `densenet121`) with randomly initialized weights and
//!   checkpoint-style graphs (unfused batch-norm, standalone activations).
//!   These drive the *structural* experiments — layer counts, parameter
//!   counts, conversion, quantization overhead, per-layer latency (Tables
//!   2–5) — where trained weights are unnecessary.
//! * **Mini architectures** (`mini_*`) that keep each family's topological
//!   signature (depthwise separable stacks, inverted residuals,
//!   squeeze-excite average pooling, residual adds, dense concatenation,
//!   parallel branches) at a size the trainer crate can train in seconds on
//!   the synthetic datasets. These drive the *accuracy* experiments
//!   (Figs. 4–6).
//!
//! Each family also declares its canonical preprocessing
//! ([`zoo::canonical_preprocess`]) — the ground truth the reference pipelines
//! replay and deployment bugs deviate from.

#![warn(missing_docs)]

pub mod audio;
mod blocks;
pub mod densenet;
pub mod inception;
pub mod mobilenet;
pub mod resnet;
pub mod ssd;
pub mod text;
pub mod zoo;

pub use blocks::NetBuilder;
pub use zoo::{
    by_name, canonical_preprocess, full_model, mini_model, FullFamily, MiniFamily, ZooModel,
};
