//! DenseNet-121 (full, checkpoint-style) and a mini densely-connected
//! network. Dense connectivity is the `Concat`-heavy topology of the zoo —
//! the layer-count champion of the paper's Table 3 (429 layers).

use mlexray_nn::{Activation, Model, Padding, Result, TensorId};
use mlexray_tensor::Shape;

use crate::blocks::NetBuilder;

fn scaled(c: usize, width: f32) -> usize {
    ((c as f32 * width).round() as usize).max(4)
}

/// One dense layer: bottleneck 1x1 (4k) + 3x3 (k), concatenated onto the
/// running feature map.
fn dense_layer(nb: &mut NetBuilder, tag: &str, x: TensorId, growth: usize) -> Result<TensorId> {
    let bottleneck = nb.conv_bn_act(
        &format!("{tag}/bottleneck"),
        x,
        4 * growth,
        1,
        1,
        Padding::Same,
        Activation::Relu,
    )?;
    let fresh = nb.conv_bn_act(
        &format!("{tag}/conv"),
        bottleneck,
        growth,
        3,
        1,
        Padding::Same,
        Activation::Relu,
    )?;
    nb.b.concat(format!("{tag}/concat"), &[x, fresh], 3)
}

fn transition(nb: &mut NetBuilder, tag: &str, x: TensorId) -> Result<TensorId> {
    let c = nb.b.shape_of(x).dims()[3];
    let y = nb.conv_bn_act(
        &format!("{tag}/conv"),
        x,
        c / 2,
        1,
        1,
        Padding::Same,
        Activation::Relu,
    )?;
    nb.b.avg_pool2d(format!("{tag}/pool"), y, 2, 2, 2, Padding::Valid)
}

/// Full-size DenseNet-121: blocks of 6/12/24/16 dense layers, growth 32.
///
/// # Errors
///
/// Propagates graph-construction errors (`input` must be ≥ 32).
pub fn densenet121(input: usize, classes: usize, width: f32, seed: u64) -> Result<Model> {
    let growth = scaled(32, width);
    let mut nb = NetBuilder::new("densenet121", seed);
    let x = nb.b.input("image", Shape::nhwc(1, input, input, 3));
    let mut y = nb.conv_bn_act(
        "stem",
        x,
        scaled(64, width),
        7,
        2,
        Padding::Same,
        Activation::Relu,
    )?;
    y = nb.b.max_pool2d("stem/pool", y, 3, 3, 2, Padding::Same)?;
    let blocks = [6usize, 12, 24, 16];
    for (b, &layers) in blocks.iter().enumerate() {
        for l in 0..layers {
            y = dense_layer(&mut nb, &format!("block{b}/layer{l}"), y, growth)?;
        }
        if b + 1 < blocks.len() {
            y = transition(&mut nb, &format!("transition{b}"), y)?;
        }
    }
    let out = nb.mean_fc_softmax(y, classes)?;
    nb.b.output(out);
    Ok(Model::checkpoint(nb.b.finish()?, "densenet121"))
}

/// Mini densely-connected network: two dense blocks of two layers each.
///
/// # Errors
///
/// Propagates graph-construction errors.
pub fn mini_densenet(input: usize, classes: usize, seed: u64) -> Result<Model> {
    let mut nb = NetBuilder::new("mini_densenet", seed);
    let x = nb.b.input("image", Shape::nhwc(1, input, input, 3));
    let mut y = nb.conv_act("stem", x, 8, 3, 2, Padding::Same, Activation::Relu)?;
    for b in 0..2 {
        for l in 0..2 {
            let tag = format!("block{b}/layer{l}");
            let fresh = nb.conv_act(&tag, y, 4, 3, 1, Padding::Same, Activation::Relu)?;
            y = nb.b.concat(format!("{tag}/concat"), &[y, fresh], 3)?;
        }
        if b == 0 {
            let c = nb.b.shape_of(y).dims()[3];
            y = nb.conv_act(
                "transition/conv",
                y,
                c / 2,
                1,
                1,
                Padding::Same,
                Activation::Relu,
            )?;
            y =
                nb.b.avg_pool2d("transition/pool", y, 2, 2, 2, Padding::Valid)?;
        }
    }
    let out = nb.mean_fc_softmax(y, classes)?;
    nb.b.output(out);
    Ok(Model::checkpoint(nb.b.finish()?, "mini_densenet"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mlexray_nn::{Interpreter, InterpreterOptions};
    use mlexray_tensor::Tensor;

    #[test]
    fn full_densenet_scale() {
        let m = densenet121(32, 1000, 1.0, 1).unwrap();
        let params = m.graph.param_count();
        // Paper Table 3: 8M.
        assert!((6_000_000..11_000_000).contains(&params), "{params}");
        // Layer-count champion: paper counts 429.
        assert!(
            (380..480).contains(&m.graph.layer_count()),
            "{}",
            m.graph.layer_count()
        );
    }

    #[test]
    fn densenet_grows_channels() {
        let m = densenet121(64, 10, 0.25, 1).unwrap();
        // Find the widest concat output.
        let max_c = m
            .graph
            .nodes()
            .iter()
            .map(|n| {
                m.graph
                    .tensor(n.output)
                    .shape()
                    .dims()
                    .last()
                    .copied()
                    .unwrap_or(0)
            })
            .max()
            .unwrap();
        assert!(
            max_c > 100,
            "dense connectivity should accumulate channels: {max_c}"
        );
    }

    #[test]
    fn mini_densenet_runs() {
        let m = mini_densenet(32, 8, 7).unwrap();
        let mut interp = Interpreter::new(&m.graph, InterpreterOptions::optimized()).unwrap();
        let p = interp
            .invoke(&[Tensor::filled_f32(Shape::nhwc(1, 32, 32, 3), 0.1)])
            .unwrap();
        let v = p[0].as_f32().unwrap();
        assert_eq!(v.len(), 8);
        assert!((v.iter().sum::<f32>() - 1.0).abs() < 1e-4);
    }
}
