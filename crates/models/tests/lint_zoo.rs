//! Zero-false-positive guarantee over the model zoo: every family's
//! checkpoint and converted graph — and every quantizable mini family's
//! int8 graph — lints with no Deny and no Warn findings. This is the
//! contract that lets the serving registry hard-reject any model the
//! analyzer denies: a lint that fires on a legitimate zoo model would turn
//! the gate into a false rejection.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use mlexray_models::{FullFamily, MiniFamily, ZooModel};
use mlexray_nn::analysis::{analyze, Severity};
use mlexray_nn::{calibrate, convert_to_mobile, quantize_model, Graph, QuantizationOptions};
use mlexray_tensor::Tensor;

/// Small resolutions keep the sweep fast while still exercising every
/// family's graph-construction path (same settings as the `exray-lint`
/// binary's `--zoo` mode).
const MINI_INPUT: usize = 32;
const FULL_INPUT: usize = 64;
const FULL_WIDTH: f32 = 0.25;
const CLASSES: usize = 10;
const SEED: u64 = 1;

fn assert_lints_clean(label: &str, graph: &Graph) {
    let report = analyze(graph);
    assert_eq!(
        report.count(Severity::Deny),
        0,
        "{label}: deny findings on a zoo graph:\n{report}"
    );
    assert_eq!(
        report.count(Severity::Warn),
        0,
        "{label}: warn findings on a zoo graph:\n{report}"
    );
}

fn check_family(zoo: ZooModel, name: &str, input: usize, width: f32) {
    let checkpoint = zoo
        .build_scaled(input, CLASSES, width, SEED)
        .unwrap_or_else(|e| panic!("building '{name}': {e}"));
    assert_lints_clean(&format!("{name} (checkpoint)"), &checkpoint.graph);
    let mobile =
        convert_to_mobile(&checkpoint).unwrap_or_else(|e| panic!("converting '{name}': {e}"));
    assert_lints_clean(&format!("{name} (converted)"), &mobile.graph);
}

#[test]
fn full_families_lint_clean() {
    for family in FullFamily::ALL {
        check_family(
            ZooModel::Full(family),
            family.name(),
            FULL_INPUT,
            FULL_WIDTH,
        );
    }
}

#[test]
fn mini_families_lint_clean() {
    for family in MiniFamily::ALL {
        check_family(ZooModel::Mini(family), family.name(), MINI_INPUT, 1.0);
    }
}

/// Mini families taken through the real int8 path (convert, calibrate over
/// random samples, quantize) still lint clean: scales positive, zero
/// points in range, weight axes and float/quant boundaries consistent.
/// Families whose op set the quantizer does not cover are skipped, but the
/// path must cover most of the zoo — an unexpected regression in quantizer
/// coverage fails the floor assertion.
#[test]
fn quantized_minis_lint_clean() {
    let mut rng = SmallRng::seed_from_u64(SEED);
    let mut quantized = 0usize;
    for family in MiniFamily::ALL {
        let name = family.name();
        let model = ZooModel::Mini(family)
            .build_scaled(MINI_INPUT, CLASSES, 1.0, SEED)
            .unwrap_or_else(|e| panic!("building '{name}': {e}"));
        let mobile =
            convert_to_mobile(&model).unwrap_or_else(|e| panic!("converting '{name}': {e}"));
        let samples: Vec<Vec<Tensor>> = (0..2)
            .map(|_| {
                mobile
                    .graph
                    .inputs()
                    .iter()
                    .map(|&id| {
                        let shape = mobile.graph.tensor(id).shape().clone();
                        let n = shape.num_elements();
                        let data: Vec<f32> = (0..n).map(|_| rng.gen_range(-1.0..1.0f32)).collect();
                        Tensor::from_f32(shape, data).expect("length matches")
                    })
                    .collect()
            })
            .collect();
        let calib = calibrate(&mobile.graph, samples.iter().map(Vec::as_slice))
            .unwrap_or_else(|e| panic!("calibrating '{name}': {e}"));
        match quantize_model(&mobile, &calib, QuantizationOptions::default()) {
            Ok(quant) => {
                assert_lints_clean(&format!("{name} (int8)"), &quant.graph);
                quantized += 1;
            }
            Err(e) => eprintln!("skipping '{name}': quantizer does not cover it ({e})"),
        }
    }
    assert!(
        quantized >= 3,
        "quantizer covers only {quantized} mini families; expected most of the zoo"
    );
}
