#!/usr/bin/env bash
# Reproduces the full CI pipeline locally, in the same order the workflow
# runs it: lint -> build -> tests -> docs -> offline/vendored invariant ->
# experiment smoke (with JSON artifacts under target/experiment-artifacts/).
#
# Usage: scripts/ci-local.sh [--quick]
#   --quick   lint + tests only: skip every release build, rustdoc and the
#             experiment smoke pass
set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=0
[[ "${1:-}" == "--quick" ]] && QUICK=1

step() { printf '\n==> %s\n' "$*"; }

step "cargo fmt --all --check"
cargo fmt --all --check

step "cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

step "cargo test -q (tier-1)"
cargo test -q

if [[ "$QUICK" == "1" ]]; then
  step "ci-local --quick: lint + tests green"
  exit 0
fi

step "backend suites (differential property + emulator goldens + report determinism)"
cargo test -q -p mlexray-nn --test backend_differential --test golden_kernels
cargo test -q -p mlexray-core --test differential_replay

step "kernel-simd suites (native dispatch, then MLEXRAY_SIMD=scalar forced fallback)"
cargo test -q -p mlexray-nn --test golden_kernels --test batch_equivalence --test backend_differential
cargo test -q -p mlexray-core --test parallel_invoke
MLEXRAY_SIMD=scalar cargo test -q -p mlexray-nn --test golden_kernels --test batch_equivalence --test backend_differential
MLEXRAY_SIMD=scalar cargo test -q -p mlexray-core --test parallel_invoke

step "serve suite (loaded serving integration + sink backpressure stress + fig_serving smoke)"
cargo test -q -p mlexray-serve
cargo test -q -p mlexray-core --test sink_stress
MLEXRAY_QUICK=1 cargo test -q -p mlexray-bench --test experiments_smoke fig_serving

step "metrics suite (histogram properties + wire Metrics acceptance + fig_metrics smoke)"
cargo test -q -p mlexray-serve --test metrics_suite
MLEXRAY_QUICK=1 cargo test -q -p mlexray-bench --test experiments_smoke fig_metrics

step "cargo build --release"
cargo build --release

step "rpc suite (release: protocol robustness + 32-session loaded proof + fig_rpc floors + loadgen + metrics scrape + BENCH_PR10)"
cargo test --release -q -p mlexray-serve --test rpc_protocol --test rpc_loaded
MLEXRAY_QUICK=1 MLEXRAY_ENFORCE_SCALING=1 cargo test --release -q -p mlexray-bench --test experiments_smoke fig_rpc
MLEXRAY_QUICK=1 cargo run --release -q -p mlexray-bench --bin rpc_loadgen
MLEXRAY_QUICK=1 cargo run --release -q -p mlexray-bench --bin rpc_loadgen -- --metrics
scripts/bench-record.sh --quick

step "trace suite (release: span pipeline units + trace_suite integration + fig_trace bars + loadgen wire-trace smoke)"
cargo test --release -q -p mlexray-core --lib trace
cargo test --release -q -p mlexray-serve --test trace_suite
MLEXRAY_QUICK=1 MLEXRAY_ENFORCE_SCALING=1 cargo test --release -q -p mlexray-bench --test experiments_smoke fig_trace
MLEXRAY_QUICK=1 cargo run --release -q -p mlexray-bench --bin rpc_loadgen -- --trace

step "exray-lint over the zoo and goldens (fails on any Deny finding)"
cargo run --release -q -p mlexray-models --bin exray-lint -- --zoo --goldens

step "cargo build --examples && cargo build --benches -p mlexray-bench"
cargo build --examples
cargo build --benches -p mlexray-bench

step "RUSTDOCFLAGS='-D warnings' cargo doc --workspace --no-deps"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

step "cargo build --release --locked --offline (vendored-deps invariant)"
cargo build --release --locked --offline

step "MLEXRAY_QUICK=1 experiment smoke tests"
MLEXRAY_QUICK=1 cargo test -p mlexray-bench --test experiments_smoke -q

step "ci-local: all green (artifacts in target/experiment-artifacts/)"
