#!/usr/bin/env bash
# Collects the headline numbers of the perf experiments (fig_batching,
# fig_serving, fig_rpc, fig_metrics, fig_simd, fig_trace) into
# target/experiment-artifacts/BENCH_PR10.json
# (schema: experiment -> metric -> value), via the bench_record binary.
# Stale structured artifacts are removed first, so every number in the
# record comes from the build under test; experiments whose artifacts are
# then missing are run by bench_record itself, in release mode.
#
# Usage: scripts/bench-record.sh [--quick]
#   --quick   run the experiments at reduced scale (MLEXRAY_QUICK=1)
set -euo pipefail
cd "$(dirname "$0")/.."

[[ "${1:-}" == "--quick" ]] && export MLEXRAY_QUICK=1

ARTIFACTS="${CARGO_TARGET_DIR:-target}/experiment-artifacts"
rm -f "$ARTIFACTS"/fig_batching_metrics.json \
      "$ARTIFACTS"/fig_serving_metrics.json \
      "$ARTIFACTS"/fig_rpc_metrics.json \
      "$ARTIFACTS"/fig_metrics_metrics.json \
      "$ARTIFACTS"/fig_simd_metrics.json \
      "$ARTIFACTS"/fig_trace_metrics.json \
      "$ARTIFACTS"/BENCH_PR9.json \
      "$ARTIFACTS"/BENCH_PR10.json

cargo run --release -q -p mlexray-bench --bin bench_record
