//! # ML-EXray (Rust reproduction)
//!
//! Facade crate re-exporting the entire ML-EXray workspace under one roof.
//! ML-EXray ("Visibility into ML Deployment on the Edge", MLSYS 2022) is a
//! cloud-to-edge deployment-validation framework: it instruments edge ML
//! inference pipelines at layer-level granularity, replays the same data
//! through a reference pipeline, and compares the two log streams to localize
//! deployment bugs — preprocessing mistakes, quantization defects and
//! sub-optimal kernels.
//!
//! The workspace layering (bottom-up):
//!
//! * [`tensor`] — shapes, f32/u8/i8/i32 tensors, quantization parameters.
//! * [`preprocess`] — image/audio/text sensor preprocessing (and its bugs).
//! * [`nn`] — a TFLite-like graph interpreter with reference/optimized
//!   kernels, conversion and full-integer quantization.
//! * [`datasets`] — deterministic synthetic datasets and SD-card playback.
//! * [`models`] — the model zoo (MobileNet v1/v2/v3, ResNet, Inception,
//!   DenseNet, SSD, audio CNN, text models).
//! * [`trainer`] — a minimal training engine for the mini models.
//! * [`edgesim`] — Pixel-class device simulation (latency/memory/storage).
//! * [`core`] — ML-EXray itself: the EdgeML Monitor, reference pipelines,
//!   deployment validation, per-layer drift analysis and assertions.
//! * [`serve`] — the online serving layer: multi-model registry, dynamic
//!   micro-batching scheduler, admission control and always-on monitoring.
//!
//! # Quickstart
//!
//! ```
//! use mlexray::core::{Monitor, MonitorConfig};
//!
//! let monitor = Monitor::new(MonitorConfig::default());
//! monitor.on_inference_start();
//! // ... interpreter invoke would go here ...
//! monitor.on_inference_stop();
//! assert_eq!(monitor.frames_logged(), 1);
//! ```

pub use mlexray_core as core;
pub use mlexray_datasets as datasets;
pub use mlexray_edgesim as edgesim;
pub use mlexray_models as models;
pub use mlexray_nn as nn;
pub use mlexray_preprocess as preprocess;
pub use mlexray_serve as serve;
pub use mlexray_tensor as tensor;
pub use mlexray_trainer as trainer;

/// Workspace version string.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
