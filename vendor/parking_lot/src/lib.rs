//! Offline, API-compatible subset of `parking_lot`, backed by `std::sync`.
//!
//! Only the surface the workspace uses: [`Mutex`] and [`RwLock`] whose `lock`
//! methods return guards directly (no poison `Result`). A panicked holder
//! poisons the underlying std lock; like `parking_lot`, later callers just
//! keep going (we recover the guard from the poison error).

#![warn(missing_docs)]

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock()` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Returns a mutable reference without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock whose guards are poison-free.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}
