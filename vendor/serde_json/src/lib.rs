//! Offline, API-compatible subset of `serde_json`: [`to_string`] /
//! [`from_str`] over the vendored serde [`Value`] data model, with a
//! hand-written JSON printer and recursive-descent parser.

#![warn(missing_docs)]

use serde::{Deserialize, Serialize};

pub use serde::Value;

mod parse;
mod print;

pub use parse::parse_value;

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    pub(crate) fn msg(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    print::write_value(&mut out, &value.to_value());
    Ok(out)
}

/// Deserializes a `T` from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse::parse_value(s)?;
    T::from_value(&value).map_err(|e| Error::msg(e.to_string()))
}
