//! Compact JSON printer.

use serde::Value;

pub(crate) fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, item);
            }
            out.push('}');
        }
    }
}

/// Rust's shortest round-trip float formatting, forced into JSON's grammar
/// (JSON has no `NaN`/`inf`; serde_json emits `null` for those).
fn write_float(out: &mut String, f: f64) {
    if f.is_finite() {
        let s = format!("{f}");
        out.push_str(&s);
        // `1.0` formats as "1" — keep a fraction so the value re-parses as
        // a float rather than an integer.
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
