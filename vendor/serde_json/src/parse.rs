//! Recursive-descent JSON parser producing the shared [`Value`] model.

use serde::Value;

use crate::Error;

/// Parses one JSON document (surrounding whitespace allowed).
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(Error::msg(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::msg(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(Error::msg(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::msg("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::msg("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::msg("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::msg("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let start = self.pos;
                    let rest = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| Error::msg("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::msg(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error::msg(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::msg(format!("invalid number `{text}`")))
        }
    }
}
