//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build image has no network access to crates.io, so the workspace
//! vendors the small slice of `rand` 0.8 it actually uses: [`Rng`],
//! [`SeedableRng`], [`rngs::SmallRng`], uniform ranges via `gen_range`,
//! [`distributions::Uniform`] and [`seq::SliceRandom`]. The generator is a
//! fixed xoshiro256++ seeded through SplitMix64, so every seeded stream is
//! deterministic across platforms — exactly what the synthetic datasets and
//! tests rely on.

#![warn(missing_docs)]

pub mod distributions;
pub mod rngs;
pub mod seq;

/// Low-level source of randomness: a stream of `u64` words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution of `T`
    /// (`[0, 1)` for floats, uniform for integers, fair coin for `bool`).
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        distributions::Distribution::sample(&distributions::Standard, self)
    }

    /// Samples uniformly from `range` (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: distributions::uniform::SampleUniform,
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Builds the RNG from a raw byte seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the RNG from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}
