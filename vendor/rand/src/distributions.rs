//! Distributions: `Standard`, `Uniform` and the `SampleRange` machinery
//! behind `Rng::gen_range`.

use crate::Rng;

/// Types that can produce values of `T` given an RNG.
pub trait Distribution<T> {
    /// Samples one value.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution: `[0, 1)` for floats, full range for ints.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<f32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Distribution<u32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<u64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

/// Uniform distribution over `[lo, hi)`.
#[derive(Debug, Clone, Copy)]
pub struct Uniform<T> {
    lo: T,
    hi: T,
}

impl<T: Copy + PartialOrd> Uniform<T> {
    /// Creates a uniform distribution over `[lo, hi)`. Panics if `lo >= hi`
    /// would make the range empty (mirrors `rand`'s debug behaviour).
    pub fn new(lo: T, hi: T) -> Self {
        assert!(lo < hi, "Uniform::new called with empty range");
        Uniform { lo, hi }
    }
}

impl<T> Distribution<T> for Uniform<T>
where
    T: Copy + PartialOrd,
    std::ops::Range<T>: uniform::SampleRange<T>,
{
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T {
        uniform::SampleRange::sample_single(self.lo..self.hi, rng)
    }
}

/// Range-sampling support for `Rng::gen_range`.
pub mod uniform {
    use crate::Rng;

    /// Marker for types `Rng::gen_range` can produce. Restricting `T` here
    /// is what lets integer-literal inference work in expressions like
    /// `x as i32 + rng.gen_range(-8..=8)` (mirrors the real crate).
    pub trait SampleUniform {}

    /// Ranges that `Rng::gen_range` accepts.
    pub trait SampleRange<T> {
        /// Samples one value uniformly from the range.
        fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
    }

    macro_rules! int_range {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for std::ops::Range<$t> {
                fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "gen_range called with empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
            impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
                fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "gen_range called with empty range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let v = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                    (lo as i128 + v as i128) as $t
                }
            }
        )*};
    }

    int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! sample_uniform {
        ($($t:ty),*) => {$( impl SampleUniform for $t {} )*};
    }

    sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! float_range {
        ($($t:ty => $unit:expr),*) => {$(
            impl SampleRange<$t> for std::ops::Range<$t> {
                fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "gen_range called with empty range");
                    let unit = $unit(rng);
                    self.start + unit * (self.end - self.start)
                }
            }
            impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
                fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "gen_range called with empty range");
                    let unit = $unit(rng);
                    lo + unit * (hi - lo)
                }
            }
        )*};
    }

    float_range!(
        f32 => |rng: &mut R| ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32),
        f64 => |rng: &mut R| ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    );
}
