//! Sequence helpers: shuffling and random selection.

use crate::Rng;

/// Random operations on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: Rng>(&mut self, rng: &mut R);

    /// Picks one element uniformly, or `None` if the slice is empty.
    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..i + 1);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}
