//! Offline, API-compatible subset of `proptest`.
//!
//! Supports the surface the workspace's property tests use: the
//! [`proptest!`] macro over functions with `arg in strategy` parameters,
//! numeric range strategies, `prop::collection::vec`, `ProptestConfig`
//! (case count) and the `prop_assert*` macros. Inputs are drawn from the
//! vendored deterministic `rand`, seeded per test from the test name, so
//! failures reproduce exactly. No shrinking: a failing case panics with the
//! standard assertion message.

#![warn(missing_docs)]

pub use rand;

pub mod strategy;

/// `prop::…` namespace (`prop::collection::vec`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::{Strategy, VecStrategy};

        /// Strategy producing `Vec`s whose length is drawn from `sizes` and
        /// whose elements are drawn from `element`.
        pub fn vec<S: Strategy>(element: S, sizes: std::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, sizes }
        }
    }
}

/// Runner configuration (only the case count is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Everything a property-test module needs in scope.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{prop, prop_assert, prop_assert_eq, proptest, ProptestConfig};
}

/// Asserts a condition inside a property (panics with context on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Declares property tests:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn prop(x in 0u8..10, v in prop::collection::vec(0.0f32..1.0, 1..8)) {
///         prop_assert!(v.len() < 8);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (@body $cases:expr;) => {};
    (@body $cases:expr;
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            use $crate::strategy::Strategy as _;
            // Deterministic per-test seed derived from the test name.
            let mut __seed: u64 = 0xcbf2_9ce4_8422_2325;
            for b in stringify!($name).bytes() {
                __seed = (__seed ^ b as u64).wrapping_mul(0x100_0000_01b3);
            }
            let mut __rng =
                <$crate::rand::rngs::SmallRng as $crate::rand::SeedableRng>::seed_from_u64(__seed);
            let __cases: u32 = $cases;
            for __case in 0..__cases {
                let _ = __case;
                $(let $arg = ($strat).generate(&mut __rng);)*
                $body
            }
        }
        $crate::proptest!(@body $cases; $($rest)*);
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@body ($cfg).cases; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@body $crate::ProptestConfig::default().cases; $($rest)*);
    };
}
