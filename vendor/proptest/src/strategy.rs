//! Input strategies: how each `arg in strategy` draws a value.

use rand::rngs::SmallRng;
use rand::Rng;

/// Types that can draw a random value of `Self::Value` from an RNG.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Strategy for `Vec`s (see [`crate::prop::collection::vec`]).
pub struct VecStrategy<S> {
    /// Element strategy.
    pub(crate) element: S,
    /// Length range.
    pub(crate) sizes: std::ops::Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.sizes.clone());
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
