//! `#[derive(Serialize, Deserialize)]` for the vendored serde subset.
//!
//! Implemented directly on `proc_macro::TokenStream` (the build image has no
//! network, so `syn`/`quote` are unavailable). Supports exactly the shapes the
//! workspace uses: non-generic structs (named, tuple, unit) and non-generic
//! enums whose variants are unit, tuple or struct-like. Enums use serde's
//! externally-tagged representation so the JSON matches the real crates.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed field set.
enum Fields {
    /// Named fields, in declaration order.
    Named(Vec<String>),
    /// Tuple fields: just the arity.
    Tuple(usize),
    /// No fields.
    Unit,
}

/// A parsed variant of an enum.
struct Variant {
    name: String,
    fields: Fields,
}

/// A parsed item: struct or enum.
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derives `serde::Serialize` (Value-model flavour).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => serialize_struct(name, fields),
        Item::Enum { name, variants } => serialize_enum(name, variants),
    };
    code.parse()
        .expect("serde_derive generated invalid Serialize impl")
}

/// Derives `serde::Deserialize` (Value-model flavour).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => deserialize_struct(name, fields),
        Item::Enum { name, variants } => deserialize_enum(name, variants),
    };
    code.parse()
        .expect("serde_derive generated invalid Deserialize impl")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attributes_and_vis(&tokens, &mut i);

    let keyword = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found {other}"),
    };
    i += 1;

    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected item name, found {other}"),
    };
    i += 1;

    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive (vendored): generic types are not supported");
        }
    }

    match keyword.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                _ => Fields::Unit,
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("serde_derive: expected enum body, found {other:?}"),
            };
            Item::Enum {
                name,
                variants: parse_variants(body),
            }
        }
        other => panic!("serde_derive: unsupported item kind `{other}`"),
    }
}

/// Advances `i` past any leading `#[...]` attributes and `pub`/`pub(...)`
/// visibility tokens.
fn skip_attributes_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` + bracketed attribute body
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1; // `pub(crate)` and friends
                    }
                }
            }
            _ => break,
        }
    }
}

/// Extracts field names from the body of a brace-struct / struct-variant.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        match &tokens[i] {
            TokenTree::Ident(id) => fields.push(id.to_string()),
            other => panic!("serde_derive: expected field name, found {other}"),
        }
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive: expected `:`, found {other}"),
        }
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Counts the fields of a tuple struct / tuple variant.
fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut depth = 0i32;
    for (idx, tok) in tokens.iter().enumerate() {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 && idx + 1 < tokens.len() => {
                count += 1; // ignore a trailing comma
            }
            _ => {}
        }
    }
    count
}

/// Parses the variants of an enum body.
fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected variant name, found {other}"),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        // Skip an explicit discriminant (`= expr`) and the trailing comma.
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn serialize_struct(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Named(names) => {
            let entries: Vec<String> = names
                .iter()
                .map(|f| format!("({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!("::serde::Value::Object(vec![{}])", entries.join(", "))
        }
        Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Fields::Unit => "::serde::Value::Null".to_string(),
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn serialize_enum(name: &str, variants: &[Variant]) -> String {
    let arms: Vec<String> = variants
        .iter()
        .map(|v| {
            let vname = &v.name;
            match &v.fields {
                Fields::Unit => format!(
                    "{name}::{vname} => ::serde::Value::String({vname:?}.to_string()),"
                ),
                Fields::Tuple(1) => format!(
                    "{name}::{vname}(x0) => ::serde::Value::Object(vec![({vname:?}.to_string(), ::serde::Serialize::to_value(x0))]),"
                ),
                Fields::Tuple(n) => {
                    let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(x{i})"))
                        .collect();
                    format!(
                        "{name}::{vname}({}) => ::serde::Value::Object(vec![({vname:?}.to_string(), ::serde::Value::Array(vec![{}]))]),",
                        binds.join(", "),
                        items.join(", ")
                    )
                }
                Fields::Named(fnames) => {
                    let binds = fnames.join(", ");
                    let entries: Vec<String> = fnames
                        .iter()
                        .map(|f| format!("({f:?}.to_string(), ::serde::Serialize::to_value({f}))"))
                        .collect();
                    format!(
                        "{name}::{vname} {{ {binds} }} => ::serde::Value::Object(vec![({vname:?}.to_string(), ::serde::Value::Object(vec![{}]))]),",
                        entries.join(", ")
                    )
                }
            }
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ match self {{ {} }} }}\n\
         }}",
        arms.join("\n")
    )
}

fn deserialize_struct(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Named(names) => {
            let inits: Vec<String> = names
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(v.get({f:?}).unwrap_or(&::serde::Value::Null))?"
                    )
                })
                .collect();
            format!("Ok({name} {{ {} }})", inits.join(", "))
        }
        Fields::Tuple(1) => format!("Ok({name}(::serde::Deserialize::from_value(v)?))"),
        Fields::Tuple(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "match v {{\n\
                     ::serde::Value::Array(items) if items.len() == {n} => Ok({name}({})),\n\
                     other => Err(::serde::DeError::unexpected(\"array of {n} elements\", other)),\n\
                 }}",
                inits.join(", ")
            )
        }
        Fields::Unit => format!("{{ let _ = v; Ok({name}) }}"),
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}"
    )
}

fn deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = Vec::new();
    let mut tagged_arms = Vec::new();
    for v in variants {
        let vname = &v.name;
        match &v.fields {
            Fields::Unit => unit_arms.push(format!(
                "::serde::Value::String(s) if s == {vname:?} => Ok({name}::{vname}),"
            )),
            Fields::Tuple(1) => tagged_arms.push(format!(
                "{vname:?} => Ok({name}::{vname}(::serde::Deserialize::from_value(inner)?)),"
            )),
            Fields::Tuple(n) => {
                let inits: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                    .collect();
                tagged_arms.push(format!(
                    "{vname:?} => match inner {{\n\
                         ::serde::Value::Array(items) if items.len() == {n} => Ok({name}::{vname}({})),\n\
                         other => Err(::serde::DeError::unexpected(\"array of {n} elements\", other)),\n\
                     }},",
                    inits.join(", ")
                ))
            }
            Fields::Named(fnames) => {
                let inits: Vec<String> = fnames
                    .iter()
                    .map(|f| {
                        format!(
                            "{f}: ::serde::Deserialize::from_value(inner.get({f:?}).unwrap_or(&::serde::Value::Null))?"
                        )
                    })
                    .collect();
                tagged_arms.push(format!(
                    "{vname:?} => Ok({name}::{vname} {{ {} }}),",
                    inits.join(", ")
                ))
            }
        }
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 match v {{\n\
                     {}\n\
                     ::serde::Value::Object(entries) if entries.len() == 1 => {{\n\
                         let (tag, inner) = &entries[0];\n\
                         match tag.as_str() {{\n\
                             {}\n\
                             other => Err(::serde::DeError::msg(format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                         }}\n\
                     }}\n\
                     other => Err(::serde::DeError::unexpected(\"{name} variant\", other)),\n\
                 }}\n\
             }}\n\
         }}",
        unit_arms.join("\n"),
        tagged_arms.join("\n")
    )
}
