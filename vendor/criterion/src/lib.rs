//! Offline, API-compatible subset of `criterion`.
//!
//! Provides [`Criterion::bench_function`], [`Bencher::iter`],
//! [`criterion_group!`] and [`criterion_main!`] with a simple
//! warmup-then-measure timing loop and median-of-samples reporting, so
//! `cargo bench` produces useful numbers without the real crate's
//! dependency tree (plotters, rayon, …).

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver handed to each `criterion_group!` function.
pub struct Criterion {
    /// Number of measured samples per benchmark.
    sample_count: u32,
    /// Target wall-clock time per sample.
    sample_target: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_count: 30,
            sample_target: Duration::from_millis(50),
        }
    }
}

impl Criterion {
    /// Runs `f` as a named benchmark and prints a one-line summary.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };

        // Warmup + calibration: find an iteration count that fills the
        // per-sample time budget.
        bencher.iters = 1;
        loop {
            bencher.elapsed = Duration::ZERO;
            f(&mut bencher);
            if bencher.elapsed >= self.sample_target / 10 || bencher.iters >= (1 << 30) {
                break;
            }
            bencher.iters *= 2;
        }
        let per_iter = bencher.elapsed.as_nanos().max(1) / bencher.iters as u128;
        let target = self.sample_target.as_nanos();
        bencher.iters = ((target / per_iter).clamp(1, 1 << 30)) as u64;

        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_count as usize);
        for _ in 0..self.sample_count {
            bencher.elapsed = Duration::ZERO;
            f(&mut bencher);
            samples.push(bencher.elapsed.as_nanos() as f64 / bencher.iters as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        let lo = samples[samples.len() / 10];
        let hi = samples[samples.len() - 1 - samples.len() / 10];
        println!(
            "{name:<50} time: [{} {} {}]",
            format_ns(lo),
            format_ns(median),
            format_ns(hi)
        );
        self
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Timing loop handle passed to the benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it enough times to fill the sample budget.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
    }
}

/// Declares a benchmark group: `criterion_group!(name, fn_a, fn_b);`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark entry point: `criterion_main!(group_a, group_b);`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
