//! The self-describing data model shared by the vendored `serde` and
//! `serde_json` crates.

use std::fmt;

/// A JSON-shaped value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A negative integer (always `< 0`; non-negative integers use
    /// [`Value::UInt`] so the full `u64` range round-trips losslessly).
    Int(i64),
    /// A non-negative integer.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    String(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map (insertion order preserved, mirroring struct fields).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Short human-readable description of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Creates an error from a message.
    pub fn msg(message: impl Into<String>) -> Self {
        DeError {
            message: message.into(),
        }
    }

    /// "Expected X, found Y" error.
    pub fn unexpected(expected: &str, found: &Value) -> Self {
        DeError {
            message: format!("expected {expected}, found {}", found.kind()),
        }
    }

    /// "Missing field" error.
    pub fn missing_field(name: &str) -> Self {
        DeError {
            message: format!("missing field `{name}`"),
        }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}
