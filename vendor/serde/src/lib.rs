//! Offline, API-compatible subset of `serde`.
//!
//! The build image has no network access to crates.io, so the workspace
//! vendors the slice of serde it uses: `#[derive(Serialize, Deserialize)]`
//! on plain (non-generic) structs and enums, driven through a self-describing
//! [`Value`] data model instead of serde's visitor architecture. `serde_json`
//! (also vendored) renders [`Value`] to and from JSON text using serde's
//! externally-tagged enum representation, so the wire format matches what the
//! real crates would produce for these types.

#![warn(missing_docs)]

pub mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::{DeError, Value};

/// Types convertible into the self-describing [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from the self-describing [`Value`] data model.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`] tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if (*self as i128) < 0 {
                    Value::Int(*self as i64)
                } else {
                    Value::UInt(*self as u64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| DeError::msg(concat!("integer out of range for ", stringify!($t)))),
                    Value::UInt(u) => <$t>::try_from(*u)
                        .map_err(|_| DeError::msg(concat!("integer out of range for ", stringify!($t)))),
                    Value::Float(f) if f.fract() == 0.0 => Ok(*f as $t),
                    other => Err(DeError::unexpected(concat!("integer ", stringify!($t)), other)),
                }
            }
        }
    )*};
}

int_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    other => Err(DeError::unexpected("float", other)),
                }
            }
        }
    )*};
}

float_impls!(f32, f64);

/// A [`Value`] serializes to itself — what lets callers hand-assemble JSON
/// trees (mirrors the real serde_json's `Value: Serialize`).
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::unexpected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(DeError::unexpected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::unexpected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) if items.len() == N => {
                let vec: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
                vec.try_into()
                    .map_err(|_| DeError::msg("array length mismatch"))
            }
            other => Err(DeError::unexpected("fixed-size array", other)),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(DeError::unexpected("2-tuple", other)),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) if items.len() == 3 => Ok((
                A::from_value(&items[0])?,
                B::from_value(&items[1])?,
                C::from_value(&items[2])?,
            )),
            other => Err(DeError::unexpected("3-tuple", other)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<V: Serialize> Serialize for std::collections::HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<V: Deserialize> Deserialize for std::collections::HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(DeError::unexpected("object", other)),
        }
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(DeError::unexpected("object", other)),
        }
    }
}
